//! Function graphs: required service functions connected by dependency and
//! commutation links (paper §2.1, Fig. 4).
//!
//! A *dependency link* `F_a → F_b` means F_b consumes F_a's output. A
//! *commutation link* `{F_a, F_b}` means the two functions' composition
//! order may be exchanged (e.g. color filtering and image scaling). The
//! graph of dependency links must be a DAG.
//!
//! **Composition patterns.** The paper derives alternative composition
//! orders per hop during probing; we pre-enumerate them at the source as
//! *patterns* — one dependency DAG per achievable ordering — which covers
//! exactly the same candidate set (each per-hop exchange decision
//! corresponds to choosing one pattern) while keeping the per-hop logic
//! simple. Each subset of commutation links is applied as a transposition
//! of the two functions' positions; orderings that would create a cycle are
//! discarded.

use spidernet_util::error::{Error, Result};
use spidernet_util::id::FunctionId;
use std::collections::BTreeSet;

/// A function graph over dependency and commutation links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionGraph {
    nodes: Vec<FunctionId>,
    deps: Vec<(usize, usize)>,
    commutations: Vec<(usize, usize)>,
}

impl FunctionGraph {
    /// Builds and validates a function graph.
    ///
    /// Requirements: at least one node; dependency edges form a DAG over
    /// valid node indices with no self-loops; commutation pairs reference
    /// valid, distinct nodes; the dependency relation is weakly connected
    /// (a composite service is one workflow, not several).
    pub fn new(
        nodes: Vec<FunctionId>,
        deps: Vec<(usize, usize)>,
        commutations: Vec<(usize, usize)>,
    ) -> Result<Self> {
        if nodes.is_empty() {
            return Err(Error::InvalidFunctionGraph("no nodes".into()));
        }
        let n = nodes.len();
        for &(a, b) in &deps {
            if a >= n || b >= n {
                return Err(Error::InvalidFunctionGraph(format!("edge ({a},{b}) out of range")));
            }
            if a == b {
                return Err(Error::InvalidFunctionGraph(format!("self-loop on {a}")));
            }
        }
        for &(a, b) in &commutations {
            if a >= n || b >= n || a == b {
                return Err(Error::InvalidFunctionGraph(format!(
                    "bad commutation pair ({a},{b})"
                )));
            }
        }
        let g = FunctionGraph { nodes, deps, commutations };
        if g.topo_order().is_none() {
            return Err(Error::InvalidFunctionGraph("dependency cycle".into()));
        }
        if n > 1 && !g.weakly_connected() {
            return Err(Error::InvalidFunctionGraph("not weakly connected".into()));
        }
        Ok(g)
    }

    /// A linear chain `F_0 → F_1 → … → F_{k-1}` over functions `0..k`.
    pub fn linear(k: usize) -> FunctionGraph {
        Self::linear_of(&(0..k as u64).map(FunctionId::new).collect::<Vec<_>>())
    }

    /// A linear chain over the given functions, in order.
    pub fn linear_of(functions: &[FunctionId]) -> FunctionGraph {
        let deps = (0..functions.len().saturating_sub(1)).map(|i| (i, i + 1)).collect();
        FunctionGraph::new(functions.to_vec(), deps, Vec::new())
            .expect("linear chains are always valid")
    }

    /// Number of function nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The function at node index `i`.
    pub fn function(&self, i: usize) -> FunctionId {
        self.nodes[i]
    }

    /// All node functions in index order.
    pub fn functions(&self) -> &[FunctionId] {
        &self.nodes
    }

    /// Dependency edges.
    pub fn deps(&self) -> &[(usize, usize)] {
        &self.deps
    }

    /// Commutation pairs.
    pub fn commutations(&self) -> &[(usize, usize)] {
        &self.commutations
    }

    /// Dependency successors of node `i`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.deps.iter().filter(move |(a, _)| *a == i).map(|(_, b)| *b)
    }

    /// Dependency predecessors of node `i`.
    pub fn predecessors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.deps.iter().filter(move |(_, b)| *b == i).map(|(a, _)| *a)
    }

    /// Nodes with no predecessors (entry functions fed by the source).
    pub fn entry_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.predecessors(i).next().is_none()).collect()
    }

    /// Nodes with no successors (exit functions feeding the destination).
    pub fn exit_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.successors(i).next().is_none()).collect()
    }

    /// A topological order of the dependency DAG, or `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.deps {
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        queue.sort_unstable(); // deterministic order
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            let mut newly: Vec<usize> = Vec::new();
            for s in self.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    newly.push(s);
                }
            }
            newly.sort_unstable();
            queue.extend(newly);
        }
        (order.len() == n).then_some(order)
    }

    fn weakly_connected(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(a, b) in &self.deps {
                let other = if a == v {
                    b
                } else if b == v {
                    a
                } else {
                    continue;
                };
                if !seen[other] {
                    seen[other] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == n
    }

    /// True if the dependency relation is a single path (linear
    /// composition).
    pub fn is_linear(&self) -> bool {
        self.entry_nodes().len() == 1
            && self.exit_nodes().len() == 1
            && (0..self.len()).all(|i| self.successors(i).count() <= 1)
    }

    /// All branch paths: every dependency path from an entry node to an
    /// exit node, in node indices. A probe traverses exactly one branch
    /// path (paper §4.3); a linear graph has exactly one.
    pub fn branch_paths(&self) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        let mut stack: Vec<Vec<usize>> = self.entry_nodes().into_iter().map(|e| vec![e]).collect();
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths start non-empty");
            let succ: Vec<usize> = self.successors(last).collect();
            if succ.is_empty() {
                paths.push(path);
            } else {
                for s in succ {
                    let mut p = path.clone();
                    p.push(s);
                    stack.push(p);
                }
            }
        }
        paths.sort();
        paths
    }

    /// Enumerates composition patterns: for each subset of commutation
    /// links, swap the two functions' positions and keep the result if the
    /// dependency relation stays acyclic. Patterns are deduplicated; the
    /// original graph is always first.
    pub fn patterns(&self) -> Vec<FunctionGraph> {
        let k = self.commutations.len();
        let mut out: Vec<FunctionGraph> = Vec::new();
        let mut seen: BTreeSet<Vec<FunctionId>> = BTreeSet::new();
        // Cap blow-up: commutation links are few in practice (the paper's
        // examples have one or two), but guard against adversarial inputs.
        let subsets = 1u32 << k.min(10);
        for mask in 0..subsets {
            let mut perm: Vec<usize> = (0..self.len()).collect();
            for (bit, &(a, b)) in self.commutations.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    perm.swap(a, b);
                }
            }
            // Node positions stay fixed; the *functions* move: position i
            // now carries the function originally at perm[i].
            let nodes: Vec<FunctionId> = perm.iter().map(|&i| self.nodes[i]).collect();
            let candidate = FunctionGraph {
                nodes: nodes.clone(),
                deps: self.deps.clone(),
                commutations: Vec::new(),
            };
            if candidate.topo_order().is_some() && seen.insert(nodes) {
                if mask == 0 {
                    out.insert(0, candidate);
                } else {
                    out.push(candidate);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(x: u64) -> FunctionId {
        FunctionId::new(x)
    }

    /// The paper's Fig. 4 shape: F1 → F2, F1 → F3 → F5, F2 → F4 → F5 with
    /// commutation {F3, F4}. Simplified here to a diamond:
    /// 0→1→3, 0→2→3 with commutation {1, 2}.
    fn diamond_with_commutation() -> FunctionGraph {
        FunctionGraph::new(
            vec![fid(0), fid(1), fid(2), fid(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![(1, 2)],
        )
        .unwrap()
    }

    #[test]
    fn linear_chain_shape() {
        let g = FunctionGraph::linear(4);
        assert_eq!(g.len(), 4);
        assert!(g.is_linear());
        assert_eq!(g.entry_nodes(), vec![0]);
        assert_eq!(g.exit_nodes(), vec![3]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(g.branch_paths(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn single_node_graph() {
        let g = FunctionGraph::linear(1);
        assert_eq!(g.branch_paths(), vec![vec![0]]);
        assert!(g.is_linear());
    }

    #[test]
    fn validation_rejects_cycles() {
        let err = FunctionGraph::new(vec![fid(0), fid(1)], vec![(0, 1), (1, 0)], vec![]);
        assert!(matches!(err, Err(Error::InvalidFunctionGraph(_))));
    }

    #[test]
    fn validation_rejects_disconnected() {
        let err = FunctionGraph::new(vec![fid(0), fid(1), fid(2)], vec![(0, 1)], vec![]);
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_bad_indices_and_self_loops() {
        assert!(FunctionGraph::new(vec![fid(0)], vec![(0, 5)], vec![]).is_err());
        assert!(FunctionGraph::new(vec![fid(0), fid(1)], vec![(0, 0)], vec![]).is_err());
        assert!(FunctionGraph::new(vec![fid(0), fid(1)], vec![(0, 1)], vec![(1, 1)]).is_err());
        assert!(FunctionGraph::new(vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn dag_branch_paths() {
        let g = diamond_with_commutation();
        assert!(!g.is_linear());
        let paths = g.branch_paths();
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond_with_commutation();
        let succ: Vec<usize> = g.successors(0).collect();
        assert_eq!(succ, vec![1, 2]);
        let pred: Vec<usize> = g.predecessors(3).collect();
        assert_eq!(pred, vec![1, 2]);
    }

    #[test]
    fn patterns_of_commutation_free_graph_is_identity() {
        let g = FunctionGraph::linear(3);
        let pats = g.patterns();
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].functions(), g.functions());
    }

    #[test]
    fn chain_commutation_yields_two_orders() {
        // 0 → 1 → 2 with {1, 2} commutable: orders 012 and 021.
        let g = FunctionGraph::new(
            vec![fid(10), fid(11), fid(12)],
            vec![(0, 1), (1, 2)],
            vec![(1, 2)],
        )
        .unwrap();
        let pats = g.patterns();
        assert_eq!(pats.len(), 2);
        assert_eq!(pats[0].functions(), &[fid(10), fid(11), fid(12)]);
        assert_eq!(pats[1].functions(), &[fid(10), fid(12), fid(11)]);
        // Patterns expose no further commutations.
        assert!(pats.iter().all(|p| p.commutations().is_empty()));
    }

    #[test]
    fn diamond_commutation_swaps_branches() {
        let g = diamond_with_commutation();
        let pats = g.patterns();
        assert_eq!(pats.len(), 2);
        // Swapped pattern carries F2 on the first branch.
        assert_eq!(pats[1].function(1), fid(2));
        assert_eq!(pats[1].function(2), fid(1));
        // Dependency structure is preserved.
        assert_eq!(pats[1].deps(), g.deps());
    }

    #[test]
    fn two_commutations_yield_up_to_four_patterns() {
        // 0→1→2→3 with {0,1} and {2,3} commutable.
        let g = FunctionGraph::new(
            vec![fid(0), fid(1), fid(2), fid(3)],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(0, 1), (2, 3)],
        )
        .unwrap();
        let pats = g.patterns();
        assert_eq!(pats.len(), 4);
        let orders: BTreeSet<Vec<u64>> =
            pats.iter().map(|p| p.functions().iter().map(|f| f.raw()).collect()).collect();
        assert!(orders.contains(&vec![0, 1, 2, 3]));
        assert!(orders.contains(&vec![1, 0, 2, 3]));
        assert!(orders.contains(&vec![0, 1, 3, 2]));
        assert!(orders.contains(&vec![1, 0, 3, 2]));
    }

    #[test]
    fn topo_order_is_deterministic() {
        let g = diamond_with_commutation();
        assert_eq!(g.topo_order().unwrap(), g.topo_order().unwrap());
    }
}
