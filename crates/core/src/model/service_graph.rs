//! Service graphs: a composition pattern instantiated with concrete
//! components (paper §2.2 middle tier, §2.4).

use crate::model::component::Registry;
use crate::model::function_graph::FunctionGraph;
use spidernet_util::id::{ComponentId, PeerId};
use spidernet_util::res::ResourceKind;
use std::collections::BTreeMap;

/// One endpoint of a service link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEnd {
    /// The application sender.
    Source,
    /// The component at the given pattern-node index.
    Node(usize),
    /// The application receiver.
    Dest,
}

/// A service link: one edge of the service graph, mapped at runtime onto an
/// overlay network path between the two endpoints' peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceLink {
    /// Producing end.
    pub from: LinkEnd,
    /// Consuming end.
    pub to: LinkEnd,
}

/// Weights of the ψ cost aggregation (Eq. 1): one weight per end-system
/// resource type plus one for bandwidth; they must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct CostWeights {
    /// Per-[`ResourceKind`] weights (w_1 … w_n).
    pub resource: [f64; ResourceKind::COUNT],
    /// Bandwidth weight (w_{n+1}).
    pub bandwidth: f64,
}

impl CostWeights {
    /// Equal weighting across all resource types and bandwidth.
    pub fn uniform() -> Self {
        let k = ResourceKind::COUNT as f64 + 1.0;
        CostWeights { resource: [1.0 / k; ResourceKind::COUNT], bandwidth: 1.0 / k }
    }

    /// True if the weights are a convex combination (sum to 1, all in
    /// [0, 1]).
    pub fn is_normalized(&self) -> bool {
        let sum: f64 = self.resource.iter().sum::<f64>() + self.bandwidth;
        (sum - 1.0).abs() < 1e-9
            && self.resource.iter().all(|w| (0.0..=1.0).contains(w))
            && (0.0..=1.0).contains(&self.bandwidth)
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights::uniform()
    }
}

/// Evaluation of a candidate service graph against a request, produced by
/// the selection logic.
#[derive(Clone, Debug)]
pub struct GraphEval {
    /// Accumulated QoS vector (component Q_p plus network delay).
    pub qos: spidernet_util::qos::QosVector,
    /// ψ load-balancing cost (Eq. 1); lower is better.
    pub cost: f64,
    /// Combined failure probability F^λ (independent-peers combinatorial
    /// estimate).
    pub failure_prob: f64,
    /// Whether end-system resources and link bandwidth all fit.
    pub fits_resources: bool,
}

/// A fully instantiated service graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceGraph {
    /// The application sender.
    pub source: PeerId,
    /// The application receiver.
    pub dest: PeerId,
    /// The composition pattern (commutation-free function DAG).
    pub pattern: FunctionGraph,
    /// One component per pattern node.
    pub assignment: Vec<ComponentId>,
}

impl ServiceGraph {
    /// Builds a service graph; panics if the assignment length does not
    /// match the pattern (a programmer error in composition code).
    pub fn new(
        source: PeerId,
        dest: PeerId,
        pattern: FunctionGraph,
        assignment: Vec<ComponentId>,
    ) -> Self {
        assert_eq!(pattern.len(), assignment.len(), "assignment/pattern size mismatch");
        ServiceGraph { source, dest, pattern, assignment }
    }

    /// The component assigned to pattern node `i`.
    pub fn component_at(&self, i: usize) -> ComponentId {
        self.assignment[i]
    }

    /// The peer hosting pattern node `i`.
    pub fn peer_at(&self, i: usize, reg: &Registry) -> PeerId {
        reg.get(self.assignment[i]).peer
    }

    /// All assigned components.
    pub fn components(&self) -> &[ComponentId] {
        &self.assignment
    }

    /// True if the graph uses `c`.
    pub fn contains_component(&self, c: ComponentId) -> bool {
        self.assignment.contains(&c)
    }

    /// True if any assigned component is hosted on `p`.
    pub fn contains_peer(&self, p: PeerId, reg: &Registry) -> bool {
        self.assignment.iter().any(|&c| reg.get(c).peer == p)
    }

    /// Number of components shared with `other` (the backup-selection
    /// overlap metric, paper §5.2).
    pub fn overlap(&self, other: &ServiceGraph) -> usize {
        self.assignment.iter().filter(|c| other.assignment.contains(c)).count()
    }

    /// All service links: source → entry nodes, dependency edges, exit
    /// nodes → destination.
    pub fn service_links(&self) -> Vec<ServiceLink> {
        pattern_service_links(&self.pattern)
    }

    /// Resolves a link end to its peer.
    pub fn peer_of_end(&self, end: LinkEnd, reg: &Registry) -> PeerId {
        match end {
            LinkEnd::Source => self.source,
            LinkEnd::Dest => self.dest,
            LinkEnd::Node(i) => self.peer_at(i, reg),
        }
    }

    /// Bandwidth demanded on a service link, Mbit/s: the source link
    /// carries the request's stream rate; a component's outgoing links
    /// carry its output bandwidth.
    pub fn link_bandwidth(&self, link: &ServiceLink, reg: &Registry, request_bw: f64) -> f64 {
        match link.from {
            LinkEnd::Source => request_bw,
            LinkEnd::Node(i) => reg.get(self.assignment[i]).out_bandwidth_mbps,
            LinkEnd::Dest => 0.0,
        }
    }

    /// Aggregates per-peer end-system resource demand: components of the
    /// same graph hosted on one peer add up.
    pub fn per_peer_demand(
        &self,
        reg: &Registry,
    ) -> BTreeMap<PeerId, spidernet_util::res::ResourceVector> {
        let mut demand: BTreeMap<PeerId, spidernet_util::res::ResourceVector> = BTreeMap::new();
        for &c in &self.assignment {
            let comp = reg.get(c);
            let entry = demand.entry(comp.peer).or_default();
            *entry = entry.add(&comp.resources);
        }
        demand
    }

    /// Combined failure probability assuming independent peer failures:
    /// `F = 1 − Π_j (1 − p_j)` over the distinct peers in the graph, each
    /// taken at its worst component failure probability.
    pub fn failure_probability(&self, reg: &Registry) -> f64 {
        // Ordered: the product below is a float reduction, and its result
        // must not depend on map iteration order.
        let mut per_peer: BTreeMap<PeerId, f64> = BTreeMap::new();
        for &c in &self.assignment {
            let comp = reg.get(c);
            let p = per_peer.entry(comp.peer).or_insert(0.0);
            *p = p.max(comp.failure_prob);
        }
        1.0 - per_peer.values().map(|p| 1.0 - p).product::<f64>()
    }
}

/// The service links induced by a pattern alone: source → entry nodes,
/// dependency edges, exit nodes → destination. Equal to
/// [`ServiceGraph::service_links`] for any graph over the pattern, which
/// lets hot evaluation loops compute the link set once per pattern rather
/// than once per candidate assignment.
pub fn pattern_service_links(pattern: &FunctionGraph) -> Vec<ServiceLink> {
    let mut links = Vec::with_capacity(pattern.deps().len() + 2);
    for e in pattern.entry_nodes() {
        links.push(ServiceLink { from: LinkEnd::Source, to: LinkEnd::Node(e) });
    }
    for &(a, b) in pattern.deps() {
        links.push(ServiceLink { from: LinkEnd::Node(a), to: LinkEnd::Node(b) });
    }
    for x in pattern.exit_nodes() {
        links.push(ServiceLink { from: LinkEnd::Node(x), to: LinkEnd::Dest });
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::ServiceComponent;
    use spidernet_util::id::FunctionId;
    use spidernet_util::qos::QosVector;
    use spidernet_util::res::ResourceVector;

    fn registry() -> Registry {
        let mut r = Registry::default();
        for (peer, function, fp) in
            [(0u64, 0u64, 0.01), (1, 1, 0.02), (2, 2, 0.03), (1, 2, 0.05)]
        {
            r.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(peer),
                function: FunctionId::new(function),
                perf_qos: QosVector::from_values(vec![10.0, 0.0]),
                resources: ResourceVector::new(0.1, 16.0),
                out_bandwidth_mbps: 2.0,
                failure_prob: fp,
            });
        }
        r
    }

    fn chain_graph() -> ServiceGraph {
        ServiceGraph::new(
            PeerId::new(10),
            PeerId::new(11),
            FunctionGraph::linear(3),
            vec![ComponentId::new(0), ComponentId::new(1), ComponentId::new(2)],
        )
    }

    #[test]
    fn service_links_of_a_chain() {
        let g = chain_graph();
        let links = g.service_links();
        assert_eq!(links.len(), 4); // src→0, 0→1, 1→2, 2→dst
        assert_eq!(links[0].from, LinkEnd::Source);
        assert_eq!(links.last().unwrap().to, LinkEnd::Dest);
    }

    #[test]
    fn peer_resolution() {
        let reg = registry();
        let g = chain_graph();
        assert_eq!(g.peer_of_end(LinkEnd::Source, &reg), PeerId::new(10));
        assert_eq!(g.peer_of_end(LinkEnd::Dest, &reg), PeerId::new(11));
        assert_eq!(g.peer_of_end(LinkEnd::Node(1), &reg), PeerId::new(1));
        assert!(g.contains_peer(PeerId::new(2), &reg));
        assert!(!g.contains_peer(PeerId::new(9), &reg));
    }

    #[test]
    fn link_bandwidths() {
        let reg = registry();
        let g = chain_graph();
        let links = g.service_links();
        assert_eq!(g.link_bandwidth(&links[0], &reg, 1.5), 1.5); // source rate
        assert_eq!(g.link_bandwidth(&links[1], &reg, 1.5), 2.0); // component output
    }

    #[test]
    fn per_peer_demand_aggregates_colocated_components() {
        let reg = registry();
        // Components 1 (peer 1) and 3 (peer 1) colocated.
        let g = ServiceGraph::new(
            PeerId::new(10),
            PeerId::new(11),
            FunctionGraph::linear(2),
            vec![ComponentId::new(1), ComponentId::new(3)],
        );
        let demand = g.per_peer_demand(&reg);
        assert_eq!(demand.len(), 1);
        let d = demand[&PeerId::new(1)];
        assert!((d.cpu() - 0.2).abs() < 1e-12);
        assert!((d.memory() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_combines_independent_peers() {
        let reg = registry();
        let g = chain_graph();
        // Peers 0, 1, 2 with probs 0.01, 0.02, 0.03.
        let expect = 1.0 - 0.99 * 0.98 * 0.97;
        assert!((g.failure_probability(&reg) - expect).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_takes_worst_component_per_peer() {
        let reg = registry();
        // Components 1 (p=0.02) and 3 (p=0.05) both on peer 1.
        let g = ServiceGraph::new(
            PeerId::new(10),
            PeerId::new(11),
            FunctionGraph::linear(2),
            vec![ComponentId::new(1), ComponentId::new(3)],
        );
        assert!((g.failure_probability(&reg) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_shared_components() {
        let a = chain_graph();
        let mut b = chain_graph();
        b.assignment[2] = ComponentId::new(3);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap(&a), 3);
    }

    #[test]
    fn cost_weights_uniform_is_normalized() {
        assert!(CostWeights::uniform().is_normalized());
        let bad = CostWeights { resource: [0.5, 0.5], bandwidth: 0.5 };
        assert!(!bad.is_normalized());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_assignment_panics() {
        ServiceGraph::new(
            PeerId::new(0),
            PeerId::new(1),
            FunctionGraph::linear(2),
            vec![ComponentId::new(0)],
        );
    }
}
