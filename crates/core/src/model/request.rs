//! Composite service requests (paper §2.1).

use crate::model::function_graph::FunctionGraph;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::PeerId;
use spidernet_util::qos::QosRequirement;

/// A user's composite service request: who talks to whom, through which
/// function graph, under which QoS, bandwidth, and failure-resilience
/// requirements.
#[derive(Clone, Debug)]
pub struct CompositionRequest {
    /// The application sender (invokes BCP).
    pub source: PeerId,
    /// The application receiver (collects probes, selects the composition).
    pub dest: PeerId,
    /// Required functions with dependency/commutation links.
    pub function_graph: FunctionGraph,
    /// Multi-constrained QoS requirement Q^req (additive dimensions).
    pub qos_req: QosRequirement,
    /// Bandwidth the source stream demands on its first service link,
    /// Mbit/s (downstream links derive their demand from each component's
    /// output bandwidth).
    pub bandwidth_mbps: f64,
    /// Required upper bound on the composed graph's failure probability
    /// F^req (per time unit).
    pub max_failure_prob: f64,
}

impl CompositionRequest {
    /// Validates the request's scalar requirements.
    pub fn validate(&self) -> Result<()> {
        if self.source == self.dest {
            return Err(Error::InvalidRequirement("source equals destination".into()));
        }
        if !self.bandwidth_mbps.is_finite() || self.bandwidth_mbps <= 0.0 {
            return Err(Error::InvalidRequirement(format!(
                "bandwidth {} must be positive",
                self.bandwidth_mbps
            )));
        }
        if !(0.0..=1.0).contains(&self.max_failure_prob) {
            return Err(Error::InvalidRequirement(format!(
                "failure bound {} outside [0,1]",
                self.max_failure_prob
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(3),
            qos_req: QosRequirement::new(vec![500.0, 1.0]).unwrap(),
            bandwidth_mbps: 1.5,
            max_failure_prob: 0.1,
        }
    }

    #[test]
    fn valid_request_passes() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn source_equals_dest_rejected() {
        let mut r = base();
        r.dest = r.source;
        assert!(r.validate().is_err());
    }

    #[test]
    fn nonpositive_bandwidth_rejected() {
        let mut r = base();
        r.bandwidth_mbps = 0.0;
        assert!(r.validate().is_err());
        r.bandwidth_mbps = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn failure_bound_domain() {
        let mut r = base();
        r.max_failure_prob = 1.0;
        assert!(r.validate().is_ok());
        r.max_failure_prob = 1.5;
        assert!(r.validate().is_err());
        r.max_failure_prob = -0.1;
        assert!(r.validate().is_err());
    }
}
