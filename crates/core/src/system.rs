//! The `SpiderNet` facade: one object tying together the overlay, the
//! Pastry discovery substrate, live resource state, the BCP protocol,
//! baselines, and session management.
//!
//! This is the API examples and experiment drivers program against:
//!
//! ```
//! use spidernet_core::system::{SpiderNet, SpiderNetConfig};
//! use spidernet_core::workload::{self, PopulationConfig, RequestConfig};
//! use spidernet_core::bcp::BcpConfig;
//! use spidernet_util::rng::rng_for;
//!
//! let mut net = SpiderNet::build(&SpiderNetConfig {
//!     ip_nodes: 200,
//!     peers: 40,
//!     seed: 7,
//!     ..SpiderNetConfig::default()
//! });
//! net.populate(&PopulationConfig { functions: 20, ..Default::default() });
//! let mut rng = rng_for(7, "doc");
//! let req = workload::random_request(net.overlay(), net.registry(), &RequestConfig::default(), &mut rng);
//! match net.compose(&req, &BcpConfig::default()) {
//!     Ok(outcome) => println!("composed over {} components", outcome.best.assignment.len()),
//!     Err(e) => println!("not composable: {e}"),
//! }
//! ```

use crate::baselines::{self, BaselineContext, BaselineOutcome};
use crate::bcp::{BcpConfig, BcpEngine, CompositionOutcome};
use crate::model::component::{Registry, ServiceComponent};
use crate::model::request::CompositionRequest;
use crate::model::service_graph::CostWeights;
use crate::paths::PathTable;
use crate::recovery::{FailureOutcome, RecoveryConfig, SessionManager};
use crate::state::OverlayState;
use crate::trust::{Experience, TrustManager};
use crate::workload::{populate, PopulationConfig};
use spidernet_dht::{PastryNetwork, ServiceDirectory, ServiceMeta};
use spidernet_sim::metrics::{counter, Metrics};
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_topology::inet::{generate_power_law, InetConfig};
use spidernet_topology::overlay::{Overlay, OverlayConfig, OverlayStyle};
use spidernet_util::error::Result;
use spidernet_util::id::{ComponentId, PeerId, SessionId};
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::Rng;

/// End-to-end construction parameters.
#[derive(Clone, Debug)]
pub struct SpiderNetConfig {
    /// IP-layer nodes (paper: 10,000).
    pub ip_nodes: usize,
    /// Overlay peers (paper: 1,000).
    pub peers: usize,
    /// Overlay wiring.
    pub style: OverlayStyle,
    /// Master seed.
    pub seed: u64,
    /// Uniform peer capacity.
    pub peer_capacity: ResourceVector,
    /// ψ weights.
    pub weights: CostWeights,
    /// Recovery policy.
    pub recovery: RecoveryConfig,
}

impl Default for SpiderNetConfig {
    fn default() -> Self {
        SpiderNetConfig {
            ip_nodes: 10_000,
            peers: 1_000,
            style: OverlayStyle::Mesh { neighbors: 6 },
            seed: 0,
            peer_capacity: ResourceVector::new(1.0, 256.0),
            weights: CostWeights::uniform(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// The assembled SpiderNet middleware over one simulated overlay.
pub struct SpiderNet {
    overlay: Overlay,
    reg: Registry,
    pastry: PastryNetwork,
    directory: ServiceDirectory,
    state: OverlayState,
    paths: PathTable,
    weights: CostWeights,
    metrics: Metrics,
    sessions: SessionManager,
    trust: TrustManager,
    now: SimTime,
    seed: u64,
}

impl SpiderNet {
    /// Generates the IP network, promotes peers, builds the Pastry ring,
    /// and wires everything up. Component population is a separate step
    /// ([`SpiderNet::populate`] or [`SpiderNet::add_component`]).
    pub fn build(cfg: &SpiderNetConfig) -> SpiderNet {
        let ip = generate_power_law(
            &InetConfig { nodes: cfg.ip_nodes, ..InetConfig::default() },
            cfg.seed,
        );
        let overlay =
            Overlay::build(&ip, &OverlayConfig { peers: cfg.peers, style: cfg.style }, cfg.seed);
        SpiderNet::from_overlay(overlay, cfg)
    }

    /// Wires SpiderNet over a pre-built overlay (tests, custom topologies).
    pub fn from_overlay(overlay: Overlay, cfg: &SpiderNetConfig) -> SpiderNet {
        let peers: Vec<PeerId> = overlay.peers().collect();
        let mut paths = PathTable::new();
        let mut prox = |a: PeerId, b: PeerId| paths.delay(&overlay, a, b);
        let pastry = PastryNetwork::build(&peers, &mut prox);
        let state = OverlayState::new(&overlay, cfg.peer_capacity);
        SpiderNet {
            overlay,
            reg: Registry::default(),
            pastry,
            directory: ServiceDirectory::new(),
            state,
            paths,
            weights: cfg.weights,
            metrics: Metrics::new(),
            sessions: SessionManager::new(cfg.recovery.clone()),
            trust: TrustManager::new(0.98),
            now: SimTime::ZERO,
            seed: cfg.seed,
        }
    }

    /// Populates every peer with random components and registers them in
    /// the DHT directory.
    pub fn populate(&mut self, cfg: &PopulationConfig) {
        self.reg = populate(&self.overlay, cfg, self.seed);
        let metas: Vec<(String, ServiceMeta)> = self
            .reg
            .iter()
            .map(|c| {
                (
                    self.reg.catalog().name(c.function).to_owned(),
                    ServiceMeta { component: c.id, peer: c.peer, function: c.function },
                )
            })
            .collect();
        for (name, meta) in metas {
            self.register_meta(&name, meta);
        }
    }

    /// Adds one component (interning its function name) and registers it.
    pub fn add_component(&mut self, function_name: &str, mut proto: ServiceComponent) -> ComponentId {
        proto.function = self.reg.catalog_mut().intern(function_name);
        let id = self.reg.add(proto);
        let c = self.reg.get(id);
        let meta = ServiceMeta { component: id, peer: c.peer, function: c.function };
        self.register_meta(function_name, meta);
        id
    }

    fn register_meta(&mut self, name: &str, meta: ServiceMeta) {
        let SpiderNet { pastry, directory, paths, overlay, metrics, .. } = self;
        let mut transport = |a: PeerId, b: PeerId| paths.delay(overlay, a, b);
        if let Some(route) = directory.register(pastry, name, meta, &mut transport) {
            metrics.add(counter::DHT_MESSAGES, route.hops() as u64);
        }
    }

    // --- composition ---------------------------------------------------

    /// Runs the BCP protocol for `req`.
    pub fn compose(&mut self, req: &CompositionRequest, cfg: &BcpConfig) -> Result<CompositionOutcome> {
        let mut engine = BcpEngine {
            overlay: &self.overlay,
            reg: &self.reg,
            pastry: &self.pastry,
            directory: &self.directory,
            state: &mut self.state,
            paths: &mut self.paths,
            weights: &self.weights,
            metrics: &mut self.metrics,
            now: self.now,
            trust: Some(&self.trust),
        };
        engine.compose(req, cfg)
    }

    /// The optimal (exhaustive flooding) baseline.
    pub fn compose_optimal(
        &mut self,
        req: &CompositionRequest,
        combo_cap: Option<u64>,
    ) -> Result<BaselineOutcome> {
        let mut ctx = BaselineContext {
            overlay: &self.overlay,
            reg: &self.reg,
            state: &self.state,
            paths: &mut self.paths,
            weights: &self.weights,
        };
        baselines::optimal(&mut ctx, req, combo_cap)
    }

    /// The random baseline.
    pub fn compose_random(&mut self, req: &CompositionRequest, rng: &mut Rng) -> Result<BaselineOutcome> {
        let mut ctx = BaselineContext {
            overlay: &self.overlay,
            reg: &self.reg,
            state: &self.state,
            paths: &mut self.paths,
            weights: &self.weights,
        };
        baselines::random(&mut ctx, req, rng)
    }

    /// The static baseline.
    pub fn compose_static(&mut self, req: &CompositionRequest) -> Result<BaselineOutcome> {
        let mut ctx = BaselineContext {
            overlay: &self.overlay,
            reg: &self.reg,
            state: &self.state,
            paths: &mut self.paths,
            weights: &self.weights,
        };
        baselines::static_(&mut ctx, req)
    }

    // --- sessions --------------------------------------------------------

    /// Establishes a session from a BCP outcome (commits resources, selects
    /// backups) and counts the setup acknowledgement messages.
    pub fn establish(
        &mut self,
        req: &CompositionRequest,
        outcome: CompositionOutcome,
    ) -> Result<SessionId> {
        let id = self.sessions.establish(
            req.clone(),
            outcome.best,
            outcome.eval,
            outcome.qualified_pool,
            &self.reg,
            &self.overlay,
            &mut self.paths,
            &mut self.state,
        )?;
        // The ack travels the reversed service graph: one control message
        // per component plus the final hop to the source.
        if let Some(s) = self.sessions.session(id) {
            self.metrics.add(counter::CONTROL, s.primary.assignment.len() as u64 + 1);
        }
        Ok(id)
    }

    /// Tears a session down (normal completion: the hosting peers earn
    /// positive trust feedback from the session's source).
    pub fn teardown(&mut self, id: SessionId) -> Result<()> {
        if let Some(s) = self.sessions.session(id) {
            let observer = s.request.source;
            let hosts: Vec<PeerId> =
                s.primary.components().iter().map(|&c| self.reg.get(c).peer).collect();
            self.trust.record_session_outcome(observer, hosts, Experience::Positive);
        }
        self.sessions.teardown(id, &mut self.state)
    }

    /// Fails a peer: resource state, DHT membership, directory metadata,
    /// and active sessions all react. Returns per-session outcomes for
    /// sessions whose primary was hit.
    pub fn fail_peer(&mut self, peer: PeerId) -> Vec<(SessionId, FailureOutcome)> {
        self.state.fail_peer(peer);
        // Shed only the shortest-path trees the departed peer participates
        // in; unrelated cached SSSPs stay warm through churn.
        self.paths.invalidate_peer(peer);
        self.pastry.remove_node(peer);
        self.directory.handle_departure(&self.pastry, peer);
        // Affected sessions' sources lose trust in the failed host.
        let observers: Vec<PeerId> = self
            .sessions
            .sessions()
            .filter(|s| s.primary.contains_peer(peer, &self.reg))
            .map(|s| s.request.source)
            .collect();
        for o in observers {
            self.trust.record(o, peer, Experience::Negative);
        }
        self.sessions.handle_peer_failure(
            peer,
            &self.reg,
            &self.overlay,
            &mut self.paths,
            &mut self.state,
            &self.weights,
        )
    }

    /// Revives a failed peer: rejoins the ring and re-registers its
    /// components.
    pub fn revive_peer(&mut self, peer: PeerId) {
        self.state.revive_peer(peer);
        {
            let SpiderNet { pastry, paths, overlay, .. } = self;
            let mut prox = |a: PeerId, b: PeerId| paths.delay(overlay, a, b);
            pastry.add_node(peer, &mut prox);
        }
        self.directory.handle_arrival(&self.pastry);
        let metas: Vec<(String, ServiceMeta)> = self
            .reg
            .on_peer(peer)
            .iter()
            .map(|&cid| {
                let c = self.reg.get(cid);
                (
                    self.reg.catalog().name(c.function).to_owned(),
                    ServiceMeta { component: cid, peer: c.peer, function: c.function },
                )
            })
            .collect();
        for (name, meta) in metas {
            self.register_meta(&name, meta);
        }
    }

    /// One backup-maintenance round across all sessions (also decays the
    /// trust tables one step).
    pub fn maintenance_tick(&mut self) -> u64 {
        self.trust.decay_all();
        self.sessions.maintenance_tick(&self.reg, &self.state, &mut self.metrics)
    }

    /// Advances virtual time, expiring overdue soft reservations.
    pub fn advance(&mut self, dt: SimDuration) {
        self.now += dt;
        self.state.expire_soft(self.now);
    }

    // --- accessors -------------------------------------------------------

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The component registry.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Live resource state (mutable for experiment setup).
    pub fn state_mut(&mut self) -> &mut OverlayState {
        &mut self.state
    }

    /// Live resource state.
    pub fn state(&self) -> &OverlayState {
        &self.state
    }

    /// Protocol metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets protocol metrics (between experiment phases).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// The session manager.
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Mutable session manager (reactive recovery orchestration).
    pub fn sessions_mut(&mut self) -> &mut SessionManager {
        &mut self.sessions
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trust tables.
    pub fn trust(&self) -> &TrustManager {
        &self.trust
    }

    /// Mutable trust tables (experiments inject adversarial histories).
    pub fn trust_mut(&mut self) -> &mut TrustManager {
        &mut self.trust
    }

    /// Like [`SpiderNet::reactive_recover`] but also returns the BCP stats
    /// of the re-composition (None when the session is gone or nothing
    /// qualified — the session is abandoned in that case).
    pub fn reactive_recover_with_stats(
        &mut self,
        id: SessionId,
        cfg: &BcpConfig,
    ) -> Option<crate::bcp::BcpStats> {
        let req = self.sessions.session(id).map(|s| s.request.clone())?;
        match self.compose(&req, cfg) {
            Ok(outcome) => {
                let stats = outcome.stats.clone();
                let ok = self
                    .sessions
                    .reestablish(
                        id,
                        outcome.best,
                        outcome.eval,
                        outcome.qualified_pool,
                        &self.reg,
                        &self.overlay,
                        &mut self.paths,
                        &mut self.state,
                    )
                    .is_ok();
                if ok {
                    Some(stats)
                } else {
                    self.sessions.abandon(id);
                    None
                }
            }
            Err(_) => {
                self.sessions.abandon(id);
                None
            }
        }
    }

    /// Reactive recovery: re-runs BCP for a session that lost all backups
    /// and re-establishes it on success; abandons it otherwise. Returns
    /// true if the session was saved.
    pub fn reactive_recover(&mut self, id: SessionId, cfg: &BcpConfig) -> bool {
        let Some(req) = self.sessions.session(id).map(|s| s.request.clone()) else {
            return false;
        };
        match self.compose(&req, cfg) {
            Ok(outcome) => {
                let ok = self
                    .sessions
                    .reestablish(
                        id,
                        outcome.best,
                        outcome.eval,
                        outcome.qualified_pool,
                        &self.reg,
                        &self.overlay,
                        &mut self.paths,
                        &mut self.state,
                    )
                    .is_ok();
                if !ok {
                    self.sessions.abandon(id);
                }
                ok
            }
            Err(_) => {
                self.sessions.abandon(id);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_request, RequestConfig};
    use spidernet_util::rng::rng_for;

    fn small() -> SpiderNet {
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: 300,
            peers: 60,
            seed: 17,
            ..SpiderNetConfig::default()
        });
        net.populate(&PopulationConfig { functions: 12, ..Default::default() });
        net
    }

    fn loose_request(net: &SpiderNet, rng: &mut spidernet_util::rng::Rng) -> CompositionRequest {
        random_request(
            net.overlay(),
            net.registry(),
            &RequestConfig {
                functions: (2, 3),
                delay_bound_ms: (50_000.0, 60_000.0),
                loss_bound: (0.5, 0.6),
                ..RequestConfig::default()
            },
            rng,
        )
    }

    #[test]
    fn end_to_end_compose_and_establish() {
        let mut net = small();
        let mut rng = rng_for(17, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let id = net.establish(&req, outcome).unwrap();
        assert_eq!(net.sessions().len(), 1);
        assert!(net.metrics().counter(counter::PROBES) > 0);
        assert!(net.metrics().counter(counter::CONTROL) > 0);
        net.teardown(id).unwrap();
        assert!(net.sessions().is_empty());
    }

    #[test]
    fn dht_registration_costs_messages() {
        let net = small();
        assert!(net.metrics().counter(counter::DHT_MESSAGES) > 0);
        assert!(net.registry().len() >= 60);
    }

    #[test]
    fn bcp_agrees_with_optimal_under_large_budget() {
        let mut net = small();
        let mut rng = rng_for(18, "sys");
        for _ in 0..5 {
            let req = loose_request(&net, &mut rng);
            let Ok(opt) = net.compose_optimal(&req, None) else { continue };
            let bcp = net
                .compose(
                    &req,
                    &BcpConfig {
                        budget: 4096,
                        quota: crate::bcp::QuotaPolicy::Uniform(64),
                        merge_cap: 4096,
                        ..BcpConfig::default()
                    },
                )
                .unwrap();
            assert!(
                bcp.eval.cost <= opt.eval.cost + 1e-9,
                "unbounded BCP must match optimal: {} vs {}",
                bcp.eval.cost,
                opt.eval.cost
            );
        }
    }

    #[test]
    fn failure_and_reactive_recovery_flow() {
        let mut net = small();
        let mut rng = rng_for(19, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let id = net.establish(&req, outcome).unwrap();
        // Fail every peer of the primary AND of the backups so reactive
        // recovery is forced... or at least exercise the failure path once.
        let victim = {
            let s = net.sessions().session(id).unwrap();
            net.registry().get(s.primary.assignment[0]).peer
        };
        let outcomes = net.fail_peer(victim);
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0].1 {
            FailureOutcome::RecoveredByBackup { .. } => {
                let s = net.sessions().session(id).unwrap();
                assert!(!s.primary.contains_peer(victim, net.registry()));
            }
            FailureOutcome::NeedsReactive => {
                let saved = net.reactive_recover(id, &BcpConfig::default());
                if saved {
                    let s = net.sessions().session(id).unwrap();
                    assert!(!s.primary.contains_peer(victim, net.registry()));
                } else {
                    assert!(net.sessions().session(id).is_none());
                }
            }
        }
    }

    #[test]
    fn failed_peer_disappears_from_discovery() {
        let mut net = small();
        let victim = PeerId::new(5);
        let victim_components = net.registry().on_peer(victim).len();
        assert!(victim_components > 0);
        net.fail_peer(victim);
        // Compose requests never land on the dead peer.
        let mut rng = rng_for(20, "sys");
        for _ in 0..5 {
            let req = loose_request(&net, &mut rng);
            if req.source == victim || req.dest == victim {
                continue;
            }
            if let Ok(out) = net.compose(&req, &BcpConfig::default()) {
                assert!(!out.best.contains_peer(victim, net.registry()));
            }
        }
        // Revival restores discoverability.
        net.revive_peer(victim);
        assert!(net.state().is_alive(victim));
    }

    #[test]
    fn advance_expires_soft_state() {
        let mut net = small();
        let p = PeerId::new(3);
        net.state_mut()
            .soft_allocate(p, ResourceVector::new(0.1, 1.0), SimTime::from_ms(100.0))
            .unwrap();
        assert_eq!(net.state().soft_count(), 1);
        net.advance(SimDuration::from_ms(200.0));
        assert_eq!(net.state().soft_count(), 0);
        assert_eq!(net.now(), SimTime::from_ms(200.0));
    }

    #[test]
    fn trust_feedback_flows_from_session_outcomes() {
        let mut net = small();
        let mut rng = rng_for(23, "sys-trust");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let hosts: Vec<PeerId> = outcome
            .best
            .components()
            .iter()
            .map(|&c| net.registry().get(c).peer)
            .collect();
        let observer = req.source;
        let id = net.establish(&req, outcome).unwrap();

        // Normal completion earns positive trust from the source.
        net.teardown(id).unwrap();
        for &h in &hosts {
            assert!(
                net.trust().trust(observer, h) > 0.5,
                "host {h} earned no positive feedback"
            );
        }

        // A failure mid-session earns negative trust.
        let req2 = loose_request(&net, &mut rng);
        let outcome2 = net.compose(&req2, &BcpConfig::default()).unwrap();
        let victim = net.registry().get(outcome2.best.assignment[0]).peer;
        let observer2 = req2.source;
        let before = net.trust().trust(observer2, victim);
        let _ = net.establish(&req2, outcome2).unwrap();
        net.fail_peer(victim);
        assert!(
            net.trust().trust(observer2, victim) < before + 1e-12,
            "failure did not lower trust"
        );
    }

    #[test]
    fn maintenance_counts_messages() {
        let mut net = small();
        let mut rng = rng_for(21, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let _ = net.establish(&req, outcome).unwrap();
        let msgs = net.maintenance_tick();
        // Messages only flow if backups exist; either way the counter is
        // consistent.
        assert_eq!(net.metrics().counter(counter::MAINTENANCE), msgs);
    }
}
