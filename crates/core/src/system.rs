//! The `SpiderNet` facade: one object tying together the overlay, the
//! Pastry discovery substrate, live resource state, the BCP protocol,
//! baselines, and session management.
//!
//! This is the API examples and experiment drivers program against:
//!
//! ```
//! use spidernet_core::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
//! use spidernet_core::workload::{self, PopulationConfig, RequestConfig};
//! use spidernet_core::bcp::BcpConfig;
//! use spidernet_util::rng::rng_for;
//!
//! let mut net = SpiderNet::build(
//!     &SpiderNetConfig::builder().ip_nodes(200).peers(40).seed(7).build(),
//! );
//! net.populate(&PopulationConfig { functions: 20, ..Default::default() });
//! let mut rng = rng_for(7, "doc");
//! let req = workload::random_request(net.overlay(), net.registry(), &RequestConfig::default(), &mut rng);
//! match net.compose_with(&req, &CompositionOptions::bcp(BcpConfig::default())) {
//!     Ok(report) => println!("composed over {} components", report.best.assignment.len()),
//!     Err(e) => println!("not composable: {e}"),
//! }
//! ```

use crate::baselines::{self, BaselineContext, OptimalOptions, PoolPolicy};
use crate::bcp::{BcpConfig, BcpEngine, BcpStats, ComposeCache, ComposeScratch, CompositionOutcome};
use crate::model::component::{Registry, ServiceComponent};
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::recovery::{FailureOutcome, RecoveryConfig, SessionManager};
use crate::state::OverlayState;
use crate::trust::{Experience, TrustManager};
use crate::workload::{populate, PopulationConfig};
use spidernet_dht::{PastryNetwork, ServiceDirectory, ServiceMeta};
use spidernet_sim::metrics::{counter, Instruments, MetricsRegistry};
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_sim::trace::TraceEvent;
use spidernet_topology::inet::{generate_power_law, InetConfig};
use spidernet_topology::overlay::{GeoConfig, Overlay, OverlayConfig, OverlayStyle};
use spidernet_util::error::Result;
use spidernet_util::id::{ComponentId, PeerId, SessionId};
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::{rng_for, Rng};

/// End-to-end construction parameters.
///
/// Construct via [`SpiderNetConfig::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs do not break downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SpiderNetConfig {
    /// IP-layer nodes (paper: 10,000).
    pub ip_nodes: usize,
    /// Overlay peers (paper: 1,000).
    pub peers: usize,
    /// Overlay wiring.
    pub style: OverlayStyle,
    /// Master seed.
    pub seed: u64,
    /// Uniform peer capacity.
    pub peer_capacity: ResourceVector,
    /// ψ weights.
    pub weights: CostWeights,
    /// Recovery policy.
    pub recovery: RecoveryConfig,
    /// When set, the overlay is the geometric scale model (coordinates in
    /// the unit square, O(1) delays, per-peer access links) instead of a
    /// generated IP topology — the mode that holds 10^5–10^6 peers.
    /// `peers` above remains the peer-count authority.
    pub geo: Option<GeoConfig>,
    /// Worker threads for world construction (Pastry tables fan out
    /// per-node in geo mode; results are thread-count invariant).
    pub build_threads: usize,
}

impl Default for SpiderNetConfig {
    fn default() -> Self {
        SpiderNetConfig {
            ip_nodes: 10_000,
            peers: 1_000,
            style: OverlayStyle::Mesh { neighbors: 6 },
            seed: 0,
            peer_capacity: ResourceVector::new(1.0, 256.0),
            weights: CostWeights::uniform(),
            recovery: RecoveryConfig::default(),
            geo: None,
            build_threads: 1,
        }
    }
}

impl SpiderNetConfig {
    /// A builder seeded with the defaults (paper-scale topology).
    pub fn builder() -> SpiderNetConfigBuilder {
        SpiderNetConfigBuilder { cfg: SpiderNetConfig::default() }
    }
}

/// Builder for [`SpiderNetConfig`].
#[derive(Clone, Debug)]
pub struct SpiderNetConfigBuilder {
    cfg: SpiderNetConfig,
}

impl SpiderNetConfigBuilder {
    /// IP-layer nodes.
    pub fn ip_nodes(mut self, n: usize) -> Self {
        self.cfg.ip_nodes = n;
        self
    }

    /// Overlay peers.
    pub fn peers(mut self, n: usize) -> Self {
        self.cfg.peers = n;
        self
    }

    /// Overlay wiring.
    pub fn style(mut self, style: OverlayStyle) -> Self {
        self.cfg.style = style;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Uniform peer capacity.
    pub fn peer_capacity(mut self, cap: ResourceVector) -> Self {
        self.cfg.peer_capacity = cap;
        self
    }

    /// ψ weights.
    pub fn weights(mut self, w: CostWeights) -> Self {
        self.cfg.weights = w;
        self
    }

    /// Recovery policy.
    pub fn recovery(mut self, r: RecoveryConfig) -> Self {
        self.cfg.recovery = r;
        self
    }

    /// Switches construction to the geometric scale overlay.
    pub fn geo(mut self, g: GeoConfig) -> Self {
        self.cfg.geo = Some(g);
        self
    }

    /// Worker threads for world construction.
    pub fn build_threads(mut self, n: usize) -> Self {
        self.cfg.build_threads = n.max(1);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> SpiderNetConfig {
        self.cfg
    }
}

/// Which composition algorithm [`SpiderNet::compose_with`] runs.
#[derive(Clone, Debug)]
pub enum CompositionStrategy {
    /// The BCP protocol (the paper's algorithm).
    Bcp(BcpConfig),
    /// Exhaustive flooding via the branch-and-bound enumerator;
    /// `combo_cap` bounds enumeration for tests.
    Optimal {
        /// Optional cap on considered combinations.
        combo_cap: Option<u64>,
        /// Whether the full qualified pool is retained or only the best
        /// graph (enabling cost-bound pruning).
        pool: PoolPolicy,
        /// Worker threads for the combo-space fan-out (results are
        /// thread-count invariant).
        threads: usize,
    },
    /// Random functionally-correct pick (uses the overlay's internal
    /// deterministic baseline stream).
    Random,
    /// First registered replica per function.
    Static,
}

/// Unified parameter object for every composition entry point.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CompositionOptions {
    /// The algorithm to run.
    pub strategy: CompositionStrategy,
    /// Capture the trace events emitted during this composition into the
    /// returned [`ComposeReport::trace`] (empty when the `trace` cargo
    /// feature is off).
    pub capture_trace: bool,
}

impl CompositionOptions {
    /// BCP with the given tuning.
    pub fn bcp(cfg: BcpConfig) -> Self {
        CompositionOptions { strategy: CompositionStrategy::Bcp(cfg), capture_trace: false }
    }

    /// The optimal (exhaustive flooding) baseline, retaining the full
    /// qualified pool — byte-compatible with the naive enumerator.
    pub fn optimal(combo_cap: Option<u64>) -> Self {
        CompositionOptions {
            strategy: CompositionStrategy::Optimal {
                combo_cap,
                pool: PoolPolicy::Full,
                threads: 1,
            },
            capture_trace: false,
        }
    }

    /// The optimal baseline keeping only the best graph: enables
    /// cost-bound pruning on top of the feasibility bounds and skips pool
    /// retention. The best graph and its evaluation are identical to
    /// [`CompositionOptions::optimal`]'s; `qualified_pool` comes back
    /// empty.
    pub fn optimal_best_only(combo_cap: Option<u64>) -> Self {
        CompositionOptions {
            strategy: CompositionStrategy::Optimal {
                combo_cap,
                pool: PoolPolicy::BestOnly,
                threads: 1,
            },
            capture_trace: false,
        }
    }

    /// Sets the worker-thread count for the optimal enumerator's combo
    /// fan-out (no-op for other strategies).
    pub fn with_optimal_threads(mut self, n: usize) -> Self {
        if let CompositionStrategy::Optimal { threads, .. } = &mut self.strategy {
            *threads = n.max(1);
        }
        self
    }

    /// The random baseline.
    pub fn random() -> Self {
        CompositionOptions { strategy: CompositionStrategy::Random, capture_trace: false }
    }

    /// The static baseline.
    pub fn static_() -> Self {
        CompositionOptions { strategy: CompositionStrategy::Static, capture_trace: false }
    }

    /// Enables trace capture on the report.
    pub fn with_trace(mut self) -> Self {
        self.capture_trace = true;
        self
    }
}

/// What one [`SpiderNet::compose_with`] call produced: the outcome plus
/// the observability snapshot of the run.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ComposeReport {
    /// Observability session id the run's metrics/trace were scoped to.
    pub session: u64,
    /// The selected service graph.
    pub best: ServiceGraph,
    /// Its evaluation.
    pub eval: GraphEval,
    /// Remaining qualified graphs, cost-ordered (empty for random/static).
    pub qualified_pool: Vec<(ServiceGraph, GraphEval)>,
    /// Full BCP accounting (None for baselines).
    pub stats: Option<BcpStats>,
    /// Probe-equivalent overhead, comparable across strategies.
    pub probes: u64,
    /// Optimal strategy only: candidate combos fully evaluated (0 for
    /// other strategies).
    pub combos_examined: u64,
    /// Optimal strategy only: candidate combos cut by branch-and-bound
    /// pruning (0 for other strategies).
    pub combos_pruned: u64,
    /// Trace events emitted during the run, when
    /// [`CompositionOptions::capture_trace`] was set.
    pub trace: Vec<TraceEvent>,
}

/// The assembled SpiderNet middleware over one simulated overlay.
///
/// `Clone` duplicates the entire world — overlay, Pastry tables, resource
/// state, caches, RNG streams — bit-for-bit. Experiment drivers exploit
/// this to build a world once and clone it per trial cell instead of
/// re-running construction.
#[derive(Clone)]
pub struct SpiderNet {
    overlay: Overlay,
    reg: Registry,
    pastry: PastryNetwork,
    directory: ServiceDirectory,
    state: OverlayState,
    paths: PathTable,
    weights: CostWeights,
    obs: Instruments,
    sessions: SessionManager,
    trust: TrustManager,
    now: SimTime,
    seed: u64,
    /// Monotonic observability-session id handed to each composition.
    compose_seq: u64,
    /// Deterministic stream backing the Random strategy.
    baseline_rng: Rng,
    /// Pair-memo rejections already folded into the metrics counter.
    pair_rejects_reported: u64,
    /// Structural world version: bumped whenever directory contents or
    /// peer membership change (registration, failure, revival). Combined
    /// with [`OverlayState::watermark_crossings`] it keys the compose
    /// cache.
    world_epoch: u64,
    /// Trust-table version: bumped whenever trust scores may have moved
    /// (session outcomes, failures, decay, direct mutation). Consulted by
    /// the compose cache only under trust-sensitive configs.
    trust_epoch: u64,
    /// Epoch-invalidated per-function lookup/pool memo. `None` (the
    /// default) composes full-price; enable via
    /// [`SpiderNet::set_compose_caching`].
    compose_cache: Option<ComposeCache>,
    /// Reusable probe arenas handed to every BCP run.
    compose_scratch: ComposeScratch,
    /// Compose-cache (hits, misses, invalidations) already folded into
    /// the metrics registry.
    compose_cache_reported: (u64, u64, u64),
    /// Pair-delay (hits, misses) already folded into the metrics registry.
    pair_lookups_reported: (u64, u64),
    /// Pair-delay memo bypasses already folded into the metrics registry.
    pair_bypasses_reported: u64,
}

impl SpiderNet {
    /// Generates the IP network, promotes peers, builds the Pastry ring,
    /// and wires everything up. Component population is a separate step
    /// ([`SpiderNet::populate`] or [`SpiderNet::add_component`]).
    pub fn build(cfg: &SpiderNetConfig) -> SpiderNet {
        if let Some(geo) = &cfg.geo {
            let geo = GeoConfig { peers: cfg.peers, ..geo.clone() };
            return SpiderNet::from_overlay(Overlay::build_geo(&geo, cfg.seed), cfg);
        }
        let ip = generate_power_law(
            &InetConfig { nodes: cfg.ip_nodes, ..InetConfig::default() },
            cfg.seed,
        );
        let overlay =
            Overlay::build(&ip, &OverlayConfig { peers: cfg.peers, style: cfg.style }, cfg.seed);
        SpiderNet::from_overlay(overlay, cfg)
    }

    /// Wires SpiderNet over a pre-built overlay (tests, custom topologies).
    pub fn from_overlay(overlay: Overlay, cfg: &SpiderNetConfig) -> SpiderNet {
        let peers: Vec<PeerId> = overlay.peers().collect();
        let mut paths = PathTable::new();
        let pastry = if overlay.is_geo() {
            // O(1) coordinate delays: no SSSP warming, and node tables can
            // fan out across build threads (results thread-invariant).
            let prox =
                |a: PeerId, b: PeerId| overlay.direct_delay(a, b).expect("geo overlay pair");
            PastryNetwork::build_parallel(&peers, &prox, cfg.build_threads.max(1))
        } else {
            let mut prox = |a: PeerId, b: PeerId| paths.delay(&overlay, a, b);
            PastryNetwork::build(&peers, &mut prox)
        };
        let state = OverlayState::new(&overlay, cfg.peer_capacity);
        SpiderNet {
            overlay,
            reg: Registry::default(),
            pastry,
            directory: ServiceDirectory::new(),
            state,
            paths,
            weights: cfg.weights,
            obs: Instruments::new(),
            sessions: SessionManager::new(cfg.recovery.clone()),
            trust: TrustManager::new(0.98),
            now: SimTime::ZERO,
            seed: cfg.seed,
            compose_seq: 0,
            baseline_rng: rng_for(cfg.seed, "baseline-random"),
            pair_rejects_reported: 0,
            world_epoch: 0,
            trust_epoch: 0,
            compose_cache: None,
            compose_scratch: ComposeScratch::default(),
            compose_cache_reported: (0, 0, 0),
            pair_lookups_reported: (0, 0),
            pair_bypasses_reported: 0,
        }
    }

    /// Populates every peer with random components and registers them in
    /// the DHT directory.
    pub fn populate(&mut self, cfg: &PopulationConfig) {
        self.reg = populate(&self.overlay, cfg, self.seed);
        let metas: Vec<(String, ServiceMeta)> = self
            .reg
            .iter()
            .map(|c| {
                (
                    self.reg.catalog().name(c.function).to_owned(),
                    ServiceMeta { component: c.id, peer: c.peer, function: c.function },
                )
            })
            .collect();
        for (name, meta) in metas {
            self.register_meta(&name, meta);
        }
    }

    /// Adds one component (interning its function name) and registers it.
    pub fn add_component(&mut self, function_name: &str, mut proto: ServiceComponent) -> ComponentId {
        proto.function = self.reg.catalog_mut().intern(function_name);
        let id = self.reg.add(proto);
        let c = self.reg.get(id);
        let meta = ServiceMeta { component: id, peer: c.peer, function: c.function };
        self.register_meta(function_name, meta);
        id
    }

    fn register_meta(&mut self, name: &str, meta: ServiceMeta) {
        self.world_epoch += 1;
        let SpiderNet { pastry, directory, paths, overlay, obs, .. } = self;
        let mut transport = |a: PeerId, b: PeerId| paths.delay(overlay, a, b);
        if let Some(route) = directory.register(pastry, name, meta, &mut transport, &mut obs.trace)
        {
            obs.metrics.add(obs.counters.dht_messages, route.hops() as u64);
        }
    }

    // --- composition ---------------------------------------------------

    /// Runs the BCP protocol for `req` under a fresh observability session
    /// scope. Thin wrapper over [`SpiderNet::compose_with`] for callers
    /// that only need the raw BCP outcome.
    pub fn compose(&mut self, req: &CompositionRequest, cfg: &BcpConfig) -> Result<CompositionOutcome> {
        let session = self.next_compose_session();
        self.obs.metrics.begin_session(session);
        let out = self.run_bcp(req, cfg, session);
        self.obs.metrics.end_session();
        out
    }

    /// Runs the strategy selected by `opts` for `req` and returns a
    /// [`ComposeReport`] carrying the outcome plus the run's observability
    /// snapshot. Every composition — BCP or baseline — is scoped to its
    /// own metrics session and records the request's DAG shape.
    pub fn compose_with(
        &mut self,
        req: &CompositionRequest,
        opts: &CompositionOptions,
    ) -> Result<ComposeReport> {
        let session = self.next_compose_session();
        self.obs.metrics.begin_session(session);
        let mark = self.obs.trace.recorded();
        self.obs.metrics.observe(
            self.obs.counters.graph_nodes,
            req.function_graph.functions().len() as f64,
        );
        self.obs.metrics.observe(
            self.obs.counters.graph_branches,
            req.function_graph.branch_paths().len() as f64,
        );
        let result = match &opts.strategy {
            CompositionStrategy::Bcp(cfg) => {
                self.run_bcp(req, cfg, session).map(|out| ComposeReport {
                    session,
                    best: out.best,
                    eval: out.eval,
                    qualified_pool: out.qualified_pool,
                    probes: out.stats.probes_sent,
                    stats: Some(out.stats),
                    combos_examined: 0,
                    combos_pruned: 0,
                    trace: Vec::new(),
                })
            }
            CompositionStrategy::Optimal { combo_cap, pool, threads } => {
                let opt_opts =
                    OptimalOptions { combo_cap: *combo_cap, pool: *pool, threads: *threads };
                let out = {
                    let mut ctx = BaselineContext {
                        overlay: &self.overlay,
                        reg: &self.reg,
                        state: &self.state,
                        paths: &mut self.paths,
                        weights: &self.weights,
                    };
                    baselines::optimal_with(&mut ctx, req, &opt_opts)
                };
                out.map(|out| {
                    self.obs
                        .metrics
                        .add(self.obs.counters.combos_examined, out.combos_examined);
                    self.obs.metrics.add(self.obs.counters.combos_pruned, out.combos_pruned);
                    self.obs.trace.record(TraceEvent::BaselinePruned {
                        session,
                        considered: out.probes,
                        examined: out.combos_examined,
                        pruned: out.combos_pruned,
                    });
                    ComposeReport {
                        session,
                        best: out.best,
                        eval: out.eval,
                        qualified_pool: out.qualified_pool,
                        stats: None,
                        probes: out.probes,
                        combos_examined: out.combos_examined,
                        combos_pruned: out.combos_pruned,
                        trace: Vec::new(),
                    }
                })
            }
            CompositionStrategy::Random => {
                let mut ctx = BaselineContext {
                    overlay: &self.overlay,
                    reg: &self.reg,
                    state: &self.state,
                    paths: &mut self.paths,
                    weights: &self.weights,
                };
                baselines::random(&mut ctx, req, &mut self.baseline_rng).map(|out| {
                    ComposeReport {
                        session,
                        best: out.best,
                        eval: out.eval,
                        qualified_pool: out.qualified_pool,
                        stats: None,
                        probes: out.probes,
                        combos_examined: 0,
                        combos_pruned: 0,
                        trace: Vec::new(),
                    }
                })
            }
            CompositionStrategy::Static => {
                let mut ctx = BaselineContext {
                    overlay: &self.overlay,
                    reg: &self.reg,
                    state: &self.state,
                    paths: &mut self.paths,
                    weights: &self.weights,
                };
                baselines::static_(&mut ctx, req).map(|out| ComposeReport {
                    session,
                    best: out.best,
                    eval: out.eval,
                    qualified_pool: out.qualified_pool,
                    stats: None,
                    probes: out.probes,
                    combos_examined: 0,
                    combos_pruned: 0,
                    trace: Vec::new(),
                })
            }
        };
        self.obs.metrics.end_session();
        self.sync_pair_cache_stats();
        result.map(|mut report| {
            if opts.capture_trace {
                report.trace = self.obs.trace.events_since(mark);
            }
            report
        })
    }

    /// Folds pair-memo insert rejections into the
    /// `topology.pair_cache_evictions` counter and records a
    /// [`TraceEvent::PairCacheSaturated`] when new rejections appeared. A
    /// saturated memo silently degrades delay queries to tree walks;
    /// without this the slowdown is invisible in exported metrics.
    fn sync_pair_cache_stats(&mut self) {
        let rejected = self.paths.pair_rejections();
        if rejected > self.pair_rejects_reported {
            let delta = rejected - self.pair_rejects_reported;
            self.pair_rejects_reported = rejected;
            let c = self.obs.metrics.counter(counter::PAIR_CACHE_EVICTIONS);
            self.obs.metrics.add(c, delta);
            self.obs.trace.record(TraceEvent::PairCacheSaturated { rejected });
        }
        let (hits, misses) = (self.paths.pair_hits(), self.paths.pair_misses());
        let (h0, m0) = self.pair_lookups_reported;
        if hits > h0 {
            let c = self.obs.metrics.counter(counter::PAIR_CACHE_HITS);
            self.obs.metrics.add(c, hits - h0);
        }
        if misses > m0 {
            let c = self.obs.metrics.counter(counter::PAIR_CACHE_MISSES);
            self.obs.metrics.add(c, misses - m0);
        }
        self.pair_lookups_reported = (hits, misses);
        let bypasses = self.paths.pair_bypasses();
        if bypasses > self.pair_bypasses_reported {
            let c = self.obs.metrics.counter(counter::PAIR_CACHE_BYPASSES);
            self.obs.metrics.add(c, bypasses - self.pair_bypasses_reported);
            self.pair_bypasses_reported = bypasses;
        }
    }

    /// Folds compose-cache deltas into the metrics registry. Counters are
    /// interned lazily and only nonzero deltas are added, so worlds that
    /// never enable the cache export nothing new.
    fn sync_compose_cache_stats(&mut self) {
        let Some(cache) = self.compose_cache.as_ref() else { return };
        let (hits, misses, inv) = (cache.hits(), cache.misses(), cache.invalidations());
        let (h0, m0, i0) = self.compose_cache_reported;
        if hits > h0 {
            let c = self.obs.metrics.counter(counter::COMPOSE_CACHE_HITS);
            self.obs.metrics.add(c, hits - h0);
        }
        if misses > m0 {
            let c = self.obs.metrics.counter(counter::COMPOSE_CACHE_MISSES);
            self.obs.metrics.add(c, misses - m0);
        }
        if inv > i0 {
            let c = self.obs.metrics.counter(counter::COMPOSE_CACHE_INVALIDATIONS);
            self.obs.metrics.add(c, inv - i0);
        }
        self.compose_cache_reported = (hits, misses, inv);
    }

    /// Runs the pre-branch-and-bound naive optimal enumerator. Kept only
    /// as a wall-time / equivalence oracle for benches and tests; use
    /// [`SpiderNet::compose_with`] with [`CompositionOptions::optimal`]
    /// for real work.
    #[doc(hidden)]
    pub fn compose_optimal_naive(
        &mut self,
        req: &CompositionRequest,
        combo_cap: Option<u64>,
    ) -> Result<baselines::BaselineOutcome> {
        let mut ctx = BaselineContext {
            overlay: &self.overlay,
            reg: &self.reg,
            state: &self.state,
            paths: &mut self.paths,
            weights: &self.weights,
        };
        baselines::optimal_naive(&mut ctx, req, combo_cap)
    }

    fn next_compose_session(&mut self) -> u64 {
        let s = self.compose_seq;
        self.compose_seq += 1;
        s
    }

    fn run_bcp(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
        session: u64,
    ) -> Result<CompositionOutcome> {
        if let Some(cache) = self.compose_cache.as_mut() {
            // Soft-alloc watermark crossings fold into the structural epoch
            // so cached pools go stale exactly when a peer's shed
            // classification may have flipped.
            let epoch = self.world_epoch + self.state.watermark_crossings();
            cache.ensure_current(epoch, self.trust_epoch, cfg);
        }
        let mut engine = BcpEngine {
            overlay: &self.overlay,
            reg: &self.reg,
            pastry: &self.pastry,
            directory: &self.directory,
            state: &mut self.state,
            paths: &mut self.paths,
            weights: &self.weights,
            obs: &mut self.obs,
            session,
            now: self.now,
            trust: Some(&self.trust),
            cache: self.compose_cache.as_mut(),
            scratch: Some(&mut self.compose_scratch),
        };
        let out = engine.compose(req, cfg);
        self.sync_compose_cache_stats();
        out
    }

    // --- sessions --------------------------------------------------------

    /// Establishes a session from a BCP outcome (commits resources, selects
    /// backups) and counts the setup acknowledgement messages.
    pub fn establish(
        &mut self,
        req: &CompositionRequest,
        outcome: CompositionOutcome,
    ) -> Result<SessionId> {
        let id = self.sessions.establish(
            req.clone(),
            outcome.best,
            outcome.eval,
            outcome.qualified_pool,
            &self.reg,
            &self.overlay,
            &mut self.paths,
            &mut self.state,
        )?;
        // The ack travels the reversed service graph: one control message
        // per component plus the final hop to the source.
        if let Some(s) = self.sessions.session(id) {
            let n = s.primary.assignment.len() as u64 + 1;
            self.obs.metrics.add(self.obs.counters.control, n);
        }
        Ok(id)
    }

    /// Tears a session down (normal completion: the hosting peers earn
    /// positive trust feedback from the session's source).
    pub fn teardown(&mut self, id: SessionId) -> Result<()> {
        if let Some(s) = self.sessions.session(id) {
            let observer = s.request.source;
            let hosts: Vec<PeerId> =
                s.primary.components().iter().map(|&c| self.reg.get(c).peer).collect();
            self.trust.record_session_outcome(observer, hosts, Experience::Positive);
            self.trust_epoch += 1;
        }
        self.sessions.teardown(id, &mut self.state)
    }

    /// Fails a peer: resource state, DHT membership, directory metadata,
    /// and active sessions all react. Returns per-session outcomes for
    /// sessions whose primary was hit.
    pub fn fail_peer(&mut self, peer: PeerId) -> Vec<(SessionId, FailureOutcome)> {
        self.fail_peers(std::slice::from_ref(&peer))
    }

    /// Fails several peers as one correlated event: every peer is marked
    /// dead (state, path cache, DHT, trust) *before* any session recovery
    /// runs, so a session hit by the first peer can never switch onto a
    /// backup containing the second. Outcomes are reported in listed peer
    /// order; a single-element slice behaves exactly like
    /// [`SpiderNet::fail_peer`].
    pub fn fail_peers(&mut self, peers: &[PeerId]) -> Vec<(SessionId, FailureOutcome)> {
        for &peer in peers {
            self.mark_peer_failed(peer);
        }
        let mut outcomes = Vec::new();
        for &peer in peers {
            outcomes.extend(self.sessions.handle_peer_failure(
                peer,
                &self.reg,
                &self.overlay,
                &mut self.paths,
                &mut self.state,
                &self.weights,
                &mut self.obs,
            ));
        }
        outcomes
    }

    /// Propagates a peer's death to every subsystem except session
    /// recovery (which [`SpiderNet::fail_peers`] runs once all peers of a
    /// correlated event are marked).
    fn mark_peer_failed(&mut self, peer: PeerId) {
        self.world_epoch += 1;
        self.trust_epoch += 1;
        self.state.fail_peer(peer);
        // Shed only the shortest-path trees the departed peer participates
        // in; unrelated cached SSSPs stay warm through churn.
        self.paths.invalidate_peer(peer);
        self.pastry.remove_node(peer);
        self.directory.handle_departure(&self.pastry, peer);
        // Affected sessions' sources lose trust in the failed host.
        let observers: Vec<PeerId> = self
            .sessions
            .sessions()
            .filter(|s| s.primary.contains_peer(peer, &self.reg))
            .map(|s| s.request.source)
            .collect();
        for o in observers {
            self.trust.record(o, peer, Experience::Negative);
        }
    }

    /// Revives a failed peer: rejoins the ring and re-registers its
    /// components.
    pub fn revive_peer(&mut self, peer: PeerId) {
        self.world_epoch += 1;
        self.state.revive_peer(peer);
        {
            let SpiderNet { pastry, paths, overlay, .. } = self;
            let mut prox = |a: PeerId, b: PeerId| paths.delay(overlay, a, b);
            pastry.add_node(peer, &mut prox);
        }
        self.directory.handle_arrival(&self.pastry);
        let metas: Vec<(String, ServiceMeta)> = self
            .reg
            .on_peer(peer)
            .iter()
            .map(|&cid| {
                let c = self.reg.get(cid);
                (
                    self.reg.catalog().name(c.function).to_owned(),
                    ServiceMeta { component: cid, peer: c.peer, function: c.function },
                )
            })
            .collect();
        for (name, meta) in metas {
            self.register_meta(&name, meta);
        }
    }

    /// One backup-maintenance round across all sessions (also decays the
    /// trust tables one step).
    pub fn maintenance_tick(&mut self) -> u64 {
        self.trust_epoch += 1;
        self.trust.decay_all();
        self.sessions.maintenance_tick(&self.reg, &self.state, &mut self.obs)
    }

    /// Advances virtual time, expiring overdue soft reservations. Returns
    /// how many reservations the sweep reclaimed.
    pub fn advance(&mut self, dt: SimDuration) -> usize {
        self.now += dt;
        self.state.expire_soft(self.now, &mut self.obs.trace)
    }

    // --- shared-bandwidth flow model --------------------------------------

    /// Switches the overlay onto the shared-bandwidth flow model: link
    /// bandwidth stops gating admission and every committed stream becomes
    /// an elastic flow whose delivered rate is the max-min fair share of
    /// its route. Idempotent; bumps the world epoch because availability
    /// semantics change under any compose cache.
    pub fn enable_flow_model(&mut self) {
        if self.state.flow_model_enabled() {
            return;
        }
        self.world_epoch += 1;
        self.state.enable_flow_model();
    }

    /// Delivered fraction of a live session's demanded frame rate under
    /// the flow model (1.0 when the model is off or the session is gone).
    pub fn session_delivered_fraction(&mut self, id: SessionId) -> Option<f64> {
        let SpiderNet { sessions, state, .. } = self;
        sessions.session(id).map(|s| state.delivered_fraction(&s.allocation))
    }

    /// Delivered network goodput of a live session in Mbps (sum of its
    /// flows' fair-share rates; 0.0 with the flow model off).
    pub fn session_goodput(&mut self, id: SessionId) -> Option<f64> {
        let SpiderNet { sessions, state, .. } = self;
        sessions.session(id).map(|s| state.session_goodput(&s.allocation))
    }

    /// End-to-end delay of a live session's primary graph with every hop
    /// inflated by current link stress (queueing under contention). Walks
    /// source → hosts → dest and sums contention-aware hop delays; these
    /// queries deliberately bypass the pair-delay memo, which only stores
    /// uncongested values.
    pub fn contended_session_delay(&mut self, id: SessionId) -> Option<f64> {
        let SpiderNet { sessions, state, paths, overlay, reg, .. } = self;
        let s = sessions.session(id)?;
        let mut route: Vec<PeerId> = Vec::with_capacity(s.primary.assignment.len() + 2);
        route.push(s.request.source);
        route.extend(s.primary.components().iter().map(|&c| reg.get(c).peer));
        route.push(s.request.dest);
        let mut total = 0.0;
        for w in route.windows(2) {
            total += paths.contended_delay(overlay, w[0], w[1], |a, b| state.link_stress(a, b));
        }
        Some(total)
    }

    /// Feeds every live session's delivered fraction into the marketplace
    /// reputation of its hosting peers (sessions visited in id order, so
    /// EWMA updates are deterministic). Returns the number of sessions
    /// observed. No-op unless the flow model is enabled.
    pub fn observe_session_deliveries(&mut self) -> usize {
        if !self.state.flow_model_enabled() {
            return 0;
        }
        let mut observed = 0;
        let SpiderNet { sessions, state, trust, reg, .. } = self;
        for s in sessions.sessions() {
            let frac = state.delivered_fraction(&s.allocation);
            for &c in s.primary.components() {
                trust.market_mut().observe(reg.get(c).peer, frac);
            }
            observed += 1;
        }
        if observed > 0 {
            self.trust_epoch += 1;
        }
        observed
    }

    // --- accessors -------------------------------------------------------

    /// The overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The component registry.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Live resource state (mutable for experiment setup).
    pub fn state_mut(&mut self) -> &mut OverlayState {
        &mut self.state
    }

    /// Live resource state.
    pub fn state(&self) -> &OverlayState {
        &self.state
    }

    /// Protocol metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs.metrics
    }

    /// The full observability bundle (metrics + resolved handles + trace).
    pub fn obs(&self) -> &Instruments {
        &self.obs
    }

    /// Mutable observability bundle (exporters, session-tracking toggles).
    pub fn obs_mut(&mut self) -> &mut Instruments {
        &mut self.obs
    }

    /// Enables or disables per-session metric rows (off by default).
    pub fn set_session_tracking(&mut self, on: bool) {
        self.obs.metrics.set_session_tracking(on);
    }

    /// Enables or disables the epoch-invalidated compose cache (off by
    /// default). Enabling starts cold; disabling drops the cache and its
    /// counters (deltas already folded into metrics are kept).
    pub fn set_compose_caching(&mut self, on: bool) {
        if on {
            if self.compose_cache.is_none() {
                self.compose_cache = Some(ComposeCache::new());
                self.compose_cache_reported = (0, 0, 0);
            }
        } else {
            self.sync_compose_cache_stats();
            self.compose_cache = None;
        }
    }

    /// Compose-cache lifetime totals `(hits, misses, invalidations)`;
    /// zeros while caching is disabled.
    pub fn compose_cache_stats(&self) -> (u64, u64, u64) {
        self.compose_cache
            .as_ref()
            .map(|c| (c.hits(), c.misses(), c.invalidations()))
            .unwrap_or((0, 0, 0))
    }

    /// Structural world epoch (diagnostics; includes soft-alloc watermark
    /// crossings when a finite watermark is set on the state).
    pub fn world_epoch(&self) -> u64 {
        self.world_epoch + self.state.watermark_crossings()
    }

    /// Resets protocol metrics and the trace ring (between experiment
    /// phases). Interned handles stay valid.
    pub fn reset_metrics(&mut self) {
        self.obs.reset();
    }

    /// The session manager.
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Mutable session manager (reactive recovery orchestration).
    pub fn sessions_mut(&mut self) -> &mut SessionManager {
        &mut self.sessions
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trust tables.
    pub fn trust(&self) -> &TrustManager {
        &self.trust
    }

    /// Mutable trust tables (experiments inject adversarial histories).
    /// Conservatively counts as a trust mutation for cache epochs.
    pub fn trust_mut(&mut self) -> &mut TrustManager {
        self.trust_epoch += 1;
        &mut self.trust
    }

    /// Like [`SpiderNet::reactive_recover`] but also returns the BCP stats
    /// of the re-composition (None when the session is gone or nothing
    /// qualified — the session is abandoned in that case).
    pub fn reactive_recover_with_stats(
        &mut self,
        id: SessionId,
        cfg: &BcpConfig,
    ) -> Option<crate::bcp::BcpStats> {
        let req = self.sessions.session(id).map(|s| s.request.clone())?;
        match self.compose(&req, cfg) {
            Ok(outcome) => {
                let stats = outcome.stats.clone();
                let ok = self
                    .sessions
                    .reestablish(
                        id,
                        outcome.best,
                        outcome.eval,
                        outcome.qualified_pool,
                        &self.reg,
                        &self.overlay,
                        &mut self.paths,
                        &mut self.state,
                    )
                    .is_ok();
                if ok {
                    Some(stats)
                } else {
                    self.sessions.abandon(id);
                    None
                }
            }
            Err(_) => {
                self.sessions.abandon(id);
                None
            }
        }
    }

    /// Reactive recovery: re-runs BCP for a session that lost all backups
    /// and re-establishes it on success; abandons it otherwise. Returns
    /// true if the session was saved.
    pub fn reactive_recover(&mut self, id: SessionId, cfg: &BcpConfig) -> bool {
        let Some(req) = self.sessions.session(id).map(|s| s.request.clone()) else {
            return false;
        };
        match self.compose(&req, cfg) {
            Ok(outcome) => {
                let ok = self
                    .sessions
                    .reestablish(
                        id,
                        outcome.best,
                        outcome.eval,
                        outcome.qualified_pool,
                        &self.reg,
                        &self.overlay,
                        &mut self.paths,
                        &mut self.state,
                    )
                    .is_ok();
                if !ok {
                    self.sessions.abandon(id);
                }
                ok
            }
            Err(_) => {
                self.sessions.abandon(id);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_request, RequestConfig};
    use spidernet_sim::metrics::counter;
    use spidernet_util::rng::rng_for;

    fn small() -> SpiderNet {
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: 300,
            peers: 60,
            seed: 17,
            ..SpiderNetConfig::default()
        });
        net.populate(&PopulationConfig { functions: 12, ..Default::default() });
        net
    }

    fn loose_request(net: &SpiderNet, rng: &mut spidernet_util::rng::Rng) -> CompositionRequest {
        random_request(
            net.overlay(),
            net.registry(),
            &RequestConfig {
                functions: (2, 3),
                delay_bound_ms: (50_000.0, 60_000.0),
                loss_bound: (0.5, 0.6),
                ..RequestConfig::default()
            },
            rng,
        )
    }

    #[test]
    fn end_to_end_compose_and_establish() {
        let mut net = small();
        let mut rng = rng_for(17, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let id = net.establish(&req, outcome).unwrap();
        assert_eq!(net.sessions().len(), 1);
        assert!(net.metrics().value(counter::PROBES) > 0);
        assert!(net.metrics().value(counter::CONTROL) > 0);
        net.teardown(id).unwrap();
        assert!(net.sessions().is_empty());
    }

    #[test]
    fn dht_registration_costs_messages() {
        let net = small();
        assert!(net.metrics().value(counter::DHT_MESSAGES) > 0);
        assert!(net.registry().len() >= 60);
    }

    #[test]
    fn bcp_agrees_with_optimal_under_large_budget() {
        let mut net = small();
        let mut rng = rng_for(18, "sys");
        for _ in 0..5 {
            let req = loose_request(&net, &mut rng);
            let Ok(opt) = net.compose_with(&req, &CompositionOptions::optimal(None)) else {
                continue;
            };
            let bcp = net
                .compose(
                    &req,
                    &BcpConfig {
                        budget: 4096,
                        quota: crate::bcp::QuotaPolicy::Uniform(64),
                        merge_cap: 4096,
                        ..BcpConfig::default()
                    },
                )
                .unwrap();
            assert!(
                bcp.eval.cost <= opt.eval.cost + 1e-9,
                "unbounded BCP must match optimal: {} vs {}",
                bcp.eval.cost,
                opt.eval.cost
            );
        }
    }

    #[test]
    fn failure_and_reactive_recovery_flow() {
        let mut net = small();
        let mut rng = rng_for(19, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let id = net.establish(&req, outcome).unwrap();
        // Fail every peer of the primary AND of the backups so reactive
        // recovery is forced... or at least exercise the failure path once.
        let victim = {
            let s = net.sessions().session(id).unwrap();
            net.registry().get(s.primary.assignment[0]).peer
        };
        let outcomes = net.fail_peer(victim);
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0].1 {
            FailureOutcome::RecoveredByBackup { .. } => {
                let s = net.sessions().session(id).unwrap();
                assert!(!s.primary.contains_peer(victim, net.registry()));
            }
            FailureOutcome::NeedsReactive => {
                let saved = net.reactive_recover(id, &BcpConfig::default());
                if saved {
                    let s = net.sessions().session(id).unwrap();
                    assert!(!s.primary.contains_peer(victim, net.registry()));
                } else {
                    assert!(net.sessions().session(id).is_none());
                }
            }
        }
    }

    #[test]
    fn correlated_failure_marks_all_peers_before_recovery() {
        let mut net = small();
        let mut rng = rng_for(29, "sys-corr");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let id = net.establish(&req, outcome).unwrap();
        // Kill a primary peer together with a peer carrying backup state:
        // recovery must not switch onto anything containing either.
        let (victim, buddy) = {
            let s = net.sessions().session(id).unwrap();
            let victim = net.registry().get(s.primary.assignment[0]).peer;
            let buddy = s
                .backups
                .iter()
                .flat_map(|(g, _)| g.components().iter())
                .map(|&c| net.registry().get(c).peer)
                .find(|&p| p != victim)
                .unwrap_or(victim);
            (victim, buddy)
        };
        let outcomes = net.fail_peers(&[victim, buddy]);
        assert!(!outcomes.is_empty());
        assert!(!net.state().is_alive(victim));
        assert!(!net.state().is_alive(buddy));
        for (sid, outcome) in &outcomes {
            if matches!(outcome, FailureOutcome::RecoveredByBackup { .. }) {
                let s = net.sessions().session(*sid).unwrap();
                assert!(!s.primary.contains_peer(victim, net.registry()));
                assert!(!s.primary.contains_peer(buddy, net.registry()));
            }
        }
    }

    #[test]
    fn failed_peer_disappears_from_discovery() {
        let mut net = small();
        let victim = PeerId::new(5);
        let victim_components = net.registry().on_peer(victim).len();
        assert!(victim_components > 0);
        net.fail_peer(victim);
        // Compose requests never land on the dead peer.
        let mut rng = rng_for(20, "sys");
        for _ in 0..5 {
            let req = loose_request(&net, &mut rng);
            if req.source == victim || req.dest == victim {
                continue;
            }
            if let Ok(out) = net.compose(&req, &BcpConfig::default()) {
                assert!(!out.best.contains_peer(victim, net.registry()));
            }
        }
        // Revival restores discoverability.
        net.revive_peer(victim);
        assert!(net.state().is_alive(victim));
    }

    #[test]
    fn advance_expires_soft_state() {
        let mut net = small();
        let p = PeerId::new(3);
        net.state_mut()
            .soft_allocate(
                p,
                ResourceVector::new(0.1, 1.0),
                SimTime::from_ms(100.0),
                &mut spidernet_sim::trace::TraceBuffer::new(),
            )
            .unwrap();
        assert_eq!(net.state().soft_count(), 1);
        net.advance(SimDuration::from_ms(200.0));
        assert_eq!(net.state().soft_count(), 0);
        assert_eq!(net.now(), SimTime::from_ms(200.0));
    }

    #[test]
    fn trust_feedback_flows_from_session_outcomes() {
        let mut net = small();
        let mut rng = rng_for(23, "sys-trust");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let hosts: Vec<PeerId> = outcome
            .best
            .components()
            .iter()
            .map(|&c| net.registry().get(c).peer)
            .collect();
        let observer = req.source;
        let id = net.establish(&req, outcome).unwrap();

        // Normal completion earns positive trust from the source.
        net.teardown(id).unwrap();
        for &h in &hosts {
            assert!(
                net.trust().trust(observer, h) > 0.5,
                "host {h} earned no positive feedback"
            );
        }

        // A failure mid-session earns negative trust.
        let req2 = loose_request(&net, &mut rng);
        let outcome2 = net.compose(&req2, &BcpConfig::default()).unwrap();
        let victim = net.registry().get(outcome2.best.assignment[0]).peer;
        let observer2 = req2.source;
        let before = net.trust().trust(observer2, victim);
        let _ = net.establish(&req2, outcome2).unwrap();
        net.fail_peer(victim);
        assert!(
            net.trust().trust(observer2, victim) < before + 1e-12,
            "failure did not lower trust"
        );
    }

    #[test]
    fn maintenance_counts_messages() {
        let mut net = small();
        let mut rng = rng_for(21, "sys");
        let req = loose_request(&net, &mut rng);
        let outcome = net.compose(&req, &BcpConfig::default()).unwrap();
        let _ = net.establish(&req, outcome).unwrap();
        let msgs = net.maintenance_tick();
        // Messages only flow if backups exist; either way the counter is
        // consistent.
        assert_eq!(net.metrics().value(counter::MAINTENANCE), msgs);
    }

    #[test]
    fn compose_with_scopes_sessions_and_reports() {
        let mut net = small();
        net.set_session_tracking(true);
        let mut rng = rng_for(31, "sys-obs");
        let req = loose_request(&net, &mut rng);
        let opts = CompositionOptions::bcp(BcpConfig::default()).with_trace();
        let a = net.compose_with(&req, &opts).unwrap();
        let b = net.compose_with(&req, &opts).unwrap();
        assert_ne!(a.session, b.session, "session ids must be unique");
        let stats = a.stats.as_ref().expect("BCP runs carry stats");
        assert!(a.probes > 0);
        assert_eq!(a.probes, stats.probes_sent);
        // The per-session probe row matches the run's own accounting.
        let probes = net.obs().counters.probes;
        assert_eq!(net.metrics().session_value(a.session, probes), stats.probes_sent);
        #[cfg(feature = "trace")]
        {
            let spawned = a
                .trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::ProbeSpawned { .. }))
                .count() as u64;
            assert_eq!(spawned, stats.probes_sent, "one ProbeSpawned per probe");
            assert!(a
                .trace
                .iter()
                .all(|e| !matches!(e, TraceEvent::ProbeSpawned { session, .. } if *session != a.session)));
        }
        // Baselines flow through the same entry point.
        let r = net.compose_with(&req, &CompositionOptions::random()).unwrap();
        assert!(r.stats.is_none());
        assert_eq!(r.probes, 1);
        let s = net.compose_with(&req, &CompositionOptions::static_()).unwrap();
        assert_eq!(s.probes, 1);
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let mut net = SpiderNet::build(&SpiderNetConfig {
                ip_nodes: 300,
                peers: 60,
                seed,
                ..SpiderNetConfig::default()
            });
            net.populate(&PopulationConfig { functions: 12, ..Default::default() });
            let mut rng = rng_for(seed, "sys-rand");
            let req = loose_request(&net, &mut rng);
            net.compose_with(&req, &CompositionOptions::random()).unwrap().best.assignment
        };
        assert_eq!(pick(41), pick(41), "same seed must reproduce the random pick");
    }
}
