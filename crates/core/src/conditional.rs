//! Conditional-branch composition semantics (the paper's §8 future work:
//! "extend the current solution to support more expressive service
//! composition semantics such as conditional branch").
//!
//! A DAG fork is *parallel* by default — every ADU flows down every
//! branch, so user-visible QoS is the **worst branch** and every branch
//! carries the full stream rate. Under *conditional* semantics each ADU
//! takes exactly one branch, chosen with a per-branch probability: the
//! expected QoS is the **probability-weighted mean** over branches and a
//! branch's links carry only their share of the stream.
//!
//! This module layers the conditional evaluation on top of the existing
//! model without changing the core types: a [`BranchPolicy`] assigns
//! probabilities to a pattern's branch paths, and [`evaluate_conditional`]
//! mirrors [`crate::selection::evaluate`] with the weighted aggregation.
//! Components and failure handling are unchanged — all branches must be
//! instantiated and alive; only the data-flow statistics differ.

use crate::model::component::Registry;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::state::OverlayState;
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::qos::{dim, QosVector};

/// Probabilities over a pattern's branch paths (same order as
/// [`crate::model::FunctionGraph::branch_paths`]).
#[derive(Clone, Debug)]
pub struct BranchPolicy {
    probabilities: Vec<f64>,
}

impl BranchPolicy {
    /// Builds a policy; probabilities must be non-negative and sum to 1.
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        if probabilities.is_empty() {
            return Err(Error::InvalidRequirement("empty branch policy".into()));
        }
        if probabilities.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(Error::InvalidRequirement("negative branch probability".into()));
        }
        let sum: f64 = probabilities.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidRequirement(format!(
                "branch probabilities sum to {sum}, expected 1"
            )));
        }
        Ok(BranchPolicy { probabilities })
    }

    /// Uniform probability over `n` branches.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        BranchPolicy { probabilities: vec![1.0 / n as f64; n] }
    }

    /// Number of branches covered.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// True if the policy covers no branches (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Probability of branch `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }
}

/// Evaluates a service graph under conditional-branch semantics.
///
/// Differences from the parallel evaluation:
/// * QoS = Σ_b p_b · QoS(branch b) (expected, not worst-case);
/// * a service link inside branch b demands `p_b ×` its parallel-semantics
///   bandwidth (expected stream share); links on the trunk shared by all
///   branches keep full rate (their probability shares sum to 1).
///
/// The ψ cost and resource feasibility use the scaled bandwidths; peer
/// end-system demand is unchanged (a component must be provisioned for
/// the whole session regardless of how often its branch fires).
#[allow(clippy::too_many_arguments)] // mirrors selection::evaluate's shape
pub fn evaluate_conditional(
    graph: &ServiceGraph,
    policy: &BranchPolicy,
    req: &CompositionRequest,
    reg: &Registry,
    overlay: &Overlay,
    state: &OverlayState,
    paths: &mut PathTable,
    weights: &CostWeights,
) -> Result<GraphEval> {
    let branches = graph.pattern.branch_paths();
    if branches.len() != policy.len() {
        return Err(Error::InvalidRequirement(format!(
            "policy covers {} branches, pattern has {}",
            policy.len(),
            branches.len()
        )));
    }
    let m = req.qos_req.dims();

    // --- expected QoS over branches ---
    let mut qos_acc = vec![0.0; m];
    for (bi, branch) in branches.iter().enumerate() {
        let p = policy.probability(bi);
        let mut acc = QosVector::zeros(m);
        let mut prev = graph.source;
        for &node in branch {
            let comp = reg.get(graph.component_at(node));
            let mut leg = vec![0.0; m];
            leg[dim::DELAY_MS] = paths.delay(overlay, prev, comp.peer);
            acc.accumulate(&QosVector::from_values(leg));
            acc.accumulate(&comp.perf_qos);
            prev = comp.peer;
        }
        let mut tail = vec![0.0; m];
        tail[dim::DELAY_MS] = paths.delay(overlay, prev, graph.dest);
        acc.accumulate(&QosVector::from_values(tail));
        for (a, v) in qos_acc.iter_mut().zip(acc.values()) {
            *a += p * v;
        }
    }
    let qos = QosVector::from_values(qos_acc);

    // --- bandwidth with per-node branch shares ---
    // A node's share is the total probability of branches containing it;
    // the edge (a → b) carries min(share_a, share_b)… which for tree-like
    // DAG forks equals share of the downstream node.
    let mut node_share = vec![0.0f64; graph.pattern.len()];
    for (bi, branch) in branches.iter().enumerate() {
        for &n in branch {
            node_share[n] += policy.probability(bi);
        }
    }
    // Shares can exceed 1 only through float accumulation; clamp.
    for s in &mut node_share {
        *s = s.min(1.0);
    }

    let mut fits = true;
    let mut cost = 0.0;
    let demand = graph.per_peer_demand(reg);
    for (&peer, need) in &demand {
        let avail = state.available(peer);
        if !need.fits_within(&avail) {
            fits = false;
        }
        cost += need.weighted_usage_ratio(&avail, &weights.resource);
    }
    for link in graph.service_links() {
        let from = graph.peer_of_end(link.from, reg);
        let to = graph.peer_of_end(link.to, reg);
        let base_bw = graph.link_bandwidth(&link, reg, req.bandwidth_mbps);
        let share = match (link.from, link.to) {
            (crate::model::service_graph::LinkEnd::Node(a), crate::model::service_graph::LinkEnd::Node(b)) => {
                node_share[a].min(node_share[b])
            }
            (_, crate::model::service_graph::LinkEnd::Node(b)) => node_share[b],
            (crate::model::service_graph::LinkEnd::Node(a), _) => node_share[a],
            _ => 1.0,
        };
        let bw = base_bw * share;
        if from == to || bw <= 0.0 {
            continue;
        }
        match paths.peer_path(overlay, from, to) {
            None => {
                fits = false;
                cost = f64::INFINITY;
            }
            Some(path) => {
                let avail = state.path_available(&path);
                if avail + 1e-12 < bw {
                    fits = false;
                }
                cost += weights.bandwidth * if avail > 0.0 { bw / avail } else { f64::INFINITY };
            }
        }
    }
    for &c in graph.components() {
        if !state.is_alive(reg.get(c).peer) {
            fits = false;
            cost = f64::INFINITY;
        }
    }

    Ok(GraphEval { qos, cost, failure_prob: graph.failure_probability(reg), fits_resources: fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::ServiceComponent;
    use crate::model::function_graph::FunctionGraph;
    use crate::selection::evaluate;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::id::{ComponentId, FunctionId, PeerId};
    use spidernet_util::qos::QosRequirement;
    use spidernet_util::res::ResourceVector;

    struct World {
        overlay: Overlay,
        reg: Registry,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
    }

    /// Diamond 0→{1,2}→3 with distinct per-branch component delays.
    fn world() -> (World, ServiceGraph, CompositionRequest) {
        let ip = generate_power_law(&InetConfig { nodes: 150, ..InetConfig::default() }, 51);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 30, style: OverlayStyle::Mesh { neighbors: 4 } },
            51,
        );
        let mut reg = Registry::default();
        // Functions 0..4, one replica each, branch 1 slow (100ms), branch 2
        // fast (10ms).
        for (peer, function, delay) in
            [(2u64, 0u64, 10.0), (3, 1, 100.0), (4, 2, 10.0), (5, 3, 10.0)]
        {
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(peer),
                function: FunctionId::new(function),
                perf_qos: QosVector::from_values(vec![delay, 0.0]),
                resources: ResourceVector::new(0.1, 16.0),
                out_bandwidth_mbps: 2.0,
                failure_prob: 0.01,
            });
        }
        let pattern = FunctionGraph::new(
            (0..4).map(FunctionId::new).collect(),
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![],
        )
        .unwrap();
        let graph = ServiceGraph::new(
            PeerId::new(0),
            PeerId::new(1),
            pattern,
            (0..4).map(ComponentId::new).collect(),
        );
        let req = CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: graph.pattern.clone(),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        };
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        (World { overlay, reg, state, paths: PathTable::new(), weights: CostWeights::uniform() }, graph, req)
    }

    #[test]
    fn policy_validation() {
        assert!(BranchPolicy::new(vec![0.5, 0.5]).is_ok());
        assert!(BranchPolicy::new(vec![0.5, 0.6]).is_err());
        assert!(BranchPolicy::new(vec![-0.1, 1.1]).is_err());
        assert!(BranchPolicy::new(vec![]).is_err());
        let u = BranchPolicy::uniform(4);
        assert_eq!(u.len(), 4);
        assert!((u.probability(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn expected_qos_is_probability_weighted() {
        let (mut w, graph, req) = world();
        // All mass on the slow branch ≈ parallel worst-branch result for
        // that branch; all mass on the fast branch is strictly better.
        let slow = evaluate_conditional(
            &graph,
            &BranchPolicy::new(vec![1.0, 0.0]).unwrap(),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        let fast = evaluate_conditional(
            &graph,
            &BranchPolicy::new(vec![0.0, 1.0]).unwrap(),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        let even = evaluate_conditional(
            &graph,
            &BranchPolicy::uniform(2),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        assert!(fast.qos[dim::DELAY_MS] < slow.qos[dim::DELAY_MS]);
        let expected_even = 0.5 * (slow.qos[dim::DELAY_MS] + fast.qos[dim::DELAY_MS]);
        assert!((even.qos[dim::DELAY_MS] - expected_even).abs() < 1e-9);
    }

    #[test]
    fn conditional_delay_never_exceeds_parallel_worst_branch() {
        let (mut w, graph, req) = world();
        let parallel =
            evaluate(&graph, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights);
        let conditional = evaluate_conditional(
            &graph,
            &BranchPolicy::uniform(2),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        assert!(conditional.qos[dim::DELAY_MS] <= parallel.qos[dim::DELAY_MS] + 1e-9);
    }

    #[test]
    fn branch_links_demand_only_their_share() {
        let (mut w, graph, req) = world();
        // ψ bandwidth term should shrink when branch traffic is split,
        // because branch links carry scaled rates.
        let parallel =
            evaluate(&graph, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights);
        let conditional = evaluate_conditional(
            &graph,
            &BranchPolicy::uniform(2),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        assert!(conditional.cost <= parallel.cost + 1e-9);
    }

    #[test]
    fn policy_must_match_branch_count() {
        let (mut w, graph, req) = world();
        let err = evaluate_conditional(
            &graph,
            &BranchPolicy::uniform(3),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        );
        assert!(err.is_err());
    }

    #[test]
    fn dead_peer_still_disqualifies() {
        let (mut w, graph, req) = world();
        // Even a zero-probability branch must be alive (it is provisioned).
        w.state.fail_peer(PeerId::new(3));
        let eval = evaluate_conditional(
            &graph,
            &BranchPolicy::new(vec![0.0, 1.0]).unwrap(),
            &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights,
        )
        .unwrap();
        assert!(!eval.fits_resources);
    }

    #[test]
    fn linear_graphs_reduce_to_parallel_semantics() {
        let ip = generate_power_law(&InetConfig { nodes: 150, ..InetConfig::default() }, 52);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 20, style: OverlayStyle::Mesh { neighbors: 4 } },
            52,
        );
        let mut reg = Registry::default();
        for f in 0..2u64 {
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(2 + f),
                function: FunctionId::new(f),
                perf_qos: QosVector::from_values(vec![10.0, 0.0]),
                resources: ResourceVector::new(0.1, 16.0),
                out_bandwidth_mbps: 1.0,
                failure_prob: 0.01,
            });
        }
        let g = ServiceGraph::new(
            PeerId::new(0),
            PeerId::new(1),
            FunctionGraph::linear(2),
            vec![ComponentId::new(0), ComponentId::new(1)],
        );
        let req = CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: g.pattern.clone(),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        };
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        let mut paths = PathTable::new();
        let weights = CostWeights::uniform();
        let par = evaluate(&g, &req, &reg, &overlay, &state, &mut paths, &weights);
        let cond = evaluate_conditional(
            &g,
            &BranchPolicy::uniform(1),
            &req, &reg, &overlay, &state, &mut paths, &weights,
        )
        .unwrap();
        assert!((par.qos[dim::DELAY_MS] - cond.qos[dim::DELAY_MS]).abs() < 1e-9);
        assert!((par.cost - cond.cost).abs() < 1e-9);
    }
}
