//! The paper's comparison algorithms (§6.1): optimal (unbounded flooding),
//! random, static, and the centralized global-state scheme's overhead
//! model.

use crate::model::component::Registry;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::selection::{evaluate, is_qualified, select_best};
use crate::state::OverlayState;
use spidernet_util::rng::SliceRandom;
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::ComponentId;
use spidernet_util::rng::Rng;

/// Result of a baseline composition.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// The selected service graph.
    pub best: ServiceGraph,
    /// Its evaluation.
    pub eval: GraphEval,
    /// Remaining qualified graphs, cost-ordered (empty for random/static).
    pub qualified_pool: Vec<(ServiceGraph, GraphEval)>,
    /// Probe-equivalent overhead: candidate service graphs examined. For
    /// the optimal flooding scheme this is Π_k Z_k — the paper's "average
    /// number of probes required by the optimal algorithm" (17³ = 4913 in
    /// §6.2).
    pub probes: u64,
}

/// Shared borrow bundle for baseline runs.
pub struct BaselineContext<'a> {
    /// The service overlay.
    pub overlay: &'a Overlay,
    /// Component ground truth (baselines are centralized: they may read it
    /// wholesale).
    pub reg: &'a Registry,
    /// Live resource state.
    pub state: &'a OverlayState,
    /// Shortest-path cache.
    pub paths: &'a mut PathTable,
    /// ψ weights.
    pub weights: &'a CostWeights,
}

fn replica_sets(ctx: &BaselineContext<'_>, req: &CompositionRequest) -> Result<Vec<Vec<ComponentId>>> {
    req.function_graph
        .functions()
        .iter()
        .map(|&f| {
            let reps = ctx.reg.replicas(f);
            if reps.is_empty() {
                Err(Error::UnknownFunction(ctx.reg.catalog().name(f).to_owned()))
            } else {
                Ok(reps.to_vec())
            }
        })
        .collect()
}

/// The optimal algorithm: "unbounded network flooding, which exhaustively
/// searches all candidate service graphs to find the best qualified
/// service graph".
///
/// `combo_cap`, when set, truncates the enumeration (used only to bound
/// test/bench runtimes; experiments reproducing paper numbers run
/// uncapped).
pub fn optimal(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    combo_cap: Option<u64>,
) -> Result<BaselineOutcome> {
    req.validate()?;
    let mut qualified: Vec<(ServiceGraph, GraphEval)> = Vec::new();
    let mut total_combos: u64 = 0;
    let mut examined: u64 = 0;
    // Validate that every required function has replicas before enumerating.
    replica_sets(ctx, req)?;

    for pattern in req.function_graph.patterns() {
        // Replica sets follow the *pattern's* node order.
        let sets: Vec<Vec<ComponentId>> =
            pattern.functions().iter().map(|&f| ctx.reg.replicas(f).to_vec()).collect();
        let combos: u64 = sets.iter().map(|s| s.len() as u64).product();
        total_combos += combos;

        // Odometer enumeration of the cartesian product.
        let n = sets.len();
        let mut idx = vec![0usize; n];
        loop {
            if let Some(cap) = combo_cap {
                if examined >= cap {
                    break;
                }
            }
            examined += 1;
            let assignment: Vec<ComponentId> = (0..n).map(|i| sets[i][idx[i]]).collect();
            let graph = ServiceGraph::new(req.source, req.dest, pattern.clone(), assignment);
            let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
            if is_qualified(&eval, req) {
                qualified.push((graph, eval));
            }
            // Advance odometer.
            let mut carry = n;
            for i in (0..n).rev() {
                idx[i] += 1;
                if idx[i] < sets[i].len() {
                    carry = i;
                    break;
                }
                idx[i] = 0;
            }
            if carry == n {
                break;
            }
        }
    }

    match select_best(qualified) {
        Some((best, eval, pool)) => Ok(BaselineOutcome {
            best,
            eval,
            qualified_pool: pool,
            probes: combo_cap.map_or(total_combos, |c| total_combos.min(c)),
        }),
        None => Err(Error::NoQualifiedComposition),
    }
}

/// The random algorithm: "randomly selects a functionally qualified service
/// component for each function node … does not consider the user's QoS and
/// resource requirements". The pick ignores requirements; the returned
/// evaluation reports whether it happened to qualify.
pub fn random(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    rng: &mut Rng,
) -> Result<BaselineOutcome> {
    req.validate()?;
    let sets = replica_sets(ctx, req)?;
    let assignment: Vec<ComponentId> = sets
        .iter()
        .map(|s| *s.choose(rng).expect("replica sets are non-empty"))
        .collect();
    // Random/static use the original function graph order (they do not
    // explore commutations).
    let pattern = req.function_graph.patterns().into_iter().next().expect("≥1 pattern");
    let graph = ServiceGraph::new(req.source, req.dest, pattern, assignment);
    let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
    Ok(BaselineOutcome { best: graph, eval, qualified_pool: Vec::new(), probes: 1 })
}

/// The static algorithm: a pre-defined component (the first registered
/// replica) for each function node, regardless of requirements.
pub fn static_(ctx: &mut BaselineContext<'_>, req: &CompositionRequest) -> Result<BaselineOutcome> {
    req.validate()?;
    let sets = replica_sets(ctx, req)?;
    let assignment: Vec<ComponentId> = sets.iter().map(|s| s[0]).collect();
    let pattern = req.function_graph.patterns().into_iter().next().expect("≥1 pattern");
    let graph = ServiceGraph::new(req.source, req.dest, pattern, assignment);
    let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
    Ok(BaselineOutcome { best: graph, eval, qualified_pool: Vec::new(), probes: 1 })
}

/// Message overhead of the centralized global-view scheme over a time
/// horizon: every peer pushes a state update to the central composer every
/// `update_period` time units (the "expensive periodical states update" the
/// paper contrasts BCP against).
pub fn centralized_state_messages(peers: u64, duration_units: u64, update_period_units: u64) -> u64 {
    assert!(update_period_units >= 1, "update period must be ≥ 1");
    peers * (duration_units / update_period_units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::{FunctionCatalog, ServiceComponent};
    use crate::model::function_graph::FunctionGraph;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::id::{FunctionId, PeerId};
    use spidernet_util::qos::{QosRequirement, QosVector};
    use spidernet_util::res::ResourceVector;
    use spidernet_util::rng::rng_for;

    struct World {
        overlay: Overlay,
        reg: Registry,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
    }

    fn world(funcs: u64, reps: u64) -> World {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 21);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 5 } },
            21,
        );
        let mut catalog = FunctionCatalog::new();
        for f in 0..funcs {
            catalog.intern(&format!("fn-{f}"));
        }
        let mut reg = Registry::new(catalog);
        for f in 0..funcs {
            for r in 0..reps {
                reg.add(ServiceComponent {
                    id: ComponentId::new(0),
                    peer: PeerId::new(2 + f * reps + r),
                    function: FunctionId::new(f),
                    perf_qos: QosVector::from_values(vec![10.0 + r as f64 * 5.0, 0.01]),
                    resources: ResourceVector::new(0.2, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01,
                });
            }
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World { overlay, reg, state, paths: PathTable::new(), weights: CostWeights::uniform() }
    }

    fn ctx<'a>(w: &'a mut World) -> BaselineContext<'a> {
        BaselineContext {
            overlay: &w.overlay,
            reg: &w.reg,
            state: &w.state,
            paths: &mut w.paths,
            weights: &w.weights,
        }
    }

    fn request(k: usize) -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(k),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        }
    }

    #[test]
    fn optimal_probe_count_is_product_of_replicas() {
        let mut w = world(3, 4);
        let out = optimal(&mut ctx(&mut w), &request(3), None).unwrap();
        assert_eq!(out.probes, 64); // 4³
    }

    #[test]
    fn optimal_truly_minimizes_cost() {
        let mut w = world(2, 3);
        let req = request(2);
        let out = optimal(&mut ctx(&mut w), &req, None).unwrap();
        // Brute-force check against every combo.
        let mut best_cost = f64::INFINITY;
        let r0 = w.reg.replicas(FunctionId::new(0)).to_vec();
        let r1 = w.reg.replicas(FunctionId::new(1)).to_vec();
        let c2 = BaselineContext {
            overlay: &w.overlay,
            reg: &w.reg,
            state: &w.state,
            paths: &mut w.paths,
            weights: &w.weights,
        };
        for &a in &r0 {
            for &b in &r1 {
                let g = ServiceGraph::new(
                    req.source,
                    req.dest,
                    FunctionGraph::linear(2),
                    vec![a, b],
                );
                let e = evaluate(&g, &req, c2.reg, c2.overlay, c2.state, c2.paths, c2.weights);
                if is_qualified(&e, &req) {
                    best_cost = best_cost.min(e.cost);
                }
            }
        }
        assert!((out.eval.cost - best_cost).abs() < 1e-12);
    }

    #[test]
    fn optimal_pool_contains_all_other_qualified() {
        let mut w = world(2, 3);
        let out = optimal(&mut ctx(&mut w), &request(2), None).unwrap();
        // 9 combos, all qualify under the loose requirement.
        assert_eq!(1 + out.qualified_pool.len(), 9);
    }

    #[test]
    fn combo_cap_bounds_enumeration() {
        let mut w = world(3, 4);
        let out = optimal(&mut ctx(&mut w), &request(3), Some(10)).unwrap();
        assert!(out.probes <= 10);
    }

    #[test]
    fn random_is_functionally_correct_but_quality_blind() {
        let mut w = world(3, 4);
        let req = request(3);
        let mut rng = rng_for(5, "baseline");
        let out = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
        for (i, &c) in out.best.assignment.iter().enumerate() {
            assert_eq!(w.reg.get(c).function, FunctionId::new(i as u64));
        }
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn random_varies_with_rng() {
        let mut w = world(2, 8);
        let req = request(2);
        let mut rng = rng_for(6, "baseline");
        let picks: Vec<Vec<ComponentId>> = (0..10)
            .map(|_| random(&mut ctx(&mut w), &req, &mut rng).unwrap().best.assignment)
            .collect();
        assert!(picks.windows(2).any(|w| w[0] != w[1]), "random always picked the same graph");
    }

    #[test]
    fn static_always_picks_first_replica() {
        let mut w = world(2, 3);
        let req = request(2);
        let a = static_(&mut ctx(&mut w), &req).unwrap();
        let b = static_(&mut ctx(&mut w), &req).unwrap();
        assert_eq!(a.best.assignment, b.best.assignment);
        assert_eq!(a.best.assignment[0], w.reg.replicas(FunctionId::new(0))[0]);
    }

    #[test]
    fn random_and_static_ignore_qos_violations() {
        let mut w = world(2, 2);
        let mut req = request(2);
        req.qos_req = QosRequirement::new(vec![0.001, 10.0]).unwrap();
        let mut rng = rng_for(7, "baseline");
        // They still return a graph — just an unqualified one.
        let r = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
        assert!(!is_qualified(&r.eval, &req));
        let s = static_(&mut ctx(&mut w), &req).unwrap();
        assert!(!is_qualified(&s.eval, &req));
        // Optimal, by contrast, reports failure.
        assert!(matches!(
            optimal(&mut ctx(&mut w), &req, None),
            Err(Error::NoQualifiedComposition)
        ));
    }

    #[test]
    fn optimal_beats_or_ties_random_on_cost() {
        let mut w = world(3, 3);
        let req = request(3);
        let opt = optimal(&mut ctx(&mut w), &req, None).unwrap();
        let mut rng = rng_for(8, "baseline");
        for _ in 0..10 {
            let r = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
            assert!(opt.eval.cost <= r.eval.cost + 1e-12);
        }
    }

    #[test]
    fn centralized_overhead_formula() {
        // 1000 peers, 2000 units, update every unit.
        assert_eq!(centralized_state_messages(1000, 2000, 1), 2_000_000);
        assert_eq!(centralized_state_messages(1000, 2000, 10), 200_000);
    }

    #[test]
    #[should_panic(expected = "update period")]
    fn centralized_overhead_rejects_zero_period() {
        centralized_state_messages(10, 10, 0);
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut w = world(1, 1);
        let mut req = request(1);
        w.reg.catalog_mut().intern("ghost");
        let ghost = w.reg.catalog().lookup("ghost").unwrap();
        req.function_graph = FunctionGraph::linear_of(&[ghost]);
        assert!(matches!(
            optimal(&mut ctx(&mut w), &req, None),
            Err(Error::UnknownFunction(_))
        ));
    }
}
