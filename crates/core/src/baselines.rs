//! The paper's comparison algorithms (§6.1): optimal (unbounded flooding),
//! random, static, and the centralized global-state scheme's overhead
//! model.

use crate::model::component::Registry;
use crate::model::function_graph::FunctionGraph;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::selection::{
    evaluate, evaluate_assignment, is_qualified, select_best, EvalContext, EvalScratch, LegTable,
    PatternShape,
};
use crate::state::OverlayState;
use spidernet_util::rng::SliceRandom;
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::{ComponentId, PeerId};
use spidernet_util::par::par_map_with;
use spidernet_util::qos::dim;
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::Rng;

/// Result of a baseline composition.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// The selected service graph.
    pub best: ServiceGraph,
    /// Its evaluation.
    pub eval: GraphEval,
    /// Remaining qualified graphs, cost-ordered (empty for random/static).
    pub qualified_pool: Vec<(ServiceGraph, GraphEval)>,
    /// Probe-equivalent overhead: candidate service graphs *considered*
    /// (fully evaluated or cut by an admissible prefix bound). For the
    /// optimal flooding scheme this is Π_k Z_k — the paper's "average
    /// number of probes required by the optimal algorithm" (17³ = 4913 in
    /// §6.2) — clipped by `combo_cap`; the value is the actual counter,
    /// not a formula, so it is exact when enumeration exhausts early.
    pub probes: u64,
    /// Candidate combos fully evaluated (`probes - combos_pruned`).
    pub combos_examined: u64,
    /// Candidate combos skipped by branch-and-bound pruning.
    pub combos_pruned: u64,
}

/// Shared borrow bundle for baseline runs.
pub struct BaselineContext<'a> {
    /// The service overlay.
    pub overlay: &'a Overlay,
    /// Component ground truth (baselines are centralized: they may read it
    /// wholesale).
    pub reg: &'a Registry,
    /// Live resource state.
    pub state: &'a OverlayState,
    /// Shortest-path cache.
    pub paths: &'a mut PathTable,
    /// ψ weights.
    pub weights: &'a CostWeights,
}

fn replica_sets(ctx: &BaselineContext<'_>, req: &CompositionRequest) -> Result<Vec<Vec<ComponentId>>> {
    req.function_graph
        .functions()
        .iter()
        .map(|&f| {
            let reps = ctx.reg.replicas(f);
            if reps.is_empty() {
                Err(Error::UnknownFunction(ctx.reg.catalog().name(f).to_owned()))
            } else {
                Ok(reps.to_vec())
            }
        })
        .collect()
}

/// What the optimal enumerator must retain beyond the single best graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Keep every qualified candidate (cost-ordered pool for backup
    /// selection). Pruning is restricted to bounds that prove *no*
    /// completion of a prefix can qualify, so the pool is exactly the
    /// naive enumerator's.
    Full,
    /// Keep only the best qualified graph. Additionally prunes prefixes
    /// whose cost lower bound already exceeds the best qualified cost so
    /// far (`qualified_pool` comes back empty).
    BestOnly,
}

/// Knobs of [`optimal_with`].
#[derive(Clone, Copy, Debug)]
pub struct OptimalOptions {
    /// Truncates the enumeration after this many considered combos (used
    /// only to bound test/bench runtimes; experiments reproducing paper
    /// numbers run uncapped).
    pub combo_cap: Option<u64>,
    /// Pool retention policy.
    pub pool: PoolPolicy,
    /// Worker threads for the per-pattern combo-space fan-out. Chunk
    /// boundaries are independent of this value, so all results —
    /// including prune counters — are bit-identical whatever the count.
    pub threads: usize,
}

impl Default for OptimalOptions {
    fn default() -> Self {
        OptimalOptions { combo_cap: None, pool: PoolPolicy::Full, threads: 1 }
    }
}

/// The optimal algorithm: "unbounded network flooding, which exhaustively
/// searches all candidate service graphs to find the best qualified
/// service graph". Equivalent to
/// [`optimal_with`]`(ctx, req, combo_cap, PoolPolicy::Full, 1 thread)`.
pub fn optimal(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    combo_cap: Option<u64>,
) -> Result<BaselineOutcome> {
    optimal_with(ctx, req, &OptimalOptions { combo_cap, ..OptimalOptions::default() })
}

/// The reference enumerator: one full [`evaluate`] per cartesian-product
/// combo, no pruning, no incremental state. Kept as the oracle the
/// branch-and-bound rewrite is property-tested against and as the "naive"
/// side of the bench phase comparison.
#[doc(hidden)]
pub fn optimal_naive(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    combo_cap: Option<u64>,
) -> Result<BaselineOutcome> {
    req.validate()?;
    let mut qualified: Vec<(ServiceGraph, GraphEval)> = Vec::new();
    let mut examined: u64 = 0;
    // Validate that every required function has replicas before enumerating.
    replica_sets(ctx, req)?;

    for pattern in req.function_graph.patterns() {
        // Replica sets follow the *pattern's* node order.
        let sets: Vec<Vec<ComponentId>> =
            pattern.functions().iter().map(|&f| ctx.reg.replicas(f).to_vec()).collect();

        // Odometer enumeration of the cartesian product.
        let n = sets.len();
        let mut idx = vec![0usize; n];
        loop {
            if let Some(cap) = combo_cap {
                if examined >= cap {
                    break;
                }
            }
            examined += 1;
            let assignment: Vec<ComponentId> = (0..n).map(|i| sets[i][idx[i]]).collect();
            let graph = ServiceGraph::new(req.source, req.dest, pattern.clone(), assignment);
            let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
            if is_qualified(&eval, req) {
                qualified.push((graph, eval));
            }
            // Advance odometer.
            let mut carry = n;
            for i in (0..n).rev() {
                idx[i] += 1;
                if idx[i] < sets[i].len() {
                    carry = i;
                    break;
                }
                idx[i] = 0;
            }
            if carry == n {
                break;
            }
        }
    }

    match select_best(qualified) {
        Some((best, eval, pool)) => Ok(BaselineOutcome {
            best,
            eval,
            qualified_pool: pool,
            probes: examined,
            combos_examined: examined,
            combos_pruned: 0,
        }),
        None => Err(Error::NoQualifiedComposition),
    }
}

/// Relative float slack added to admissible bounds before pruning on
/// them. Suffix bounds are mathematical lower bounds but their summation
/// order differs from the leaf evaluation's; the slack guarantees a
/// borderline candidate is *evaluated* rather than wrongly pruned (a
/// non-pruned candidate is always evaluated exactly, so slack can only
/// cost work, never correctness).
const PRUNE_SLACK: f64 = 1e-9;

/// Per-pattern precomputation for the branch-and-bound walk.
struct PatternPlan {
    pattern: FunctionGraph,
    shape: PatternShape,
    /// Replica sets in pattern-node order.
    sets: Vec<Vec<ComponentId>>,
    /// `subtree[d]` = Π_{j≥d} |sets[j]| — positions spanned by one choice
    /// at depth `d-1`; `subtree[n] == 1`.
    subtree: Vec<u64>,
    combos: u64,
    /// True when the pattern is the single chain `[0, 1, …, n-1]` *and*
    /// all replica QoS vectors are well formed — enables the QoS/delay
    /// suffix bounds (experiment workloads are chains by default).
    chain: bool,
    /// True when every replica's resource demand is non-negative —
    /// enables the monotone partial-demand overflow prune.
    res_nonneg: bool,
    /// `suffix_qos[k][d]` = Σ_{j≥k} min additive QoS of function j, dim d.
    suffix_qos: Vec<Vec<f64>>,
    /// `suffix_delay[k]` = min delay of the legs into nodes k.. plus the
    /// final leg to the destination (chain patterns only).
    suffix_delay: Vec<f64>,
    /// `suffix_cost[k]` = min end-system ψ of functions k.. plus (chain
    /// only) min bandwidth ψ of the remaining legs.
    suffix_cost: Vec<f64>,
}

impl PatternPlan {
    fn build(
        pattern: FunctionGraph,
        reg: &Registry,
        req: &CompositionRequest,
        legs: &LegTable,
        weights: &CostWeights,
    ) -> PatternPlan {
        let sets: Vec<Vec<ComponentId>> =
            pattern.functions().iter().map(|&f| reg.replicas(f).to_vec()).collect();
        let n = sets.len();
        let m = req.qos_req.dims();
        let mut subtree = vec![1u64; n + 1];
        for d in (0..n).rev() {
            subtree[d] = subtree[d + 1].saturating_mul(sets[d].len() as u64);
        }
        let shape = PatternShape::new(&pattern);
        let chain = shape.branches.len() == 1
            && shape.branches[0].iter().copied().eq(0..n)
            && sets
                .iter()
                .flatten()
                .all(|&c| reg.get(c).perf_qos.is_well_formed());
        let res_nonneg = sets
            .iter()
            .flatten()
            .all(|&c| ResourceVector::ZERO.fits_within(&reg.get(c).resources));

        // Per-function minima over each replica set.
        let min_qos: Vec<Vec<f64>> = sets
            .iter()
            .map(|set| {
                (0..m)
                    .map(|d| {
                        set.iter()
                            .map(|&c| reg.get(c).perf_qos.values()[d])
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect()
            })
            .collect();
        let min_es: Vec<f64> = sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&c| {
                        let comp = reg.get(c);
                        comp.resources
                            .weighted_usage_ratio(legs.available(comp.peer), &weights.resource)
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();

        let mut suffix_qos = vec![vec![0.0; m]; n + 1];
        for k in (0..n).rev() {
            for d in 0..m {
                suffix_qos[k][d] = suffix_qos[k + 1][d] + min_qos[k][d];
            }
        }

        // Chain-only leg minima: the leg *into* node j (j = 0 comes from
        // the source) plus the final leg to the destination.
        let (suffix_delay, bw_leg, bw_dest) = if chain {
            let bw_term = |from: PeerId, to: PeerId, bw: f64| -> f64 {
                if from == to || bw <= 0.0 {
                    return 0.0;
                }
                let leg = legs.leg(from, to);
                if !leg.reachable {
                    return f64::INFINITY;
                }
                weights.bandwidth * if leg.avail > 0.0 { bw / leg.avail } else { f64::INFINITY }
            };
            let mut leg_min = vec![f64::INFINITY; n];
            let mut bw_min = vec![f64::INFINITY; n];
            for j in 0..n {
                if j == 0 {
                    for &b in &sets[0] {
                        let to = reg.get(b).peer;
                        leg_min[0] = leg_min[0].min(legs.delay(req.source, to));
                        bw_min[0] = bw_min[0].min(bw_term(req.source, to, req.bandwidth_mbps));
                    }
                } else {
                    for &a in &sets[j - 1] {
                        let ca = reg.get(a);
                        for &b in &sets[j] {
                            let to = reg.get(b).peer;
                            leg_min[j] = leg_min[j].min(legs.delay(ca.peer, to));
                            bw_min[j] =
                                bw_min[j].min(bw_term(ca.peer, to, ca.out_bandwidth_mbps));
                        }
                    }
                }
            }
            let mut dest_delay = f64::INFINITY;
            let mut dest_bw = f64::INFINITY;
            for &a in &sets[n - 1] {
                let ca = reg.get(a);
                dest_delay = dest_delay.min(legs.delay(ca.peer, req.dest));
                dest_bw = dest_bw.min(bw_term(ca.peer, req.dest, ca.out_bandwidth_mbps));
            }
            let mut suffix_delay = vec![0.0; n + 1];
            suffix_delay[n] = dest_delay;
            for k in (0..n).rev() {
                suffix_delay[k] = leg_min[k] + suffix_delay[k + 1];
            }
            (suffix_delay, bw_min, dest_bw)
        } else {
            (vec![0.0; n + 1], vec![0.0; n], 0.0)
        };

        let mut suffix_cost = vec![0.0; n + 1];
        suffix_cost[n] = bw_dest;
        for k in (0..n).rev() {
            // min_es is admissible because `weighted_usage_ratio` is linear
            // in the demand vector: the leaf's aggregated end-system term
            // equals the sum of standalone per-component ratios.
            suffix_cost[k] = min_es[k] + bw_leg[k] + suffix_cost[k + 1];
        }

        PatternPlan {
            pattern,
            shape,
            combos: subtree[0],
            sets,
            subtree,
            chain,
            res_nonneg,
            suffix_qos,
            suffix_delay,
            suffix_cost,
        }
    }
}

/// Undo record for one pushed digit's demand aggregation.
#[derive(Clone, Copy)]
enum DemandUndo {
    /// The digit's peer was new: pop the last demand slot.
    Pushed,
    /// The digit merged into slot `ix`: restore the saved vector.
    Merged(usize, ResourceVector),
}

/// Mutable prefix state of the branch-and-bound walk. `push` extends the
/// prefix by one digit and `undo` restores it exactly (saved-value
/// restore, not arithmetic inverse — float subtraction would drift).
struct DfsState {
    assignment: Vec<ComponentId>,
    peers: Vec<PeerId>,
    /// Per-peer aggregated demand of the prefix, in first-touch order
    /// (the same aggregation order the leaf evaluation replays).
    demand: Vec<(PeerId, ResourceVector)>,
    undo: Vec<DemandUndo>,
    /// Incremental chain QoS accumulator — bit-identical to the prefix of
    /// the leaf evaluation's branch walk.
    qos_acc: Vec<f64>,
    qos_saved: Vec<f64>,
    es_partial: f64,
    es_saved: Vec<f64>,
    bw_partial: f64,
    bw_saved: Vec<f64>,
}

impl DfsState {
    fn new(n: usize, m: usize) -> DfsState {
        DfsState {
            assignment: vec![ComponentId::new(0); n],
            peers: vec![PeerId::new(0); n],
            demand: Vec::with_capacity(n),
            undo: vec![DemandUndo::Pushed; n],
            qos_acc: vec![0.0; m],
            qos_saved: vec![0.0; m * n],
            es_partial: 0.0,
            es_saved: vec![0.0; n],
            bw_partial: 0.0,
            bw_saved: vec![0.0; n],
        }
    }

    /// Extends the prefix with `comp` at depth `d`. Returns false when the
    /// digit is infeasible on grounds every completion inherits: a dead
    /// peer, or (when demand monotonicity holds) per-peer demand already
    /// overflowing the peer's available resources.
    fn push(&mut self, d: usize, comp: ComponentId, run: &ChunkRun<'_>) -> bool {
        let plan = run.plan;
        let reg = run.ectx.reg;
        let legs = run.ectx.legs;
        let c = reg.get(comp);
        self.assignment[d] = comp;
        self.peers[d] = c.peer;

        let mut ok = legs.is_alive(c.peer);
        let fits = match self.demand.iter().position(|&(p, _)| p == c.peer) {
            Some(ix) => {
                self.undo[d] = DemandUndo::Merged(ix, self.demand[ix].1);
                self.demand[ix].1 = self.demand[ix].1.add(&c.resources);
                self.demand[ix].1.fits_within(legs.available(c.peer))
            }
            None => {
                self.undo[d] = DemandUndo::Pushed;
                self.demand.push((c.peer, ResourceVector::ZERO.add(&c.resources)));
                self.demand.last().expect("just pushed").1.fits_within(legs.available(c.peer))
            }
        };
        if plan.res_nonneg && !fits {
            ok = false;
        }

        self.es_saved[d] = self.es_partial;
        self.es_partial +=
            c.resources.weighted_usage_ratio(legs.available(c.peer), &run.ectx.weights.resource);

        if plan.chain {
            let m = self.qos_acc.len();
            self.qos_saved[d * m..(d + 1) * m].copy_from_slice(&self.qos_acc);
            self.bw_saved[d] = self.bw_partial;
            let prev = if d == 0 { run.ectx.req.source } else { self.peers[d - 1] };
            self.qos_acc[dim::DELAY_MS] += legs.delay(prev, c.peer);
            for (a, b) in self.qos_acc.iter_mut().zip(c.perf_qos.values()) {
                *a += b;
            }
            let bw = if d == 0 {
                run.ectx.req.bandwidth_mbps
            } else {
                reg.get(self.assignment[d - 1]).out_bandwidth_mbps
            };
            if prev != c.peer && bw > 0.0 {
                let leg = legs.leg(prev, c.peer);
                self.bw_partial += if !leg.reachable {
                    f64::INFINITY
                } else {
                    run.ectx.weights.bandwidth
                        * if leg.avail > 0.0 { bw / leg.avail } else { f64::INFINITY }
                };
            }
        }
        ok
    }

    /// Reverts the depth-`d` push.
    fn undo(&mut self, d: usize, plan: &PatternPlan) {
        match self.undo[d] {
            DemandUndo::Pushed => {
                self.demand.pop();
            }
            DemandUndo::Merged(ix, saved) => self.demand[ix].1 = saved,
        }
        self.es_partial = self.es_saved[d];
        if plan.chain {
            let m = self.qos_acc.len();
            self.qos_acc.copy_from_slice(&self.qos_saved[d * m..(d + 1) * m]);
            self.bw_partial = self.bw_saved[d];
        }
    }
}

/// Read-only inputs of one chunk walk.
struct ChunkRun<'a> {
    plan: &'a PatternPlan,
    ectx: EvalContext<'a>,
    /// Per-dimension prune slack: `PRUNE_SLACK · (1 + |bound|)`.
    qos_slack: &'a [f64],
    lo: u64,
    hi: u64,
    best_only: bool,
}

/// Accumulated output of one chunk walk.
struct ChunkOut {
    pattern: usize,
    qualified: Vec<(Vec<ComponentId>, GraphEval)>,
    /// Best qualified cost in this chunk (cost-prune bound; chunks never
    /// share bounds so results are chunk-deterministic).
    best_cost: Option<f64>,
    examined: u64,
    pruned: u64,
}

impl ChunkOut {
    fn record(&mut self, assignment: &[ComponentId], eval: GraphEval, best_only: bool) {
        if !best_only {
            self.qualified.push((assignment.to_vec(), eval));
            return;
        }
        // Replicate `select_best` ordering: keep the earlier candidate on
        // exact cost ties (enumeration order is position order).
        let better = match self.qualified.first() {
            None => true,
            Some((ba, be)) => {
                matches!(
                    eval.cost.total_cmp(&be.cost).then_with(|| assignment.cmp(ba)),
                    std::cmp::Ordering::Less
                )
            }
        };
        if better {
            self.best_cost = Some(eval.cost);
            self.qualified.clear();
            self.qualified.push((assignment.to_vec(), eval));
        }
    }
}

/// The recursive branch-and-bound walk over one chunk's position window
/// `[run.lo, run.hi)`. `first` is the global position of the first leaf
/// under the current prefix.
fn bb_walk(
    run: &ChunkRun<'_>,
    st: &mut DfsState,
    scratch: &mut EvalScratch,
    out: &mut ChunkOut,
    d: usize,
    first: u64,
) {
    let plan = run.plan;
    let n = plan.sets.len();
    let width = plan.subtree[d + 1];
    for (i, &comp) in plan.sets[d].iter().enumerate() {
        let child_first = first + i as u64 * width;
        if child_first >= run.hi {
            break;
        }
        let child_end = child_first + width;
        if child_end <= run.lo {
            continue;
        }
        let window = child_end.min(run.hi) - child_first.max(run.lo);

        let feasible = st.push(d, comp, run);
        let mut prune = !feasible;
        let k = d + 1;
        if !prune && plan.chain {
            let bounds = run.ectx.req.qos_req.bounds();
            for (dim_i, &bound) in bounds.iter().enumerate() {
                let mut lb = st.qos_acc[dim_i] + plan.suffix_qos[k][dim_i];
                if dim_i == dim::DELAY_MS {
                    lb += plan.suffix_delay[k];
                }
                if lb > bound + run.qos_slack[dim_i] {
                    prune = true;
                    break;
                }
            }
        }
        if !prune && run.best_only {
            if let Some(bc) = out.best_cost {
                let lb = st.es_partial + st.bw_partial + plan.suffix_cost[k];
                if lb > bc + PRUNE_SLACK * (1.0 + bc.abs()) {
                    prune = true;
                }
            }
        }

        if prune {
            out.pruned += window;
        } else if k == n {
            out.examined += 1;
            let eval = evaluate_assignment(&run.ectx, &plan.shape, &st.assignment, scratch);
            if is_qualified(&eval, run.ectx.req) {
                out.record(&st.assignment, eval, run.best_only);
            }
        } else {
            bb_walk(run, st, scratch, out, k, child_first);
        }
        st.undo(d, plan);
    }
}

/// Split threshold: a pattern window at least this large is fanned across
/// [`CHUNKS_PER_PATTERN`] fixed ranges (fixed, so prune counters and the
/// qualified pool are identical whatever `threads` is).
const CHUNK_SPLIT_MIN: u64 = 4096;
const CHUNKS_PER_PATTERN: u64 = 8;

/// Incremental branch-and-bound optimal enumerator.
///
/// Walks each pattern's cartesian combo space depth-first with push/undo
/// prefix state (mirroring BCP's `probe_branch`), evaluates leaves via the
/// bit-exact [`evaluate_assignment`] fast path against a per-request
/// [`LegTable`] snapshot, and cuts prefixes whose admissible suffix lower
/// bounds prove no completion can qualify (plus, under
/// [`PoolPolicy::BestOnly`], none can beat the best qualified cost so
/// far). Position semantics — which combos a `combo_cap` admits, in which
/// order qualified candidates pool, and the resulting best graph — are
/// identical to [`optimal_naive`]'s; pruned subtrees advance the
/// considered-position counter by their clipped window so `probes` stays
/// the exact considered count.
pub fn optimal_with(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    opts: &OptimalOptions,
) -> Result<BaselineOutcome> {
    req.validate()?;
    let sets = replica_sets(ctx, req)?;

    // Per-request leg snapshot: all (source ∪ replica-peers) × (replica-
    // peers ∪ dest) legs plus per-peer liveness/availability, built once
    // through the mutable path cache then shared read-only by workers.
    let mut replica_peers: Vec<PeerId> = Vec::new();
    for set in &sets {
        for &c in set {
            let p = ctx.reg.get(c).peer;
            if !replica_peers.contains(&p) {
                replica_peers.push(p);
            }
        }
    }
    let mut froms = vec![req.source];
    froms.extend(replica_peers.iter().copied().filter(|&p| p != req.source));
    let mut tos = replica_peers.clone();
    if !tos.contains(&req.dest) {
        tos.push(req.dest);
    }
    let legs = LegTable::build(ctx.overlay, ctx.state, ctx.paths, &froms, &tos, &replica_peers);

    let plans: Vec<PatternPlan> = req
        .function_graph
        .patterns()
        .into_iter()
        .map(|p| PatternPlan::build(p, ctx.reg, req, &legs, ctx.weights))
        .collect();

    let qos_slack: Vec<f64> =
        req.qos_req.bounds().iter().map(|b| PRUNE_SLACK * (1.0 + b.abs())).collect();

    // Chunk the capped position space. The cap admits the first
    // `combo_cap` positions across patterns in order, exactly as the
    // naive odometer does.
    struct Chunk {
        pattern: usize,
        lo: u64,
        hi: u64,
    }
    let cap = opts.combo_cap.unwrap_or(u64::MAX);
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut start: u64 = 0;
    for (pi, plan) in plans.iter().enumerate() {
        let window = if start >= cap { 0 } else { plan.combos.min(cap - start) };
        if window > 0 {
            let parts = if window >= CHUNK_SPLIT_MIN { CHUNKS_PER_PATTERN.min(window) } else { 1 };
            let (base, rem) = (window / parts, window % parts);
            let mut lo = 0u64;
            for p in 0..parts {
                let len = base + u64::from(p < rem);
                chunks.push(Chunk { pattern: pi, lo, hi: lo + len });
                lo += len;
            }
        }
        start = start.saturating_add(plan.combos);
    }

    let m = req.qos_req.dims();
    let best_only = opts.pool == PoolPolicy::BestOnly;
    let (reg, state, weights) = (ctx.reg, ctx.state, ctx.weights);
    let outs: Vec<ChunkOut> = par_map_with(opts.threads.max(1), chunks, |_, chunk| {
        let plan = &plans[chunk.pattern];
        let run = ChunkRun {
            plan,
            ectx: EvalContext { req, reg, state, legs: &legs, weights },
            qos_slack: &qos_slack,
            lo: chunk.lo,
            hi: chunk.hi,
            best_only,
        };
        let mut out = ChunkOut {
            pattern: chunk.pattern,
            qualified: Vec::new(),
            best_cost: None,
            examined: 0,
            pruned: 0,
        };
        let mut st = DfsState::new(plan.sets.len(), m);
        let mut scratch = EvalScratch::default();
        bb_walk(&run, &mut st, &mut scratch, &mut out, 0, 0);
        out
    });

    let mut qualified: Vec<(ServiceGraph, GraphEval)> = Vec::new();
    let (mut examined, mut pruned) = (0u64, 0u64);
    for out in outs {
        examined += out.examined;
        pruned += out.pruned;
        for (assignment, eval) in out.qualified {
            let graph =
                ServiceGraph::new(req.source, req.dest, plans[out.pattern].pattern.clone(), assignment);
            qualified.push((graph, eval));
        }
    }
    let probes = examined + pruned;

    match select_best(qualified) {
        Some((best, eval, pool)) => Ok(BaselineOutcome {
            best,
            eval,
            qualified_pool: if best_only { Vec::new() } else { pool },
            probes,
            combos_examined: examined,
            combos_pruned: pruned,
        }),
        None => Err(Error::NoQualifiedComposition),
    }
}

/// The random algorithm: "randomly selects a functionally qualified service
/// component for each function node … does not consider the user's QoS and
/// resource requirements". The pick ignores requirements; the returned
/// evaluation reports whether it happened to qualify.
pub fn random(
    ctx: &mut BaselineContext<'_>,
    req: &CompositionRequest,
    rng: &mut Rng,
) -> Result<BaselineOutcome> {
    req.validate()?;
    let sets = replica_sets(ctx, req)?;
    let assignment: Vec<ComponentId> = sets
        .iter()
        .map(|s| *s.choose(rng).expect("replica sets are non-empty"))
        .collect();
    // Random/static use the original function graph order (they do not
    // explore commutations).
    let pattern = req.function_graph.patterns().into_iter().next().expect("≥1 pattern");
    let graph = ServiceGraph::new(req.source, req.dest, pattern, assignment);
    let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
    Ok(BaselineOutcome {
        best: graph,
        eval,
        qualified_pool: Vec::new(),
        probes: 1,
        combos_examined: 1,
        combos_pruned: 0,
    })
}

/// The static algorithm: a pre-defined component (the first registered
/// replica) for each function node, regardless of requirements.
pub fn static_(ctx: &mut BaselineContext<'_>, req: &CompositionRequest) -> Result<BaselineOutcome> {
    req.validate()?;
    let sets = replica_sets(ctx, req)?;
    let assignment: Vec<ComponentId> = sets.iter().map(|s| s[0]).collect();
    let pattern = req.function_graph.patterns().into_iter().next().expect("≥1 pattern");
    let graph = ServiceGraph::new(req.source, req.dest, pattern, assignment);
    let eval = evaluate(&graph, req, ctx.reg, ctx.overlay, ctx.state, ctx.paths, ctx.weights);
    Ok(BaselineOutcome {
        best: graph,
        eval,
        qualified_pool: Vec::new(),
        probes: 1,
        combos_examined: 1,
        combos_pruned: 0,
    })
}

/// Message overhead of the centralized global-view scheme over a time
/// horizon: every peer pushes a state update to the central composer every
/// `update_period` time units (the "expensive periodical states update" the
/// paper contrasts BCP against).
pub fn centralized_state_messages(peers: u64, duration_units: u64, update_period_units: u64) -> u64 {
    assert!(update_period_units >= 1, "update period must be ≥ 1");
    peers * (duration_units / update_period_units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::{FunctionCatalog, ServiceComponent};
    use crate::model::function_graph::FunctionGraph;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::id::{FunctionId, PeerId};
    use spidernet_util::qos::{QosRequirement, QosVector};
    use spidernet_util::res::ResourceVector;
    use spidernet_util::rng::rng_for;

    struct World {
        overlay: Overlay,
        reg: Registry,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
    }

    fn world(funcs: u64, reps: u64) -> World {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 21);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 5 } },
            21,
        );
        let mut catalog = FunctionCatalog::new();
        for f in 0..funcs {
            catalog.intern(&format!("fn-{f}"));
        }
        let mut reg = Registry::new(catalog);
        for f in 0..funcs {
            for r in 0..reps {
                reg.add(ServiceComponent {
                    id: ComponentId::new(0),
                    peer: PeerId::new(2 + f * reps + r),
                    function: FunctionId::new(f),
                    perf_qos: QosVector::from_values(vec![10.0 + r as f64 * 5.0, 0.01]),
                    resources: ResourceVector::new(0.2, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01,
                });
            }
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World { overlay, reg, state, paths: PathTable::new(), weights: CostWeights::uniform() }
    }

    fn ctx<'a>(w: &'a mut World) -> BaselineContext<'a> {
        BaselineContext {
            overlay: &w.overlay,
            reg: &w.reg,
            state: &w.state,
            paths: &mut w.paths,
            weights: &w.weights,
        }
    }

    fn request(k: usize) -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(k),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        }
    }

    #[test]
    fn optimal_probe_count_is_product_of_replicas() {
        let mut w = world(3, 4);
        let out = optimal(&mut ctx(&mut w), &request(3), None).unwrap();
        assert_eq!(out.probes, 64); // 4³
    }

    #[test]
    fn optimal_truly_minimizes_cost() {
        let mut w = world(2, 3);
        let req = request(2);
        let out = optimal(&mut ctx(&mut w), &req, None).unwrap();
        // Brute-force check against every combo.
        let mut best_cost = f64::INFINITY;
        let r0 = w.reg.replicas(FunctionId::new(0)).to_vec();
        let r1 = w.reg.replicas(FunctionId::new(1)).to_vec();
        let c2 = BaselineContext {
            overlay: &w.overlay,
            reg: &w.reg,
            state: &w.state,
            paths: &mut w.paths,
            weights: &w.weights,
        };
        for &a in &r0 {
            for &b in &r1 {
                let g = ServiceGraph::new(
                    req.source,
                    req.dest,
                    FunctionGraph::linear(2),
                    vec![a, b],
                );
                let e = evaluate(&g, &req, c2.reg, c2.overlay, c2.state, c2.paths, c2.weights);
                if is_qualified(&e, &req) {
                    best_cost = best_cost.min(e.cost);
                }
            }
        }
        assert!((out.eval.cost - best_cost).abs() < 1e-12);
    }

    #[test]
    fn optimal_pool_contains_all_other_qualified() {
        let mut w = world(2, 3);
        let out = optimal(&mut ctx(&mut w), &request(2), None).unwrap();
        // 9 combos, all qualify under the loose requirement.
        assert_eq!(1 + out.qualified_pool.len(), 9);
    }

    #[test]
    fn combo_cap_bounds_enumeration() {
        let mut w = world(3, 4);
        let out = optimal(&mut ctx(&mut w), &request(3), Some(10)).unwrap();
        assert!(out.probes <= 10);
    }

    #[test]
    fn random_is_functionally_correct_but_quality_blind() {
        let mut w = world(3, 4);
        let req = request(3);
        let mut rng = rng_for(5, "baseline");
        let out = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
        for (i, &c) in out.best.assignment.iter().enumerate() {
            assert_eq!(w.reg.get(c).function, FunctionId::new(i as u64));
        }
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn random_varies_with_rng() {
        let mut w = world(2, 8);
        let req = request(2);
        let mut rng = rng_for(6, "baseline");
        let picks: Vec<Vec<ComponentId>> = (0..10)
            .map(|_| random(&mut ctx(&mut w), &req, &mut rng).unwrap().best.assignment)
            .collect();
        assert!(picks.windows(2).any(|w| w[0] != w[1]), "random always picked the same graph");
    }

    #[test]
    fn static_always_picks_first_replica() {
        let mut w = world(2, 3);
        let req = request(2);
        let a = static_(&mut ctx(&mut w), &req).unwrap();
        let b = static_(&mut ctx(&mut w), &req).unwrap();
        assert_eq!(a.best.assignment, b.best.assignment);
        assert_eq!(a.best.assignment[0], w.reg.replicas(FunctionId::new(0))[0]);
    }

    #[test]
    fn random_and_static_ignore_qos_violations() {
        let mut w = world(2, 2);
        let mut req = request(2);
        req.qos_req = QosRequirement::new(vec![0.001, 10.0]).unwrap();
        let mut rng = rng_for(7, "baseline");
        // They still return a graph — just an unqualified one.
        let r = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
        assert!(!is_qualified(&r.eval, &req));
        let s = static_(&mut ctx(&mut w), &req).unwrap();
        assert!(!is_qualified(&s.eval, &req));
        // Optimal, by contrast, reports failure.
        assert!(matches!(
            optimal(&mut ctx(&mut w), &req, None),
            Err(Error::NoQualifiedComposition)
        ));
    }

    #[test]
    fn optimal_beats_or_ties_random_on_cost() {
        let mut w = world(3, 3);
        let req = request(3);
        let opt = optimal(&mut ctx(&mut w), &req, None).unwrap();
        let mut rng = rng_for(8, "baseline");
        for _ in 0..10 {
            let r = random(&mut ctx(&mut w), &req, &mut rng).unwrap();
            assert!(opt.eval.cost <= r.eval.cost + 1e-12);
        }
    }

    fn assert_same_outcome(a: &BaselineOutcome, b: &BaselineOutcome) {
        assert_eq!(a.best.assignment, b.best.assignment);
        assert_eq!(a.eval.cost.to_bits(), b.eval.cost.to_bits());
        for (x, y) in a.eval.qos.values().iter().zip(b.eval.qos.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.qualified_pool.len(), b.qualified_pool.len());
        for ((ga, ea), (gb, eb)) in a.qualified_pool.iter().zip(&b.qualified_pool) {
            assert_eq!(ga.assignment, gb.assignment);
            assert_eq!(ea.cost.to_bits(), eb.cost.to_bits());
        }
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn branch_and_bound_matches_naive_across_threads() {
        for cap in [None, Some(7), Some(1_000)] {
            let mut w = world(3, 4);
            let req = request(3);
            let naive = optimal_naive(&mut ctx(&mut w), &req, cap).unwrap();
            for threads in [1, 2, 4] {
                let opts = OptimalOptions { combo_cap: cap, pool: PoolPolicy::Full, threads };
                let bb = optimal_with(&mut ctx(&mut w), &req, &opts).unwrap();
                assert_same_outcome(&bb, &naive);
                assert_eq!(bb.combos_examined + bb.combos_pruned, bb.probes);
            }
        }
    }

    #[test]
    fn best_only_returns_the_same_best_with_empty_pool() {
        let mut w = world(3, 4);
        let req = request(3);
        let full = optimal(&mut ctx(&mut w), &req, None).unwrap();
        for threads in [1, 3] {
            let opts =
                OptimalOptions { combo_cap: None, pool: PoolPolicy::BestOnly, threads };
            let bb = optimal_with(&mut ctx(&mut w), &req, &opts).unwrap();
            assert_eq!(bb.best.assignment, full.best.assignment);
            assert_eq!(bb.eval.cost.to_bits(), full.eval.cost.to_bits());
            assert!(bb.qualified_pool.is_empty());
            assert_eq!(bb.probes, full.probes);
        }
    }

    #[test]
    fn tight_qos_bound_prunes_but_agrees_with_naive() {
        let mut w = world(3, 4);
        let mut req = request(3);
        // Tight enough that slower replicas prune, loose enough that some
        // combo still qualifies (replica r adds 10 + 5r ms; legs add more).
        let naive_all = optimal_naive(&mut ctx(&mut w), &req, None).unwrap();
        let budget = naive_all.eval.qos[spidernet_util::qos::dim::DELAY_MS] + 10.0;
        req.qos_req = QosRequirement::new(vec![budget, 10.0]).unwrap();
        let naive = optimal_naive(&mut ctx(&mut w), &req, None).unwrap();
        let bb = optimal(&mut ctx(&mut w), &req, None).unwrap();
        assert_same_outcome(&bb, &naive);
        assert!(bb.combos_pruned > 0, "tight QoS bound must cut subtrees");
        assert_eq!(bb.combos_examined + bb.combos_pruned, 64);
    }

    #[test]
    fn centralized_overhead_formula() {
        // 1000 peers, 2000 units, update every unit.
        assert_eq!(centralized_state_messages(1000, 2000, 1), 2_000_000);
        assert_eq!(centralized_state_messages(1000, 2000, 10), 200_000);
    }

    #[test]
    #[should_panic(expected = "update period")]
    fn centralized_overhead_rejects_zero_period() {
        centralized_state_messages(10, 10, 0);
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut w = world(1, 1);
        let mut req = request(1);
        w.reg.catalog_mut().intern("ghost");
        let ghost = w.reg.catalog().lookup("ghost").unwrap();
        req.function_graph = FunctionGraph::linear_of(&[ghost]);
        assert!(matches!(
            optimal(&mut ctx(&mut w), &req, None),
            Err(Error::UnknownFunction(_))
        ));
    }
}
