//! Proactive failure recovery (paper §5).
//!
//! Each active session keeps a small set of *backup service graphs* chosen
//! from the qualified graphs BCP discovered at setup. The source
//! periodically sends low-rate maintenance probes along the backups to
//! track their liveness (the maintenance overhead); when the primary
//! breaks, it switches to the best surviving backup instead of paying a
//! full BCP round. Reactive re-composition runs only when every backup is
//! gone.
//!
//! Two policy questions (paper §5.1–§5.2):
//! * **how many** — Eq. 2: `γ = min(⌊U·(Σ q_i^λ/q_i^req + F^λ/F^req)⌋, C−1)`
//!   — sessions whose current quality sits close to the user's bounds hold
//!   more backups;
//! * **which** — for each primary component (bottleneck first, i.e.
//!   highest failure probability), the qualified graph *excluding* that
//!   component with the *largest overlap* with the primary; then for every
//!   pair, triple, … of components, under the γ cap.

use crate::model::component::Registry;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::selection::evaluate;
use crate::state::{OverlayState, SessionAllocation};
use spidernet_sim::metrics::Instruments;
use spidernet_sim::time::SimDuration;
use spidernet_sim::trace::TraceEvent;
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::{ComponentId, PeerId, SessionId};
use spidernet_util::res::ResourceVector;
use std::collections::BTreeMap;

/// Recovery policy knobs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RecoveryConfig {
    /// U in Eq. 2: the configurable upper bound scale on backup count.
    pub backup_upper_bound: f64,
    /// Period of backup maintenance probing.
    pub maintenance_period: SimDuration,
    /// Largest component-subset size the backup selector covers ("every
    /// two service components, every three, and so forth").
    pub max_subset_size: usize,
    /// Time to switch the stream onto a live backup, ms (soft-state
    /// re-initialization).
    pub switch_delay_ms: f64,
    /// Time for the source to *detect* a component failure, ms (missed
    /// heartbeats / stream stall). Added to every recovery latency.
    pub detection_delay_ms: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            backup_upper_bound: 1.5,
            maintenance_period: SimDuration::from_secs(5),
            max_subset_size: 3,
            switch_delay_ms: 50.0,
            detection_delay_ms: 200.0,
        }
    }
}

impl RecoveryConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> RecoveryConfigBuilder {
        RecoveryConfigBuilder { cfg: RecoveryConfig::default() }
    }
}

/// Builder for [`RecoveryConfig`].
#[derive(Clone, Debug)]
pub struct RecoveryConfigBuilder {
    cfg: RecoveryConfig,
}

impl RecoveryConfigBuilder {
    /// U in Eq. 2.
    pub fn backup_upper_bound(mut self, u: f64) -> Self {
        self.cfg.backup_upper_bound = u;
        self
    }

    /// Period of backup maintenance probing.
    pub fn maintenance_period(mut self, p: SimDuration) -> Self {
        self.cfg.maintenance_period = p;
        self
    }

    /// Largest component-subset size the backup selector covers.
    pub fn max_subset_size(mut self, k: usize) -> Self {
        self.cfg.max_subset_size = k;
        self
    }

    /// Stream switchover time, ms.
    pub fn switch_delay_ms(mut self, ms: f64) -> Self {
        self.cfg.switch_delay_ms = ms;
        self
    }

    /// Failure detection time, ms.
    pub fn detection_delay_ms(mut self, ms: f64) -> Self {
        self.cfg.detection_delay_ms = ms;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> RecoveryConfig {
        self.cfg
    }
}

/// Rejects evaluations carrying NaN/infinite cost or failure probability
/// before they are committed as a session's quality — a poisoned replica
/// (e.g. a registration with NaN cost) must surface as a recoverable
/// error, not corrupt Eq. 2 or panic a sort downstream.
fn check_eval_finite(eval: &GraphEval) -> Result<()> {
    if eval.cost.is_finite() && eval.failure_prob.is_finite() {
        Ok(())
    } else {
        Err(Error::InvalidRequirement(format!(
            "non-finite graph evaluation (cost {}, failure prob {})",
            eval.cost, eval.failure_prob
        )))
    }
}

/// Eq. 2: the adaptive number of backup service graphs.
///
/// `c_total` is C, the total number of qualified graphs found at setup
/// (primary included), capping γ at C−1.
pub fn backup_count(
    eval: &GraphEval,
    req: &CompositionRequest,
    u: f64,
    c_total: usize,
) -> usize {
    let qos_term = req.qos_req.relative_usage(&eval.qos);
    let fail_term = if req.max_failure_prob > 0.0 {
        eval.failure_prob / req.max_failure_prob
    } else {
        1.0
    };
    let gamma = (u * (qos_term + fail_term)).floor();
    let cap = c_total.saturating_sub(1);
    (gamma.max(0.0) as usize).min(cap)
}

/// Selects backup indices into `pool` for `primary` (paper §5.2).
pub fn select_backups(
    primary: &ServiceGraph,
    pool: &[(ServiceGraph, GraphEval)],
    gamma: usize,
    reg: &Registry,
    max_subset_size: usize,
) -> Vec<usize> {
    if gamma == 0 || pool.is_empty() {
        return Vec::new();
    }
    // Bottleneck-first: primary components ordered by failure probability,
    // highest first.
    // `total_cmp` keeps this panic-free on NaN inputs: a component whose
    // failure probability is unknown (NaN sorts above every finite value)
    // is treated as the worst bottleneck rather than poisoning the sort.
    let mut comps: Vec<ComponentId> = primary.components().to_vec();
    comps.sort_by(|a, b| {
        reg.get(*b)
            .failure_prob
            .total_cmp(&reg.get(*a).failure_prob)
            .then_with(|| a.cmp(b))
    });

    let mut selected: Vec<usize> = Vec::new();
    // Subsets of growing size; within one size, lexicographic over the
    // bottleneck-first ordering (so the most failure-prone components are
    // covered first).
    'outer: for size in 1..=max_subset_size.min(comps.len()) {
        for subset_idx in combinations(comps.len(), size) {
            let subset: Vec<ComponentId> = subset_idx.iter().map(|&i| comps[i]).collect();
            // The best backup for this subset: excludes every subset
            // component, maximizes overlap with the primary; ties broken
            // by lower ψ (pool is cost-ordered, stable max keeps first).
            let mut best: Option<(usize, usize)> = None; // (overlap, pool idx)
            for (pi, (g, _)) in pool.iter().enumerate() {
                if selected.contains(&pi) {
                    continue;
                }
                if subset.iter().any(|c| g.contains_component(*c)) {
                    continue;
                }
                let ov = g.overlap(primary);
                if best.is_none_or(|(bov, _)| ov > bov) {
                    best = Some((ov, pi));
                }
            }
            if let Some((_, pi)) = best {
                selected.push(pi);
                if selected.len() >= gamma {
                    break 'outer;
                }
            }
        }
    }
    finish_fill(primary, pool, gamma, &mut selected)
}

/// All k-subsets of `0..n` in lexicographic order. Sizes are tiny here
/// (function graphs have a handful of nodes, k ≤ max_subset_size).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k == 0 || k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Find the rightmost index that can advance.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if idx[i] < i + n - k {
                idx[i] += 1;
                for j in (i + 1)..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return out;
            }
        }
    }
}

/// If subset coverage did not exhaust γ, fill with the cheapest remaining
/// qualified graphs.
fn finish_fill(
    _primary: &ServiceGraph,
    pool: &[(ServiceGraph, GraphEval)],
    gamma: usize,
    selected: &mut Vec<usize>,
) -> Vec<usize> {
    for pi in 0..pool.len() {
        if selected.len() >= gamma {
            break;
        }
        if !selected.contains(&pi) {
            selected.push(pi);
        }
    }
    selected.clone()
}

/// Per-peer end-system demand of a session (commit shape).
pub type PeerDemand = Vec<(PeerId, ResourceVector)>;
/// Per-service-link bandwidth demand over overlay peer paths.
pub type LinkDemand = Vec<(Vec<PeerId>, f64)>;

/// Builds the commit-shape demands of a service graph: per-peer resources
/// plus per-service-link bandwidth over overlay paths.
pub fn session_demands(
    graph: &ServiceGraph,
    req: &CompositionRequest,
    reg: &Registry,
    overlay: &Overlay,
    paths: &mut PathTable,
) -> (PeerDemand, LinkDemand) {
    let peer_demand: Vec<(PeerId, ResourceVector)> =
        graph.per_peer_demand(reg).into_iter().collect();
    let mut link_demand = Vec::new();
    for link in graph.service_links() {
        let from = graph.peer_of_end(link.from, reg);
        let to = graph.peer_of_end(link.to, reg);
        let bw = graph.link_bandwidth(&link, reg, req.bandwidth_mbps);
        if from == to || bw <= 0.0 {
            continue;
        }
        if let Some(path) = paths.peer_path(overlay, from, to) {
            link_demand.push((path, bw));
        }
    }
    (peer_demand, link_demand)
}

/// One active composed service session.
#[derive(Clone, Debug)]
pub struct Session {
    /// Session id.
    pub id: SessionId,
    /// The originating request.
    pub request: CompositionRequest,
    /// The currently streaming service graph.
    pub primary: ServiceGraph,
    /// Its evaluation at (re)establishment time.
    pub eval: GraphEval,
    /// Committed resources held by the primary.
    pub allocation: SessionAllocation,
    /// Maintained backup service graphs, preference-ordered.
    pub backups: Vec<(ServiceGraph, GraphEval)>,
    /// Remaining qualified graphs not promoted to backups (replenishment
    /// pool).
    pub pool: Vec<(ServiceGraph, GraphEval)>,
}

/// What happened to one session when a peer failed.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureOutcome {
    /// Switched to backup number `rank` (0 = most preferred) within
    /// `switch_ms`.
    RecoveredByBackup {
        /// Index of the backup used.
        rank: usize,
        /// Recovery latency, ms.
        switch_ms: f64,
    },
    /// Every backup was dead or inadmissible; the caller must run reactive
    /// BCP and either [`SessionManager::reestablish`] or tear down.
    NeedsReactive,
}

/// Owns all active sessions and implements the recovery policy.
#[derive(Clone, Debug)]
pub struct SessionManager {
    cfg: RecoveryConfig,
    sessions: BTreeMap<SessionId, Session>,
    next_id: u64,
}

impl SessionManager {
    /// A manager with the given policy.
    pub fn new(cfg: RecoveryConfig) -> Self {
        SessionManager { cfg, sessions: BTreeMap::new(), next_id: 0 }
    }

    /// The policy in force.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// Establishes a session from a composition result: commits the
    /// primary's resources and selects backups per Eq. 2 / §5.2.
    #[allow(clippy::too_many_arguments)]
    pub fn establish(
        &mut self,
        request: CompositionRequest,
        primary: ServiceGraph,
        eval: GraphEval,
        pool: Vec<(ServiceGraph, GraphEval)>,
        reg: &Registry,
        overlay: &Overlay,
        paths: &mut PathTable,
        state: &mut OverlayState,
    ) -> Result<SessionId> {
        check_eval_finite(&eval)?;
        let (peers, links) = session_demands(&primary, &request, reg, overlay, paths);
        let allocation = state.commit(&peers, &links)?;
        let c_total = 1 + pool.len();
        let gamma = backup_count(&eval, &request, self.cfg.backup_upper_bound, c_total);
        let chosen = select_backups(&primary, &pool, gamma, reg, self.cfg.max_subset_size);
        let mut backups = Vec::with_capacity(chosen.len());
        let mut rest = Vec::new();
        for (i, entry) in pool.into_iter().enumerate() {
            if chosen.contains(&i) {
                backups.push(entry);
            } else {
                rest.push(entry);
            }
        }
        let id = SessionId::new(self.next_id);
        self.next_id += 1;
        self.sessions.insert(
            id,
            Session { id, request, primary, eval, allocation, backups, pool: rest },
        );
        Ok(id)
    }

    /// Tears a session down, releasing its resources.
    pub fn teardown(&mut self, id: SessionId, state: &mut OverlayState) -> Result<()> {
        let s = self.sessions.remove(&id).ok_or(Error::UnknownSession(id.raw()))?;
        state.release(&s.allocation);
        Ok(())
    }

    /// One maintenance round: sends a low-rate probe along every backup of
    /// every session (message count = components + destination hop each),
    /// drops backups containing dead peers, and replenishes from the pool.
    /// Returns the number of maintenance messages sent.
    pub fn maintenance_tick(
        &mut self,
        reg: &Registry,
        state: &OverlayState,
        obs: &mut Instruments,
    ) -> u64 {
        let mut messages = 0u64;
        for s in self.sessions.values_mut() {
            // Probe cost: one message per service-graph hop.
            for (g, _) in &s.backups {
                messages += g.assignment.len() as u64 + 1;
            }
            // Liveness filtering.
            let before = s.backups.len();
            s.backups.retain(|(g, _)| {
                g.components().iter().all(|&c| state.is_alive(reg.get(c).peer))
            });
            let lost = before - s.backups.len();
            // Replenish from the pool, preferring low ψ (pool is ordered).
            for _ in 0..lost {
                let next_live = s.pool.iter().position(|(g, _)| {
                    g.components().iter().all(|&c| state.is_alive(reg.get(c).peer))
                });
                match next_live {
                    Some(i) => s.backups.push(s.pool.remove(i)),
                    None => break,
                }
            }
        }
        obs.metrics.add(obs.counters.maintenance, messages);
        messages
    }

    /// Reacts to the failure of `peer`. Sessions whose primary used the
    /// peer try their backups in order (alive + committable); the rest of
    /// the affected sessions return [`FailureOutcome::NeedsReactive`].
    /// Unaffected sessions silently drop dead backups at the next
    /// maintenance tick.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_peer_failure(
        &mut self,
        peer: PeerId,
        reg: &Registry,
        overlay: &Overlay,
        paths: &mut PathTable,
        state: &mut OverlayState,
        weights: &CostWeights,
        obs: &mut Instruments,
    ) -> Vec<(SessionId, FailureOutcome)> {
        let affected: Vec<SessionId> = self
            .sessions
            .values()
            .filter(|s| s.primary.contains_peer(peer, reg))
            .map(|s| s.id)
            .collect();
        let mut outcomes = Vec::with_capacity(affected.len());
        for id in affected {
            let outcome = self.switch_to_backup(id, peer, reg, overlay, paths, state, weights, obs);
            outcomes.push((id, outcome));
        }
        outcomes
    }

    #[allow(clippy::too_many_arguments)]
    fn switch_to_backup(
        &mut self,
        id: SessionId,
        failed: PeerId,
        reg: &Registry,
        overlay: &Overlay,
        paths: &mut PathTable,
        state: &mut OverlayState,
        weights: &CostWeights,
        obs: &mut Instruments,
    ) -> FailureOutcome {
        let s = self.sessions.get_mut(&id).expect("caller verified membership");
        // The broken primary's resources are released (dead peer entries
        // are moot; live-peer entries must be freed).
        state.release(&s.allocation);
        s.allocation = SessionAllocation::default();

        // The failed peer may host components of *other* functions too, so
        // it can sit inside a backup graph that excludes the broken primary
        // component. Prune such backups before qualifying candidates: the
        // overlay's liveness view can lag the failure notification, and the
        // per-component alive check below would then wave the dead peer
        // through.
        s.backups.retain(|(g, _)| !g.contains_peer(failed, reg));

        let mut rank = 0usize;
        while !s.backups.is_empty() {
            let (graph, _) = s.backups.remove(0);
            let alive =
                graph.components().iter().all(|&c| state.is_alive(reg.get(c).peer));
            if alive {
                let (peers, links) = session_demands(&graph, &s.request, reg, overlay, paths);
                if let Ok(alloc) = state.commit(&peers, &links) {
                    let eval =
                        evaluate(&graph, &s.request, reg, overlay, state, paths, weights);
                    s.primary = graph;
                    s.eval = eval;
                    s.allocation = alloc;
                    // Re-cover the *new* primary: the surviving backups were
                    // selected to exclude the old primary's components, so a
                    // follow-up failure of a peer both graphs share would
                    // find no backup avoiding it and fall back to reactive
                    // BCP. Merge backups and pool, and re-run Eq. 2 + §5.2
                    // against the graph now streaming; graphs holding dead
                    // peers stay in the pool (they qualify again on revive)
                    // but are never promoted to maintained backups.
                    let mut merged = std::mem::take(&mut s.backups);
                    merged.append(&mut s.pool);
                    merged.sort_by(|a, b| a.1.cost.total_cmp(&b.1.cost));
                    let (live, dead): (Vec<_>, Vec<_>) =
                        merged.into_iter().partition(|(g, _)| {
                            g.components().iter().all(|&c| state.is_alive(reg.get(c).peer))
                        });
                    let gamma = backup_count(
                        &s.eval,
                        &s.request,
                        self.cfg.backup_upper_bound,
                        1 + live.len(),
                    );
                    let chosen =
                        select_backups(&s.primary, &live, gamma, reg, self.cfg.max_subset_size);
                    let mut rest = Vec::new();
                    for (i, entry) in live.into_iter().enumerate() {
                        if chosen.contains(&i) {
                            s.backups.push(entry);
                        } else {
                            rest.push(entry);
                        }
                    }
                    rest.extend(dead);
                    s.pool = rest;
                    // Detection precedes the switch; trying dead backups
                    // first costs one maintenance-status check each (they
                    // are known-dead from probing, so no extra round trip).
                    let switch_ms = self.cfg.detection_delay_ms + self.cfg.switch_delay_ms;
                    let new_head = s
                        .primary
                        .assignment
                        .first()
                        .map(|&c| reg.get(c).peer.raw())
                        .unwrap_or(0);
                    obs.metrics.observe(obs.counters.switch_ms, switch_ms);
                    obs.metrics.incr(obs.counters.recovery_switches);
                    obs.trace.record(TraceEvent::BackupSwitch {
                        session: id.raw(),
                        from: failed.raw(),
                        to: new_head,
                        latency_ms: switch_ms,
                    });
                    obs.trace.record(TraceEvent::RecoverySwitch {
                        session: id.raw(),
                        rank: rank as u32,
                        reactive: false,
                    });
                    return FailureOutcome::RecoveredByBackup { rank, switch_ms };
                }
            }
            rank += 1;
        }
        obs.metrics.incr(obs.counters.recovery_reactive);
        obs.trace.record(TraceEvent::RecoverySwitch {
            session: id.raw(),
            rank: rank as u32,
            reactive: true,
        });
        FailureOutcome::NeedsReactive
    }

    /// Re-establishes a session after reactive BCP found a fresh graph.
    #[allow(clippy::too_many_arguments)]
    pub fn reestablish(
        &mut self,
        id: SessionId,
        primary: ServiceGraph,
        eval: GraphEval,
        pool: Vec<(ServiceGraph, GraphEval)>,
        reg: &Registry,
        overlay: &Overlay,
        paths: &mut PathTable,
        state: &mut OverlayState,
    ) -> Result<()> {
        check_eval_finite(&eval)?;
        let s = self.sessions.get_mut(&id).ok_or(Error::UnknownSession(id.raw()))?;
        state.release(&s.allocation);
        let (peers, links) = session_demands(&primary, &s.request, reg, overlay, paths);
        let allocation = state.commit(&peers, &links)?;
        let c_total = 1 + pool.len();
        let gamma =
            backup_count(&eval, &s.request, self.cfg.backup_upper_bound, c_total);
        let chosen = select_backups(&primary, &pool, gamma, reg, self.cfg.max_subset_size);
        let mut backups = Vec::new();
        let mut rest = Vec::new();
        for (i, entry) in pool.into_iter().enumerate() {
            if chosen.contains(&i) {
                backups.push(entry);
            } else {
                rest.push(entry);
            }
        }
        s.primary = primary;
        s.eval = eval;
        s.allocation = allocation;
        s.backups = backups;
        s.pool = rest;
        Ok(())
    }

    /// Drops a session that could not be recovered (releases nothing — the
    /// failed switch already freed its allocation).
    pub fn abandon(&mut self, id: SessionId) {
        self.sessions.remove(&id);
    }

    /// Active session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True if no sessions are active.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Iterates active sessions.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Mean number of maintained backups per session (the paper reports
    /// 2.74 for Fig. 9).
    pub fn mean_backup_count(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.values().map(|s| s.backups.len() as f64).sum::<f64>()
            / self.sessions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::{FunctionCatalog, ServiceComponent};
    use crate::model::function_graph::FunctionGraph;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::id::FunctionId;
    use spidernet_util::qos::{QosRequirement, QosVector};

    struct World {
        overlay: Overlay,
        reg: Registry,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
    }

    /// 2 functions × 3 replicas on peers 2..8.
    fn world() -> World {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 31);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 5 } },
            31,
        );
        let mut catalog = FunctionCatalog::new();
        catalog.intern("fn-0");
        catalog.intern("fn-1");
        let mut reg = Registry::new(catalog);
        for f in 0..2u64 {
            for r in 0..3u64 {
                reg.add(ServiceComponent {
                    id: ComponentId::new(0),
                    peer: PeerId::new(2 + f * 3 + r),
                    function: FunctionId::new(f),
                    perf_qos: QosVector::from_values(vec![10.0, 0.01]),
                    resources: ResourceVector::new(0.2, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01 + 0.01 * r as f64,
                });
            }
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World { overlay, reg, state, paths: PathTable::new(), weights: CostWeights::uniform() }
    }

    fn request() -> CompositionRequest {
        // Bounds sized so Eq. 2's usage ratios are meaningful (~0.5 per
        // term): actual delay ≈ tens of ms + 20ms Q_p, actual loss ≈ 0.02
        // additive, actual graph failure prob ≈ 0.03–0.05.
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(2),
            qos_req: QosRequirement::new(vec![400.0, 0.05]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 0.08,
        }
    }

    /// All 9 combos as (graph, eval), cost-ordered, first = best.
    fn all_candidates(w: &mut World, req: &CompositionRequest) -> Vec<(ServiceGraph, GraphEval)> {
        let mut out = Vec::new();
        for a in 0..3u64 {
            for b in 0..3u64 {
                let g = ServiceGraph::new(
                    req.source,
                    req.dest,
                    FunctionGraph::linear(2),
                    vec![ComponentId::new(a), ComponentId::new(3 + b)],
                );
                let e = evaluate(&g, req, &w.reg, &w.overlay, &w.state, &mut w.paths, &w.weights);
                out.push((g, e));
            }
        }
        out.sort_by(|x, y| x.1.cost.total_cmp(&y.1.cost));
        out
    }

    #[test]
    fn backup_count_formula() {
        let req = request(); // bounds: delay 400ms, loss 0.05, failure 0.08
        let eval = GraphEval {
            qos: QosVector::from_values(vec![200.0, 0.025]), // usage 0.5+0.5=1.0
            cost: 1.0,
            failure_prob: 0.04, // term 0.5
            fits_resources: true,
        };
        // U=2: floor(2*(1.0+0.5)) = 3.
        assert_eq!(backup_count(&eval, &req, 2.0, 100), 3);
        // C caps it.
        assert_eq!(backup_count(&eval, &req, 2.0, 3), 2);
        assert_eq!(backup_count(&eval, &req, 2.0, 1), 0);
        // Better sessions keep fewer backups.
        let good = GraphEval {
            qos: QosVector::from_values(vec![20.0, 0.0025]),
            cost: 1.0,
            failure_prob: 0.004,
            fits_resources: true,
        };
        assert!(backup_count(&good, &req, 2.0, 100) < 3);
    }

    #[test]
    fn backups_exclude_each_primary_component() {
        let mut w = world();
        let req = request();
        let mut cands = all_candidates(&mut w, &req);
        let (primary, _) = cands.remove(0);
        let idx = select_backups(&primary, &cands, 2, &w.reg, 3);
        assert_eq!(idx.len(), 2);
        // The first backup must exclude the highest-failure-prob primary
        // component (selector tie-break: smaller component id).
        let bottleneck = *primary
            .components()
            .iter()
            .min_by(|a, b| {
                w.reg
                    .get(**b)
                    .failure_prob
                    .total_cmp(&w.reg.get(**a).failure_prob)
                    .then_with(|| a.cmp(b))
            })
            .unwrap();
        assert!(!cands[idx[0]].0.contains_component(bottleneck));
    }

    #[test]
    fn backups_prefer_overlap() {
        let mut w = world();
        let req = request();
        let mut cands = all_candidates(&mut w, &req);
        let (primary, _) = cands.remove(0);
        let idx = select_backups(&primary, &cands, 1, &w.reg, 3);
        let chosen = &cands[idx[0]].0;
        // Max-overlap graph excluding the bottleneck shares 1 of 2
        // components.
        assert_eq!(chosen.overlap(&primary), 1);
    }

    #[test]
    fn gamma_zero_selects_nothing() {
        let mut w = world();
        let req = request();
        let mut cands = all_candidates(&mut w, &req);
        let (primary, _) = cands.remove(0);
        assert!(select_backups(&primary, &cands, 0, &w.reg, 3).is_empty());
        assert!(select_backups(&primary, &[], 3, &w.reg, 3).is_empty());
    }

    fn establish_one(
        w: &mut World,
        mgr: &mut SessionManager,
    ) -> (SessionId, ServiceGraph) {
        let req = request();
        let mut cands = all_candidates(w, &req);
        let (primary, eval) = cands.remove(0);
        let id = mgr
            .establish(
                req,
                primary.clone(),
                eval,
                cands,
                &w.reg,
                &w.overlay,
                &mut w.paths,
                &mut w.state,
            )
            .unwrap();
        (id, primary)
    }

    #[test]
    fn establish_commits_resources_and_selects_backups() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig {
            backup_upper_bound: 5.0,
            ..RecoveryConfig::default()
        });
        let (id, primary) = establish_one(&mut w, &mut mgr);
        let s = mgr.session(id).unwrap();
        assert!(!s.backups.is_empty());
        assert!(mgr.mean_backup_count() > 0.0);
        // Primary's peers are loaded.
        let p0 = w.reg.get(primary.assignment[0]).peer;
        assert!(w.state.available(p0).cpu() < w.state.capacity(p0).cpu());
    }

    #[test]
    fn teardown_releases_resources() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig::default());
        let (id, primary) = establish_one(&mut w, &mut mgr);
        mgr.teardown(id, &mut w.state).unwrap();
        assert!(mgr.is_empty());
        let p0 = w.reg.get(primary.assignment[0]).peer;
        assert_eq!(w.state.available(p0), w.state.capacity(p0));
        assert!(mgr.teardown(id, &mut w.state).is_err());
    }

    #[test]
    fn failure_switches_to_backup() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig {
            backup_upper_bound: 5.0,
            ..RecoveryConfig::default()
        });
        let (id, primary) = establish_one(&mut w, &mut mgr);
        let victim = w.reg.get(primary.assignment[0]).peer;
        w.state.fail_peer(victim);
        let outcomes = mgr.handle_peer_failure(
            victim,
            &w.reg,
            &w.overlay,
            &mut w.paths,
            &mut w.state,
            &w.weights,
            &mut Instruments::new(),
        );
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0].1, FailureOutcome::RecoveredByBackup { .. }));
        let s = mgr.session(id).unwrap();
        assert!(!s.primary.contains_peer(victim, &w.reg), "new primary still uses dead peer");
        assert!(!s.allocation.peers.is_empty(), "no resources committed after switch");
    }

    #[test]
    fn failure_with_no_backups_needs_reactive() {
        let mut w = world();
        // U = 0 → γ = 0 → no backups.
        let mut mgr = SessionManager::new(RecoveryConfig {
            backup_upper_bound: 0.0,
            ..RecoveryConfig::default()
        });
        let (id, primary) = establish_one(&mut w, &mut mgr);
        assert!(mgr.session(id).unwrap().backups.is_empty());
        let victim = w.reg.get(primary.assignment[1]).peer;
        w.state.fail_peer(victim);
        let outcomes = mgr.handle_peer_failure(
            victim,
            &w.reg,
            &w.overlay,
            &mut w.paths,
            &mut w.state,
            &w.weights,
            &mut Instruments::new(),
        );
        assert_eq!(outcomes[0].1, FailureOutcome::NeedsReactive);
        // Reactive path: hand it a fresh graph.
        let req = request();
        let mut cands = all_candidates(&mut w, &req);
        cands.retain(|(g, _)| !g.contains_peer(victim, &w.reg));
        let (fresh, eval) = cands.remove(0);
        mgr.reestablish(id, fresh, eval, cands, &w.reg, &w.overlay, &mut w.paths, &mut w.state)
            .unwrap();
        assert!(!mgr.session(id).unwrap().primary.contains_peer(victim, &w.reg));
    }

    #[test]
    fn unaffected_sessions_are_untouched() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig::default());
        let (id, primary) = establish_one(&mut w, &mut mgr);
        // Fail a peer outside the primary.
        let outside = PeerId::new(30);
        assert!(!primary.contains_peer(outside, &w.reg));
        w.state.fail_peer(outside);
        let outcomes = mgr.handle_peer_failure(
            outside,
            &w.reg,
            &w.overlay,
            &mut w.paths,
            &mut w.state,
            &w.weights,
            &mut Instruments::new(),
        );
        assert!(outcomes.is_empty());
        assert!(mgr.session(id).is_some());
    }

    #[test]
    fn maintenance_drops_dead_backups_and_replenishes() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig {
            backup_upper_bound: 2.0,
            ..RecoveryConfig::default()
        });
        let (id, _) = establish_one(&mut w, &mut mgr);
        let backups_before = mgr.session(id).unwrap().backups.len();
        assert!(backups_before > 0);
        // Kill a peer used by the first backup but not by the primary.
        let s = mgr.session(id).unwrap();
        let victim = s
            .backups
            .iter()
            .flat_map(|(g, _)| g.components().iter())
            .map(|&c| w.reg.get(c).peer)
            .find(|&p| !s.primary.contains_peer(p, &w.reg))
            .expect("some backup peer differs from primary");
        w.state.fail_peer(victim);
        let mut obs = Instruments::new();
        let msgs = mgr.maintenance_tick(&w.reg, &w.state, &mut obs);
        assert!(msgs > 0);
        assert_eq!(obs.metrics.get(obs.counters.maintenance), msgs);
        let s = mgr.session(id).unwrap();
        assert!(
            s.backups.iter().all(|(g, _)| !g.contains_peer(victim, &w.reg)),
            "dead backup survived maintenance"
        );
    }

    #[test]
    fn combinations_enumerate_k_subsets() {
        assert_eq!(combinations(4, 1), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(
            combinations(4, 2),
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(2, 3).is_empty());
        assert!(combinations(3, 0).is_empty());
    }

    #[test]
    fn abandon_removes_session() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig::default());
        let (id, _) = establish_one(&mut w, &mut mgr);
        mgr.abandon(id);
        assert!(mgr.session(id).is_none());
    }

    /// A registry where one function's replica sits on a chosen peer and
    /// with chosen failure probabilities: `spec` lists `(peer, function,
    /// failure_prob)` per component, ids assigned in order.
    fn custom_registry(spec: &[(u64, u64, f64)]) -> Registry {
        let mut catalog = FunctionCatalog::new();
        catalog.intern("fn-0");
        catalog.intern("fn-1");
        let mut reg = Registry::new(catalog);
        for &(peer, function, failure_prob) in spec {
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(peer),
                function: FunctionId::new(function),
                perf_qos: QosVector::from_values(vec![10.0, 0.01]),
                resources: ResourceVector::new(0.2, 32.0),
                out_bandwidth_mbps: 1.0,
                failure_prob,
            });
        }
        reg
    }

    fn graph_of(req: &CompositionRequest, comps: &[u64]) -> ServiceGraph {
        ServiceGraph::new(
            req.source,
            req.dest,
            FunctionGraph::linear(2),
            comps.iter().map(|&c| ComponentId::new(c)).collect(),
        )
    }

    fn dummy_eval(cost: f64, failure_prob: f64) -> GraphEval {
        GraphEval {
            qos: QosVector::from_values(vec![50.0, 0.02]),
            cost,
            failure_prob,
            fits_resources: true,
        }
    }

    #[test]
    fn nan_failure_prob_does_not_panic_and_ranks_as_bottleneck() {
        // Regression: `select_backups` used `partial_cmp().expect(...)` on
        // failure probabilities and panicked on a NaN replica. With
        // `total_cmp`, the NaN component sorts as the worst bottleneck and
        // selection proceeds.
        let req = request();
        let reg = custom_registry(&[
            (2, 0, f64::NAN), // c0: poisoned replica
            (3, 0, 0.02),     // c1
            (4, 1, 0.01),     // c2
            (5, 1, 0.03),     // c3
        ]);
        let primary = graph_of(&req, &[0, 2]);
        let pool = vec![
            (graph_of(&req, &[1, 2]), dummy_eval(1.0, 0.03)), // excludes c0
            (graph_of(&req, &[0, 3]), dummy_eval(1.1, f64::NAN)), // still has c0
            (graph_of(&req, &[1, 3]), dummy_eval(1.2, 0.05)), // excludes c0
        ];
        let selected = select_backups(&primary, &pool, 2, &reg, 3);
        assert!(!selected.is_empty());
        // The NaN component is the first bottleneck covered, so the first
        // backup must exclude it.
        assert!(!pool[selected[0]].0.contains_component(ComponentId::new(0)));
    }

    #[test]
    fn nan_cost_eval_is_a_recoverable_error() {
        let mut w = world();
        let mut mgr = SessionManager::new(RecoveryConfig::default());
        let req = request();
        let mut cands = all_candidates(&mut w, &req);
        let (primary, _) = cands.remove(0);
        let poisoned = dummy_eval(f64::NAN, 0.02);
        let err = mgr.establish(
            req,
            primary,
            poisoned,
            cands,
            &w.reg,
            &w.overlay,
            &mut w.paths,
            &mut w.state,
        );
        assert!(matches!(err, Err(Error::InvalidRequirement(_))), "got {err:?}");
        assert!(mgr.is_empty(), "poisoned session was registered");
        // A NaN-cost candidate in a cost-ordered list sorts last under
        // total_cmp — it can never displace a finite best.
        let mut costs = [3.0, f64::NAN, 1.0];
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs[0], 1.0);
        assert!(costs[2].is_nan());
    }

    #[test]
    fn backup_count_edge_cases() {
        let req = request(); // bounds: delay 400ms, loss 0.05, failure 0.08
        let eval = GraphEval {
            qos: QosVector::from_values(vec![200.0, 0.025]), // usage 1.0
            cost: 1.0,
            failure_prob: 0.04, // term 0.5 → terms total 1.5
            fits_resources: true,
        };
        // γ capped by U: floor(U · 1.5).
        assert_eq!(backup_count(&eval, &req, 1.0, 100), 1);
        assert_eq!(backup_count(&eval, &req, 0.5, 100), 0);
        assert_eq!(backup_count(&eval, &req, 10.0, 100), 15);
        // γ capped by C−1, including the degenerate pools.
        assert_eq!(backup_count(&eval, &req, 10.0, 4), 3);
        assert_eq!(backup_count(&eval, &req, 10.0, 1), 0); // pool empty: C = 1
        assert_eq!(backup_count(&eval, &req, 10.0, 0), 0); // no qualified graphs
        // Zero pool selects nothing regardless of γ.
        let reg = custom_registry(&[(2, 0, 0.01), (4, 1, 0.01)]);
        let primary = graph_of(&req, &[0, 1]);
        assert!(select_backups(&primary, &[], 5, &reg, 3).is_empty());
    }

    #[test]
    fn bottleneck_ties_break_toward_lower_component_id() {
        // Primary components c0 and c2 tie on failure probability; the
        // selector's deterministic tie-break covers the lower id first, so
        // with γ = 1 the single backup must exclude c0 (not c2).
        let req = request();
        let reg = custom_registry(&[
            (2, 0, 0.05), // c0
            (3, 0, 0.01), // c1
            (4, 1, 0.05), // c2 — ties with c0
            (5, 1, 0.01), // c3
        ]);
        let primary = graph_of(&req, &[0, 2]);
        let pool = vec![
            (graph_of(&req, &[1, 2]), dummy_eval(1.0, 0.06)), // excludes c0
            (graph_of(&req, &[0, 3]), dummy_eval(1.1, 0.06)), // excludes c2
        ];
        let selected = select_backups(&primary, &pool, 1, &reg, 3);
        assert_eq!(selected, vec![0], "tie must cover the lower component id first");
    }

    #[test]
    fn switch_never_lands_on_backup_containing_the_failed_peer() {
        // Regression: peer 2 hosts components of *both* functions (c0 for
        // fn-0 and c2 for fn-1). A backup that excludes the broken primary
        // component c0 can still ride on peer 2 via c2. If the overlay's
        // liveness view lags the failure notification (state not yet
        // updated — exactly what happens with asynchronous detection), the
        // per-component alive check passes and the session would switch
        // onto a graph containing the dead peer.
        let mut w = world();
        let reg = custom_registry(&[
            (2, 0, 0.01), // c0 on peer 2
            (4, 0, 0.01), // c1
            (2, 1, 0.01), // c2 on peer 2 as well
            (5, 1, 0.05), // c3 — bottleneck
        ]);
        let req = request();
        let primary = graph_of(&req, &[0, 3]);
        let eval =
            evaluate(&primary, &req, &reg, &w.overlay, &w.state, &mut w.paths, &w.weights);
        let pool: Vec<(ServiceGraph, GraphEval)> = [vec![1u64, 2], vec![1, 3]]
            .iter()
            .map(|comps| {
                let g = graph_of(&req, comps);
                let e = evaluate(&g, &req, &reg, &w.overlay, &w.state, &mut w.paths, &w.weights);
                (g, e)
            })
            .collect();
        let mut mgr = SessionManager::new(RecoveryConfig {
            backup_upper_bound: 50.0, // γ caps at C−1 = 2: both pool graphs become backups
            ..RecoveryConfig::default()
        });
        let id = mgr
            .establish(req, primary, eval, pool, &reg, &w.overlay, &mut w.paths, &mut w.state)
            .unwrap();
        // Bottleneck-first selection puts the peer-2-carrying backup
        // [c1, c2] at rank 0 — the trap is armed.
        let s = mgr.session(id).unwrap();
        assert_eq!(s.backups.len(), 2);
        assert!(s.backups[0].0.contains_peer(PeerId::new(2), &reg));
        // Peer 2 dies, but the state's liveness view lags (no fail_peer).
        let outcomes = mgr.handle_peer_failure(
            PeerId::new(2),
            &reg,
            &w.overlay,
            &mut w.paths,
            &mut w.state,
            &w.weights,
            &mut Instruments::new(),
        );
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0].1, FailureOutcome::RecoveredByBackup { .. }));
        let s = mgr.session(id).unwrap();
        assert!(
            !s.primary.contains_peer(PeerId::new(2), &reg),
            "switched onto a graph containing the dead peer"
        );
    }
}
