//! SpiderNet core: the paper's primary contribution.
//!
//! * [`model`] — service components, function graphs with dependency and
//!   commutation links, service graphs, and composition requests;
//! * [`state`] — the overlay's live resource state: per-peer capacities,
//!   per-link bandwidth, soft (probe-time) and committed (session-time)
//!   allocations, and peer liveness;
//! * [`paths`] — cached overlay shortest-path lookups used to price service
//!   links;
//! * [`bcp`] — the bounded composition probing protocol (paper §4);
//! * [`selection`] — destination-side branch merging, qualification, and
//!   ψ-cost optimal composition selection (paper §4.3, Eq. 1);
//! * [`recovery`] — proactive failure recovery: adaptive backup count
//!   (Eq. 2), backup selection, maintenance probing, and switchover
//!   (paper §5);
//! * [`baselines`] — the paper's comparison algorithms: optimal
//!   (unbounded flooding), random, static, and the centralized
//!   global-state scheme;
//! * [`workload`] — the simulation study's workload generators (§6.1);
//! * [`loadgen`] — the open-loop workload engine: Poisson/diurnal/flash
//!   arrivals, Zipf-skewed function popularity, and standing-world load
//!   cells with admission control and churn;
//! * [`system`] — the `SpiderNet` facade tying overlay, DHT discovery,
//!   state, and protocol together;
//! * [`experiments`] — drivers regenerating the paper's figures;
//! * [`trust`] — decentralized trust management (§8 future work): beta
//!   reputation feeding the next-hop metric;
//! * [`conditional`] — conditional-branch composition semantics (§8 future
//!   work): expected-case QoS and probability-scaled branch bandwidth;
//! * [`spec`] — the textual request-specification parser (QoSTalk
//!   stand-in).

#![warn(missing_docs)]

pub mod baselines;
pub mod bcp;
pub mod conditional;
pub mod experiments;
pub mod loadgen;
pub mod model;
pub mod paths;
pub mod recovery;
pub mod selection;
pub mod spec;
pub mod state;
pub mod system;
pub mod trust;
pub mod workload;

pub use model::{
    CompositionRequest, FunctionGraph, Registry, ServiceComponent, ServiceGraph,
};
pub use system::SpiderNet;
