//! Bounded Composition Probing (paper §4).
//!
//! Given a composite service request, the source spawns *probes* that walk
//! candidate service graphs hop by hop. A probing budget β caps the total
//! number of probes a request may use; per-function probing quotas α_k
//! steer how the budget is divided among next-hop functions. Each hop
//! (§4.2):
//!
//! 1. checks the accumulated QoS against the user's bounds and drops the
//!    probe on violation;
//! 2. *soft-allocates* the component's resources so concurrent probes
//!    cannot jointly over-admit (reservations expire unless confirmed);
//! 3. derives next-hop functions (the composition-pattern successor — the
//!    source pre-enumerates commutation orders into patterns, see
//!    [`crate::model::function_graph::FunctionGraph::patterns`]);
//! 4. selects up to `I_k = min(β_k, α_k)` next-hop replicas by a composite
//!    local metric (network delay, failure probability, load) and spawns
//!    child probes with budget ⌊β_k / I_k⌋.
//!
//! The destination merges branch probes into complete service graphs,
//! filters by the user's requirements, and returns the ψ-optimal qualified
//! graph plus the remaining qualified graphs for backup selection.

use crate::model::component::Registry;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::selection::{
    evaluate_with, is_qualified, merge_branches, select_best, select_best_by, GraphEvalScratch,
    SelectionPolicy,
};
use crate::state::{OverlayState, SoftToken};
use crate::trust::{Marketplace, TrustManager};
use spidernet_dht::{PastryNetwork, ServiceDirectory, ServiceMeta};
use spidernet_sim::metrics::{counter, Instruments};
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_sim::trace::{DropReason, TraceEvent};
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::hash::{FxHashMap, FxHashSet};
use spidernet_util::id::{ComponentId, FunctionId, PeerId};
use spidernet_util::qos::{dim, QosVector};
use std::sync::Arc;

/// How probing quota α_k is assigned per function.
#[derive(Clone, Copy, Debug)]
pub enum QuotaPolicy {
    /// The same quota for every function.
    Uniform(u32),
    /// α_k = ⌈fraction · Z_k⌉ — more replicas, more quota (the paper's
    /// differentiated allocation).
    ReplicaFraction(f64),
}

impl QuotaPolicy {
    fn quota(&self, replicas: usize) -> u32 {
        match *self {
            QuotaPolicy::Uniform(a) => a.max(1),
            QuotaPolicy::ReplicaFraction(f) => ((replicas as f64 * f).ceil() as u32).max(1),
        }
    }
}

/// How probes learn the replica lists of next-hop functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupMode {
    /// The source resolves every function once before probing and attaches
    /// the lists to the probe. Metadata is static, so this is
    /// behaviour-preserving; it matches the prototype's phase split where
    /// "service discovery time" is measured separately from composition
    /// (Fig. 10).
    Prefetch,
    /// Every hop re-queries the DHT, as §4.2 step 2.3 describes literally;
    /// costs extra DHT messages and latency per hop.
    PerHop,
}

/// BCP tuning knobs.
///
/// Construct via [`BcpConfig::builder`] (the struct is `#[non_exhaustive]`
/// so downstream crates stay source-compatible when knobs are added).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct BcpConfig {
    /// Probing budget β: total probes a request may use.
    pub budget: u32,
    /// Per-function quota policy (α).
    pub quota: QuotaPolicy,
    /// Soft-reservation lifetime (cancelled earlier at selection).
    pub soft_ttl: SimDuration,
    /// Weight of normalized next-hop network delay in the composite
    /// next-hop selection metric.
    pub w_delay: f64,
    /// Weight of the candidate's failure probability.
    pub w_failure: f64,
    /// Weight of the candidate peer's current load.
    pub w_load: f64,
    /// Cap on merged complete graphs per pattern (cartesian guard).
    pub merge_cap: usize,
    /// Replica-list resolution strategy.
    pub lookup: LookupMode,
    /// Fixed per-hop probe processing delay, ms.
    pub hop_processing_ms: f64,
    /// Weight of `(1 − trust)` in the next-hop metric. 0 disables the
    /// trust extension (paper §8 future work) entirely.
    pub w_trust: f64,
    /// Candidates with aggregate trust below this are excluded outright.
    pub min_trust: f64,
    /// Whether probes perform soft resource allocation (§4.2 step 2.1).
    /// Disabling is an ablation: concurrent probes may then jointly
    /// over-admit and the final commit can fail.
    pub soft_allocation: bool,
    /// Destination wall-deadline slack for probe collection in the
    /// deployed runtime, as a multiple of the model collect window. A
    /// liveness knob only — it never changes which probes count — but a
    /// value below 1.0 would cut the deadline under the window itself and
    /// make the collected set scheduling-dependent, so
    /// [`BcpConfigBuilder::try_build`] rejects it.
    pub collect_deadline_slack: f64,
    /// Per-peer load-shedding threshold ψ on CPU utilization
    /// (committed + soft, as a fraction of capacity). Replicas on peers
    /// at or above the threshold are dropped from the qualified pool
    /// before any probe is spent on them; a function whose entire pool is
    /// shed rejects the request with [`Error::AdmissionRejected`] instead
    /// of probing doomed candidates. `1.0` (the default) disables
    /// shedding entirely.
    pub shed_utilization: f64,
    /// How the qualified candidate pool is ranked at selection time
    /// (paper ψ, marketplace bids, deterministic random, or greedy
    /// delay). Probing and qualification are identical across policies.
    pub selection_policy: SelectionPolicy,
}

impl Default for BcpConfig {
    fn default() -> Self {
        BcpConfig {
            budget: 16,
            quota: QuotaPolicy::Uniform(4),
            soft_ttl: SimDuration::from_secs(10),
            w_delay: 0.5,
            w_failure: 0.25,
            w_load: 0.25,
            merge_cap: 64,
            lookup: LookupMode::Prefetch,
            hop_processing_ms: 1.0,
            w_trust: 0.0,
            min_trust: 0.0,
            soft_allocation: true,
            collect_deadline_slack: 3.0,
            shed_utilization: 1.0,
            selection_policy: SelectionPolicy::Paper,
        }
    }
}

impl BcpConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> BcpConfigBuilder {
        BcpConfigBuilder { cfg: BcpConfig::default() }
    }
}

/// Builder for [`BcpConfig`]; every setter defaults to the paper's values.
#[derive(Clone, Debug)]
pub struct BcpConfigBuilder {
    cfg: BcpConfig,
}

impl BcpConfigBuilder {
    /// Probing budget β.
    pub fn budget(mut self, budget: u32) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Per-function quota policy (α).
    pub fn quota(mut self, quota: QuotaPolicy) -> Self {
        self.cfg.quota = quota;
        self
    }

    /// Soft-reservation lifetime.
    pub fn soft_ttl(mut self, ttl: SimDuration) -> Self {
        self.cfg.soft_ttl = ttl;
        self
    }

    /// Next-hop metric weights (delay, failure, load).
    pub fn hop_weights(mut self, w_delay: f64, w_failure: f64, w_load: f64) -> Self {
        self.cfg.w_delay = w_delay;
        self.cfg.w_failure = w_failure;
        self.cfg.w_load = w_load;
        self
    }

    /// Cap on merged complete graphs per pattern.
    pub fn merge_cap(mut self, cap: usize) -> Self {
        self.cfg.merge_cap = cap;
        self
    }

    /// Replica-list resolution strategy.
    pub fn lookup(mut self, mode: LookupMode) -> Self {
        self.cfg.lookup = mode;
        self
    }

    /// Fixed per-hop probe processing delay, ms.
    pub fn hop_processing_ms(mut self, ms: f64) -> Self {
        self.cfg.hop_processing_ms = ms;
        self
    }

    /// Trust extension: metric weight and admission floor.
    pub fn trust(mut self, w_trust: f64, min_trust: f64) -> Self {
        self.cfg.w_trust = w_trust;
        self.cfg.min_trust = min_trust;
        self
    }

    /// Whether probes perform soft resource allocation.
    pub fn soft_allocation(mut self, on: bool) -> Self {
        self.cfg.soft_allocation = on;
        self
    }

    /// Destination probe-collection deadline slack (runtime daemon), as a
    /// multiple of the model collect window.
    pub fn collect_deadline_slack(mut self, slack: f64) -> Self {
        self.cfg.collect_deadline_slack = slack;
        self
    }

    /// Per-peer ψ load-shedding threshold (`1.0` disables).
    pub fn shed_utilization(mut self, psi: f64) -> Self {
        self.cfg.shed_utilization = psi;
        self
    }

    /// Selection-time ranking policy for the qualified pool.
    pub fn selection_policy(mut self, policy: SelectionPolicy) -> Self {
        self.cfg.selection_policy = policy;
        self
    }

    /// Finishes the configuration, validating knobs whose bad values
    /// would silently corrupt protocol behaviour rather than merely
    /// perform badly.
    pub fn try_build(self) -> Result<BcpConfig> {
        if !self.cfg.collect_deadline_slack.is_finite() || self.cfg.collect_deadline_slack < 1.0 {
            return Err(Error::InvalidConfig(format!(
                "collect_deadline_slack must be ≥ 1.0 (a wall deadline tighter than the \
                 model collect window makes the collected probe set scheduling-dependent), \
                 got {}",
                self.cfg.collect_deadline_slack
            )));
        }
        if !self.cfg.shed_utilization.is_finite()
            || self.cfg.shed_utilization <= 0.0
            || self.cfg.shed_utilization > 1.0
        {
            return Err(Error::InvalidConfig(format!(
                "shed_utilization must be in (0, 1], got {}",
                self.cfg.shed_utilization
            )));
        }
        Ok(self.cfg)
    }

    /// Finishes the configuration, panicking on invalid knobs — the
    /// ergonomic path for literals known good at the call site; use
    /// [`BcpConfigBuilder::try_build`] for values from user input.
    pub fn build(self) -> BcpConfig {
        self.try_build().expect("invalid BcpConfig")
    }
}

/// Counters and timings of one BCP run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BcpStats {
    /// Probe transmissions (per-hop messages).
    pub probes_sent: u64,
    /// DHT lookup queries issued.
    pub dht_lookups: u64,
    /// DHT routing messages (hops) those lookups cost.
    pub dht_messages: u64,
    /// Probes that reached the destination.
    pub complete_probes: u64,
    /// Probes dropped for QoS violation.
    pub dropped_qos: u64,
    /// Probes dropped by soft-allocation admission.
    pub dropped_admission: u64,
    /// Replicas excluded from qualified pools by ψ load shedding (never
    /// probed at all, unlike `dropped_admission`).
    pub shed_candidates: u64,
    /// Complete candidate service graphs examined at the destination.
    pub candidates_examined: u64,
    /// Wall-clock (virtual) time of the discovery phase, ms.
    pub discovery_ms: f64,
    /// Wall-clock (virtual) time of the probing phase: the latest probe
    /// arrival at the destination, ms.
    pub probing_ms: f64,
}

/// A successful composition.
#[derive(Clone, Debug)]
pub struct CompositionOutcome {
    /// The ψ-optimal qualified service graph.
    pub best: ServiceGraph,
    /// Its evaluation.
    pub eval: GraphEval,
    /// Other qualified graphs, cost-ordered — the pool backup selection
    /// draws from (paper §5). `C` = `1 + qualified_pool.len()`.
    pub qualified_pool: Vec<(ServiceGraph, GraphEval)>,
    /// Protocol accounting.
    pub stats: BcpStats,
}

/// A probe that reached the destination.
struct BranchProbe {
    assign: Vec<(usize, ComponentId)>,
    latency_ms: f64,
}

/// One live, trust-admitted replica of a function, prefiltered once per
/// [`BcpEngine::compose`] so per-hop ranking recomputes only what actually
/// varies with the probe's position: distance and load.
#[derive(Clone)]
struct PoolEntry {
    cid: ComponentId,
    peer: PeerId,
    /// Hop-invariant part of the next-hop metric:
    /// `w_failure · p_fail + w_trust · (1 − trust)`.
    static_score: f64,
}

/// The qualified-replica pool of one function.
#[derive(Clone)]
struct FunctionPool {
    /// Directory list length, dead replicas included — quota α_k follows
    /// the advertised replication degree Z_k, not momentary liveness.
    raw_len: usize,
    entries: Vec<PoolEntry>,
    /// Replicas dropped by ψ load shedding when the pool was built.
    shed: u64,
    /// First shed peer — the rejecting peer named by
    /// [`Error::AdmissionRejected`] when shedding empties the pool.
    shed_peer: Option<PeerId>,
}

/// One function's memoized discovery result: the qualified pool plus the
/// DHT cost the lookup originally paid, replayed on every hit so setup
/// accounting stays bit-identical with the uncached path.
#[derive(Clone)]
struct CachedLookup {
    /// DHT routing messages the lookup cost (query hops + reply).
    messages: u64,
    /// Lookup round-trip, ms (discovery runs lookups in parallel, so the
    /// phase lasts as long as the slowest round trip).
    rtt_ms: f64,
}

/// Epoch-invalidated memo of per-function DHT lookups and
/// qualified-replica pools, shared by every compose against a standing
/// world (enable via `SpiderNet::set_compose_caching`).
///
/// Validity is keyed on a *world epoch* (churn, component registration,
/// ψ-watermark crossings of the resource state), a *trust epoch*
/// (consulted only when the active config admits by trust — the default
/// config does not, so routine trust feedback never flushes the memo),
/// and the config knobs baked into pool entries. Any mismatch flushes
/// the whole memo and counts one invalidation.
#[derive(Clone)]
pub struct ComposeCache {
    epoch: u64,
    trust_epoch: u64,
    /// Bit patterns of (w_failure, w_trust, min_trust, shed_utilization):
    /// the knobs that shape pool membership and static scores.
    fingerprint: [u64; 4],
    /// Qualified-replica pools, keyed by function alone — pool membership
    /// (liveness, trust admission, ψ shedding, static scores) does not
    /// depend on who is asking.
    pools: FxHashMap<FunctionId, Arc<FunctionPool>>,
    /// Recorded DHT lookup costs, keyed by (requesting peer, function) —
    /// the route and therefore the hop count and round trip DO depend on
    /// the source, so replaying another peer's cost would skew the
    /// per-request discovery latency.
    lookups: FxHashMap<(PeerId, FunctionId), CachedLookup>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Default for ComposeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ComposeCache {
    /// An empty cache at epoch zero.
    pub fn new() -> Self {
        ComposeCache {
            epoch: 0,
            trust_epoch: 0,
            fingerprint: [0; 4],
            pools: FxHashMap::default(),
            lookups: FxHashMap::default(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn config_fingerprint(cfg: &BcpConfig) -> [u64; 4] {
        [
            cfg.w_failure.to_bits(),
            cfg.w_trust.to_bits(),
            cfg.min_trust.to_bits(),
            cfg.shed_utilization.to_bits(),
        ]
    }

    /// Flushes the memo if the world moved under it: epoch or config
    /// mismatch, or — when `cfg` admits by trust — a trust-table change.
    /// Call once per compose, before the engine runs.
    pub fn ensure_current(&mut self, epoch: u64, trust_epoch: u64, cfg: &BcpConfig) {
        let uses_trust = cfg.w_trust > 0.0 || cfg.min_trust > 0.0;
        let fingerprint = Self::config_fingerprint(cfg);
        let stale = epoch != self.epoch
            || fingerprint != self.fingerprint
            || (uses_trust && trust_epoch != self.trust_epoch);
        if stale {
            if !self.pools.is_empty() || !self.lookups.is_empty() {
                self.invalidations += 1;
            }
            self.pools.clear();
            self.lookups.clear();
            self.epoch = epoch;
            self.trust_epoch = trust_epoch;
            self.fingerprint = fingerprint;
        }
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that went to the DHT (and populated the memo).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whole-memo flushes caused by epoch/config drift.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Functions whose qualified pools are currently memoized.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }
}

/// Reusable per-worker scratch for the compose hot path: the graph
/// evaluation workspace plus the probe walk's assignment/undo/ranking
/// buffers. A standing world serving thousands of requests hands the same
/// scratch to every compose so the steady state allocates nothing.
#[derive(Default)]
pub struct ComposeScratch {
    eval: GraphEvalScratch,
    assign: Vec<(usize, ComponentId)>,
    qos_undo: Vec<f64>,
    depth: Vec<Vec<(f64, f64, ComponentId, PeerId)>>,
}

impl Clone for ComposeScratch {
    /// Scratch content is transient garbage between composes; cloning a
    /// world starts the copy with fresh (empty) buffers.
    fn clone(&self) -> Self {
        ComposeScratch::default()
    }
}

/// In-place state of one branch probe walk. Each hop pushes its
/// contribution and undoes it on backtrack; only probes that reach the
/// destination clone their assignment, where the frontier-stack
/// formulation cloned the full accumulator state per spawned child.
struct ProbeState {
    /// Partial assignment `(node, component)` along the current walk.
    assign: Vec<(usize, ComponentId)>,
    /// Accumulated QoS of the walk, mutated in place.
    qos: QosVector,
    /// Saved QoS snapshots for undo, one `dims()`-sized slab per live hop
    /// (floating-point addition has no exact inverse, so undo restores
    /// the saved values rather than subtracting).
    qos_undo: Vec<f64>,
    /// Per-depth candidate scratch `(delay, score, component, peer)`,
    /// reused across sibling subtrees.
    scratch: Vec<Vec<(f64, f64, ComponentId, PeerId)>>,
    /// Probes that reached the destination.
    complete: Vec<BranchProbe>,
}

/// Borrowed world context for one BCP execution.
pub struct BcpEngine<'a> {
    /// The service overlay.
    pub overlay: &'a Overlay,
    /// Component ground truth (accessed via discovery results and
    /// peer-local reads).
    pub reg: &'a Registry,
    /// The Pastry substrate for discovery routing.
    pub pastry: &'a PastryNetwork,
    /// The replica directory.
    pub directory: &'a ServiceDirectory,
    /// Live resource state.
    pub state: &'a mut OverlayState,
    /// Shortest-path cache.
    pub paths: &'a mut PathTable,
    /// ψ weights.
    pub weights: &'a CostWeights,
    /// Observability bundle: metrics registry, resolved handles, trace ring.
    pub obs: &'a mut Instruments,
    /// Session id trace/session-scoped events are attributed to.
    pub session: u64,
    /// Current virtual time (for soft-reservation expiry).
    pub now: SimTime,
    /// Trust tables, when the trust extension is active.
    pub trust: Option<&'a TrustManager>,
    /// Per-function discovery/pool memo. The caller is responsible for
    /// epoch validation ([`ComposeCache::ensure_current`]) before the
    /// engine runs; `None` composes full price.
    pub cache: Option<&'a mut ComposeCache>,
    /// Reusable compose scratch; `None` allocates a private one per call.
    pub scratch: Option<&'a mut ComposeScratch>,
}

/// Prefilters one function's directory list into its qualified pool:
/// liveness, trust admission, and — when ψ shedding is active — load.
/// Quota α_k still follows the raw (advertised) replication degree Z_k,
/// so the pool remembers the list length it was built from. (A free
/// function rather than a method so the engine can build pools while its
/// compose cache is mutably borrowed.)
fn build_pool(
    reg: &Registry,
    state: &OverlayState,
    trust: Option<&TrustManager>,
    metas: &[ServiceMeta],
    cfg: &BcpConfig,
) -> FunctionPool {
    let mut shed = 0u64;
    let mut shed_peer = None;
    let entries = metas
        .iter()
        .filter_map(|m| {
            let comp = reg.get(m.component);
            if !state.is_alive(comp.peer) {
                return None;
            }
            let trust = trust.map(|t| t.aggregate_trust(comp.peer)).unwrap_or(0.5);
            if trust < cfg.min_trust {
                return None; // distrusted hosts are not even probed
            }
            if cfg.shed_utilization < 1.0 && state.cpu_utilization(comp.peer) >= cfg.shed_utilization
            {
                shed += 1;
                shed_peer.get_or_insert(comp.peer);
                return None; // ψ-saturated hosts are shed, not probed
            }
            let static_score = cfg.w_failure * comp.failure_prob + cfg.w_trust * (1.0 - trust);
            Some(PoolEntry { cid: m.component, peer: comp.peer, static_score })
        })
        .collect();
    FunctionPool { raw_len: metas.len(), entries, shed, shed_peer }
}

impl BcpEngine<'_> {
    /// Runs the full BCP protocol for `req`. Returns
    /// [`Error::NoQualifiedComposition`] when no candidate satisfies the
    /// requirements within the probing budget.
    pub fn compose(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
    ) -> Result<CompositionOutcome> {
        req.validate()?;
        if cfg.budget == 0 {
            return Err(Error::InvalidConfig("probing budget must be ≥ 1".into()));
        }
        let mut stats = BcpStats::default();
        let mut tokens: Vec<SoftToken> = Vec::new();

        // --- Discovery phase: resolve replica lists into pools ---------
        // Each distinct function costs one DHT lookup plus one pool
        // prefilter pass (liveness, trust admission, ψ shedding — none of
        // which change mid-compose, so the per-hop ranking loop recomputes
        // only distance and load). With a cache attached, both are
        // memoized across composes; hits replay the recorded DHT cost so
        // the per-request stats cannot tell the modes apart.
        let mut pools: FxHashMap<FunctionId, Arc<FunctionPool>> = FxHashMap::default();
        let mut discovery_ms: f64 = 0.0;
        for &f in req.function_graph.functions() {
            if pools.contains_key(&f) {
                continue;
            }
            // A full hit needs the pool AND this source's recorded lookup
            // cost: pools are source-agnostic, but the DHT route (hops,
            // round trip) depends on who is asking, so another peer's cost
            // must not be replayed into this request's discovery latency.
            let mut cached: Option<Arc<FunctionPool>> = None;
            if let Some(cache) = self.cache.as_deref_mut() {
                if let Some(cost) = cache.lookups.get(&(req.source, f)) {
                    let pool = cache
                        .pools
                        .get(&f)
                        .expect("a recorded lookup implies a memoized pool");
                    cache.hits += 1;
                    stats.dht_lookups += 1;
                    stats.dht_messages += cost.messages;
                    self.obs.metrics.add(self.obs.counters.dht_messages, cost.messages);
                    discovery_ms = discovery_ms.max(cost.rtt_ms);
                    cached = Some(Arc::clone(pool));
                } else {
                    cache.misses += 1;
                }
            }
            let pool = match cached {
                Some(pool) => pool,
                None => {
                    let reg = self.reg;
                    let name = reg.catalog().name(f);
                    let mut transport =
                        |a: PeerId, b: PeerId| self.paths.delay(self.overlay, a, b);
                    let (metas, route) = self
                        .directory
                        .lookup(self.pastry, req.source, name, &mut transport, &mut self.obs.trace)
                        .ok_or_else(|| Error::Network("source is not a DHT member".into()))?;
                    let messages = route.hops() as u64 + 1; // query hops + reply
                    stats.dht_lookups += 1;
                    stats.dht_messages += messages;
                    self.obs.metrics.add(self.obs.counters.dht_messages, messages);
                    // Lookups run in parallel; the phase lasts as long as
                    // the slowest round trip.
                    let rtt = 2.0 * route.latency_ms;
                    discovery_ms = discovery_ms.max(rtt);
                    if metas.is_empty() {
                        return Err(Error::UnknownFunction(name.to_owned()));
                    }
                    let pool = match self.cache.as_deref_mut() {
                        Some(cache) => {
                            cache.lookups.insert(
                                (req.source, f),
                                CachedLookup { messages, rtt_ms: rtt },
                            );
                            // A second source missing on its lookup cost
                            // still reuses the function's memoized pool —
                            // `build_pool` is the O(replicas) part.
                            match cache.pools.get(&f) {
                                Some(pool) => Arc::clone(pool),
                                None => {
                                    let pool = Arc::new(build_pool(
                                        self.reg, self.state, self.trust, &metas, cfg,
                                    ));
                                    cache.pools.insert(f, Arc::clone(&pool));
                                    pool
                                }
                            }
                        }
                        None => {
                            Arc::new(build_pool(self.reg, self.state, self.trust, &metas, cfg))
                        }
                    };
                    pool
                }
            };
            if pool.shed > 0 {
                stats.shed_candidates += pool.shed;
                let c = self.obs.metrics.counter(counter::LOAD_SHED);
                self.obs.metrics.add(c, pool.shed);
            }
            if pool.entries.is_empty() && pool.shed > 0 {
                // Every surviving replica of this function sits at or
                // above ψ: reject up front rather than probing doomed
                // candidates.
                let peer = pool.shed_peer.expect("shed pool has a shed peer");
                return Err(Error::AdmissionRejected { peer: peer.raw() });
            }
            pools.insert(f, pool);
        }
        stats.discovery_ms = discovery_ms;

        // --- Probing phase ---------------------------------------------
        let patterns = req.function_graph.patterns();
        let per_pattern_budget = (cfg.budget / patterns.len() as u32).max(1);
        let mut candidates: Vec<(ServiceGraph, GraphEval)> = Vec::new();
        // One scratch bundle for the whole compose (reused across composes
        // when the caller supplies one): the merged-candidate loop is the
        // hot spot, and per-candidate map/Vec churn there costs more than
        // the evaluation arithmetic itself.
        let mut fallback = ComposeScratch::default();
        let mut arena_opt = self.scratch.take();
        let arena: &mut ComposeScratch = match arena_opt.as_deref_mut() {
            Some(a) => a,
            None => &mut fallback,
        };

        for pattern in &patterns {
            let branch_paths = pattern.branch_paths();
            let per_branch_budget = (per_pattern_budget / branch_paths.len() as u32).max(1);
            let mut per_branch: Vec<Vec<Vec<(usize, ComponentId)>>> = Vec::new();
            let mut probing_ms: f64 = 0.0;
            // Soft reservations are per *expected session*, not per probe:
            // a peer recognizes repeat probes of the same request for the
            // same component and shares the reservation (paper §4.2 step
            // 2.1 reserves for "the expected application session").
            let mut reserved: FxHashSet<ComponentId> = FxHashSet::default();
            for branch in &branch_paths {
                let probes = self.probe_branch(
                    req,
                    cfg,
                    pattern,
                    branch,
                    per_branch_budget,
                    &pools,
                    &mut stats,
                    &mut tokens,
                    &mut reserved,
                    &mut *arena,
                );
                for p in &probes {
                    probing_ms = probing_ms.max(p.latency_ms);
                }
                per_branch.push(probes.into_iter().map(|p| p.assign).collect());
            }
            stats.probing_ms = stats.probing_ms.max(probing_ms);

            // Destination-side merge into complete service graphs.
            let merged = merge_branches(pattern, &branch_paths, &per_branch, cfg.merge_cap);
            stats.candidates_examined += merged.len() as u64;

            // Release this request's own reservations before evaluating so
            // availability reflects *other* traffic only (sequential
            // processing makes release-then-commit atomic; the reservations
            // already did their job gating admission during probing).
            for t in tokens.drain(..) {
                self.state.release_soft(t, &mut self.obs.trace);
            }

            arena.eval.set_pattern(pattern);
            for assignment in merged {
                let eval = evaluate_with(
                    req.source,
                    req.dest,
                    &assignment,
                    req,
                    self.reg,
                    self.overlay,
                    self.state,
                    self.paths,
                    self.weights,
                    &mut arena.eval,
                );
                if is_qualified(&eval, req) {
                    let graph =
                        ServiceGraph::new(req.source, req.dest, pattern.clone(), assignment);
                    candidates.push((graph, eval));
                }
            }
        }

        // Any tokens from the last pattern iteration were drained above;
        // drain again defensively in case of early exits.
        for t in tokens.drain(..) {
            self.state.release_soft(t, &mut self.obs.trace);
        }
        self.scratch = arena_opt;

        let selected = match cfg.selection_policy {
            SelectionPolicy::Paper => select_best(candidates),
            SelectionPolicy::Greedy => {
                select_best_by(candidates, |_, e| e.qos[dim::DELAY_MS])
            }
            SelectionPolicy::Random => {
                // Content-hashed score: deterministic for a given request
                // and candidate set, uncorrelated with any quality signal.
                let seed = spidernet_util::rng::splitmix64(
                    req.source.raw() ^ req.dest.raw().rotate_left(32),
                );
                select_best_by(candidates, move |g, _| {
                    let mut h = seed;
                    for &c in &g.assignment {
                        h = spidernet_util::rng::splitmix64(h ^ c.raw());
                    }
                    (h >> 11) as f64 / (1u64 << 53) as f64
                })
            }
            SelectionPolicy::Marketplace => {
                // Each hosting peer bids latency × residual capacity ×
                // delivery reputation; a graph is priced by its *worst*
                // seller (one congested or lying host sinks the whole
                // composition). Negated so lower score = higher bid.
                let fallback = Marketplace::default();
                let market = self.trust.map(|t| t.market()).unwrap_or(&fallback);
                let state = &mut *self.state;
                let reg = self.reg;
                select_best_by(candidates, move |g, e| {
                    let delay = e.qos[dim::DELAY_MS];
                    let mut bid = f64::INFINITY;
                    for &c in &g.assignment {
                        let peer = reg.get(c).peer;
                        let headroom = state.peer_headroom(peer);
                        bid = bid.min(market.bid(peer, delay, headroom));
                    }
                    if !bid.is_finite() {
                        bid = 0.0;
                    }
                    -bid
                })
            }
        };
        match selected {
            Some((best, eval, pool)) => Ok(CompositionOutcome {
                best,
                eval,
                qualified_pool: pool,
                stats,
            }),
            None => Err(Error::NoQualifiedComposition),
        }
    }

    /// Probes one branch path of one pattern; returns complete branch
    /// probes. The walk is depth-first with in-place push/undo state:
    /// leaves the engine (resource state aside — soft reservations are the
    /// protocol's job) exactly as it found it.
    #[allow(clippy::too_many_arguments)]
    fn probe_branch(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
        pattern: &crate::model::function_graph::FunctionGraph,
        branch: &[usize],
        budget: u32,
        pools: &FxHashMap<FunctionId, Arc<FunctionPool>>,
        stats: &mut BcpStats,
        tokens: &mut Vec<SoftToken>,
        reserved: &mut FxHashSet<ComponentId>,
        arena: &mut ComposeScratch,
    ) -> Vec<BranchProbe> {
        let mut depth = std::mem::take(&mut arena.depth);
        while depth.len() < branch.len() {
            depth.push(Vec::new());
        }
        let mut st = ProbeState {
            assign: std::mem::take(&mut arena.assign),
            qos: QosVector::zeros(req.qos_req.dims()),
            qos_undo: std::mem::take(&mut arena.qos_undo),
            scratch: depth,
            complete: Vec::new(),
        };
        st.assign.clear();
        st.qos_undo.clear();
        self.probe_step(
            req, cfg, pattern, branch, pools, stats, tokens, reserved, &mut st, req.source, 0,
            budget, 0.0,
        );
        debug_assert!(
            st.assign.is_empty() && st.qos_undo.is_empty(),
            "probe push/undo imbalance"
        );
        debug_assert!(
            st.qos.values().iter().all(|&v| v == 0.0),
            "probe QoS accumulator not restored"
        );
        let ProbeState { assign, qos_undo, scratch, complete, .. } = st;
        arena.assign = assign;
        arena.qos_undo = qos_undo;
        arena.depth = scratch;
        complete
    }

    /// One hop of the depth-first branch walk: at `at_peer` having assigned
    /// `branch[..pos]`, spend `budget` probes on the next function.
    #[allow(clippy::too_many_arguments)]
    fn probe_step(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
        pattern: &crate::model::function_graph::FunctionGraph,
        branch: &[usize],
        pools: &FxHashMap<FunctionId, Arc<FunctionPool>>,
        stats: &mut BcpStats,
        tokens: &mut Vec<SoftToken>,
        reserved: &mut FxHashSet<ComponentId>,
        st: &mut ProbeState,
        at_peer: PeerId,
        pos: usize,
        budget: u32,
        latency_ms: f64,
    ) {
        if pos == branch.len() {
            // Final leg to the destination.
            let tail = self.paths.delay(self.overlay, at_peer, req.dest);
            stats.probes_sent += 1;
            self.obs.metrics.incr(self.obs.counters.probes);
            self.obs.trace.record(TraceEvent::ProbeSpawned {
                session: self.session,
                depth: pos as u16,
                budget,
            });
            let saved = st.qos.values()[dim::DELAY_MS];
            st.qos.values_mut()[dim::DELAY_MS] += tail;
            if req.qos_req.is_satisfied_by(&st.qos) {
                stats.complete_probes += 1;
                st.complete.push(BranchProbe {
                    assign: st.assign.clone(),
                    latency_ms: latency_ms + tail,
                });
            } else {
                stats.dropped_qos += 1;
                self.obs.trace.record(TraceEvent::ProbeDropped {
                    session: self.session,
                    reason: DropReason::Qos,
                });
            }
            st.qos.values_mut()[dim::DELAY_MS] = saved;
            return;
        }

        let node = branch[pos];
        let function = pattern.function(node);
        let Some(pool) = pools.get(&function) else { return };

        // Per-hop DHT lookup mode: pay the lookup from the current peer.
        let mut lookup_latency = 0.0;
        if cfg.lookup == LookupMode::PerHop && pos > 0 {
            let reg = self.reg;
            let name = reg.catalog().name(function);
            let mut transport = |a: PeerId, b: PeerId| self.paths.delay(self.overlay, a, b);
            if let Some((_, route)) =
                self.directory.lookup(self.pastry, at_peer, name, &mut transport, &mut self.obs.trace)
            {
                stats.dht_lookups += 1;
                stats.dht_messages += route.hops() as u64 + 1;
                self.obs.metrics.add(self.obs.counters.dht_messages, route.hops() as u64 + 1);
                lookup_latency = 2.0 * route.latency_ms;
            }
        }

        // Rank the prefiltered pool by the composite next-hop metric —
        // liveness and trust were settled once per composition, so only
        // distance and load are recomputed here, into a per-depth scratch
        // buffer reused across sibling subtrees.
        let mut scored = std::mem::take(&mut st.scratch[pos]);
        scored.clear();
        let mut max_delay: f64 = 0.0;
        for e in &pool.entries {
            let d = self.paths.delay(self.overlay, at_peer, e.peer);
            if !d.is_finite() {
                continue;
            }
            max_delay = max_delay.max(d);
            scored.push((d, e.static_score, e.cid, e.peer));
        }
        for s in scored.iter_mut() {
            let cap = self.state.capacity(s.3);
            let avail = self.state.available(s.3);
            let load = if cap.cpu() > 0.0 { 1.0 - avail.cpu() / cap.cpu() } else { 1.0 };
            let norm_delay = if max_delay > 0.0 { s.0 / max_delay } else { 0.0 };
            s.1 += cfg.w_delay * norm_delay + cfg.w_load * load;
        }
        // Only the top I_k = min(β_k, α_k) candidates spawn probes, so a
        // full sort is wasted work when I_k ≪ Z: partition the top I_k
        // with select_nth, then sort just that prefix. The comparator is
        // a strict total order (`total_cmp` ranks a NaN score worst
        // instead of panicking; ties break on the unique component id),
        // so the selected set and its order are identical to a full
        // sort's.
        let cmp = |a: &(f64, f64, ComponentId, PeerId), b: &(f64, f64, ComponentId, PeerId)| {
            a.1.total_cmp(&b.1).then_with(|| a.2.cmp(&b.2))
        };
        let alpha = cfg.quota.quota(pool.raw_len);
        let i_k = (budget.min(alpha) as usize).min(scored.len());
        if i_k > 0 {
            if i_k < scored.len() {
                scored.select_nth_unstable_by(i_k - 1, cmp);
            }
            scored[..i_k].sort_by(cmp);
            let child_budget = (budget / i_k as u32).max(1);
            for &(link_delay, _, cid, peer) in scored.iter().take(i_k) {
                let comp = self.reg.get(cid);
                stats.probes_sent += 1;
                self.obs.metrics.incr(self.obs.counters.probes);
                self.obs.trace.record(TraceEvent::ProbeSpawned {
                    session: self.session,
                    depth: pos as u16,
                    budget: child_budget,
                });

                // Push this hop's QoS contribution in place, saving the
                // prior values for the undo below.
                let undo_base = st.qos_undo.len();
                st.qos_undo.extend_from_slice(st.qos.values());
                st.qos.values_mut()[dim::DELAY_MS] += link_delay;
                st.qos.accumulate(&comp.perf_qos);

                // QoS check and soft resource allocation (step 2.1) —
                // reservations are once per component per request; repeat
                // probes share them.
                let admitted = if !req.qos_req.is_satisfied_by(&st.qos) {
                    stats.dropped_qos += 1;
                    self.obs.trace.record(TraceEvent::ProbeDropped {
                        session: self.session,
                        reason: DropReason::Qos,
                    });
                    false
                } else if cfg.soft_allocation && !reserved.contains(&cid) {
                    match self.state.soft_allocate(
                        peer,
                        comp.resources,
                        self.now + cfg.soft_ttl,
                        &mut self.obs.trace,
                    ) {
                        Ok(tok) => {
                            tokens.push(tok);
                            reserved.insert(cid);
                            true
                        }
                        Err(_) => {
                            stats.dropped_admission += 1;
                            self.obs.trace.record(TraceEvent::ProbeDropped {
                                session: self.session,
                                reason: DropReason::Admission,
                            });
                            false
                        }
                    }
                } else {
                    true
                };

                if admitted {
                    st.assign.push((node, cid));
                    self.probe_step(
                        req,
                        cfg,
                        pattern,
                        branch,
                        pools,
                        stats,
                        tokens,
                        reserved,
                        st,
                        peer,
                        pos + 1,
                        child_budget,
                        latency_ms + lookup_latency + link_delay + cfg.hop_processing_ms,
                    );
                    st.assign.pop();
                }

                // Undo: restore the saved QoS values.
                let undo_len = st.qos_undo.len();
                st.qos.values_mut().copy_from_slice(&st.qos_undo[undo_base..undo_len]);
                st.qos_undo.truncate(undo_base);
            }
        }
        st.scratch[pos] = scored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::{FunctionCatalog, ServiceComponent};
    use crate::model::function_graph::FunctionGraph;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{Overlay, OverlayConfig, OverlayStyle};
    use spidernet_util::qos::QosRequirement;
    use spidernet_util::res::ResourceVector;

    /// A self-contained world: 40 peers, `funcs` functions with `reps`
    /// replicas each on distinct peers.
    struct World {
        overlay: Overlay,
        reg: Registry,
        pastry: PastryNetwork,
        directory: ServiceDirectory,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
        obs: Instruments,
    }

    fn world(funcs: u64, reps: u64) -> World {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 12);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 5 } },
            12,
        );
        let mut catalog = FunctionCatalog::new();
        for f in 0..funcs {
            catalog.intern(&format!("fn-{f}"));
        }
        let mut reg = Registry::new(catalog);
        let peers: Vec<PeerId> = overlay.peers().collect();
        let mut pt = PathTable::new();
        let mut prox = |a: PeerId, b: PeerId| pt.delay(&overlay, a, b);
        let pastry = PastryNetwork::build(&peers, &mut prox);
        let mut directory = ServiceDirectory::new();
        let mut paths = PathTable::new();
        // Replica r of function f on peer 2 + f*reps + r.
        for f in 0..funcs {
            for r in 0..reps {
                let peer = PeerId::new(2 + f * reps + r);
                let cid = reg.add(ServiceComponent {
                    id: ComponentId::new(0),
                    peer,
                    function: FunctionId::new(f),
                    perf_qos: QosVector::from_values(vec![10.0 + r as f64, 0.01]),
                    resources: ResourceVector::new(0.2, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01,
                });
                let mut transport = |a: PeerId, b: PeerId| paths.delay(&overlay, a, b);
                directory
                    .register(
                        &pastry,
                        &format!("fn-{f}"),
                        spidernet_dht::ServiceMeta { component: cid, peer, function: FunctionId::new(f) },
                        &mut transport,
                        &mut spidernet_sim::trace::TraceBuffer::new(),
                    )
                    .unwrap();
            }
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World {
            overlay,
            reg,
            pastry,
            directory,
            state,
            paths,
            weights: CostWeights::uniform(),
            obs: Instruments::new(),
        }
    }

    fn engine<'a>(w: &'a mut World) -> BcpEngine<'a> {
        BcpEngine {
            overlay: &w.overlay,
            reg: &w.reg,
            pastry: &w.pastry,
            directory: &w.directory,
            state: &mut w.state,
            paths: &mut w.paths,
            weights: &w.weights,
            obs: &mut w.obs,
            session: 0,
            now: SimTime::ZERO,
            trust: None,
            cache: None,
            scratch: None,
        }
    }

    fn request(k: usize) -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(k),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        }
    }

    #[test]
    fn composes_a_linear_chain() {
        let mut w = world(3, 3);
        let req = request(3);
        let out = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert_eq!(out.best.assignment.len(), 3);
        // Each assigned component provides the right function.
        for (i, &c) in out.best.assignment.iter().enumerate() {
            assert_eq!(w.reg.get(c).function, out.best.pattern.function(i));
            assert_eq!(out.best.pattern.function(i), FunctionId::new(i as u64));
        }
        assert!(out.stats.complete_probes >= 1);
        assert!(out.stats.discovery_ms > 0.0);
        assert!(out.stats.probing_ms > 0.0);
    }

    #[test]
    fn probe_count_respects_budget() {
        let mut w = world(3, 4);
        let req = request(3);
        for budget in [1u32, 2, 4, 8] {
            let cfg = BcpConfig {
                budget,
                quota: QuotaPolicy::Uniform(16),
                ..BcpConfig::default()
            };
            let out = engine(&mut w).compose(&req, &cfg).unwrap();
            // Complete end-to-end probes never exceed β.
            assert!(
                out.stats.complete_probes <= budget as u64,
                "budget {budget}: {} complete probes",
                out.stats.complete_probes
            );
        }
    }

    #[test]
    fn larger_budget_examines_no_fewer_candidates() {
        let mut w = world(2, 5);
        let req = request(2);
        let small = engine(&mut w)
            .compose(&req, &BcpConfig { budget: 1, ..BcpConfig::default() })
            .unwrap();
        let big = engine(&mut w)
            .compose(
                &req,
                &BcpConfig { budget: 32, quota: QuotaPolicy::Uniform(8), ..BcpConfig::default() },
            )
            .unwrap();
        assert!(big.stats.candidates_examined >= small.stats.candidates_examined);
        assert!(big.stats.probes_sent > small.stats.probes_sent);
    }

    #[test]
    fn no_replicas_is_unknown_function() {
        let mut w = world(2, 2);
        let mut req = request(2);
        // Reference a function that exists in the catalog but has no
        // registrations.
        w.reg.catalog_mut().intern("fn-ghost");
        let ghost = w.reg.catalog().lookup("fn-ghost").unwrap();
        req.function_graph = FunctionGraph::linear_of(&[FunctionId::new(0), ghost]);
        let err = engine(&mut w).compose(&req, &BcpConfig::default());
        assert!(matches!(err, Err(Error::UnknownFunction(_))));
    }

    #[test]
    fn impossible_qos_returns_no_qualified() {
        let mut w = world(2, 2);
        let mut req = request(2);
        req.qos_req = QosRequirement::new(vec![0.001, 10.0]).unwrap();
        let err = engine(&mut w).compose(&req, &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn dead_replicas_are_skipped() {
        let mut w = world(2, 2);
        // Kill one replica of function 0 (peer 2); the other (peer 3)
        // must carry the composition.
        w.state.fail_peer(PeerId::new(2));
        let req = request(2);
        let out = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert!(!out.best.contains_peer(PeerId::new(2), &w.reg));
    }

    #[test]
    fn all_replicas_dead_fails() {
        let mut w = world(2, 2);
        w.state.fail_peer(PeerId::new(2));
        w.state.fail_peer(PeerId::new(3));
        let err = engine(&mut w).compose(&request(2), &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn soft_reservations_are_all_released() {
        let mut w = world(3, 3);
        let req = request(3);
        let _ = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert_eq!(w.state.soft_count(), 0, "leaked soft reservations");
        for p in w.overlay.peers() {
            assert_eq!(w.state.available(p), w.state.capacity(p), "peer {p} not clean");
        }
    }

    #[test]
    fn exhausted_peers_reject_probes_via_admission() {
        let mut w = world(1, 1);
        // The only replica's peer has no headroom.
        let peer = w.reg.get(ComponentId::new(0)).peer;
        w.state.set_capacity(peer, ResourceVector::new(0.05, 1.0));
        let err = engine(&mut w).compose(&request(1), &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn dag_with_commutation_composes() {
        let mut w = world(4, 2);
        let mut req = request(4);
        // Diamond with commutable middle functions.
        req.function_graph = FunctionGraph::new(
            (0..4).map(FunctionId::new).collect(),
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![(1, 2)],
        )
        .unwrap();
        let cfg = BcpConfig { budget: 32, ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        assert_eq!(out.best.assignment.len(), 4);
        // Functions covered regardless of pattern chosen.
        let mut provided: Vec<u64> =
            out.best.assignment.iter().map(|&c| w.reg.get(c).function.raw()).collect();
        provided.sort_unstable();
        assert_eq!(provided, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_hop_lookup_costs_more_dht_messages() {
        let mut w = world(3, 3);
        let req = request(3);
        let pre = engine(&mut w)
            .compose(&req, &BcpConfig { lookup: LookupMode::Prefetch, ..BcpConfig::default() })
            .unwrap();
        let per = engine(&mut w)
            .compose(&req, &BcpConfig { lookup: LookupMode::PerHop, ..BcpConfig::default() })
            .unwrap();
        assert!(per.stats.dht_messages >= pre.stats.dht_messages);
        assert!(per.stats.dht_lookups >= pre.stats.dht_lookups);
    }

    #[test]
    fn zero_budget_is_invalid_config() {
        let mut w = world(1, 1);
        let err = engine(&mut w).compose(&request(1), &BcpConfig { budget: 0, ..BcpConfig::default() });
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn quota_policies_bound_fanout() {
        assert_eq!(QuotaPolicy::Uniform(3).quota(100), 3);
        assert_eq!(QuotaPolicy::Uniform(0).quota(100), 1); // floor at 1
        assert_eq!(QuotaPolicy::ReplicaFraction(0.5).quota(10), 5);
        assert_eq!(QuotaPolicy::ReplicaFraction(0.01).quota(10), 1);
    }

    #[test]
    fn distrusted_replicas_are_deprioritized() {
        use crate::trust::{Experience, TrustManager};
        let mut w = world(1, 2);
        // Two replicas of function 0 on peers 2 and 3; poison peer 2's
        // reputation thoroughly.
        let mut tm = TrustManager::new(1.0);
        for observer in 0..5u64 {
            for _ in 0..50 {
                tm.record(PeerId::new(observer), PeerId::new(2), Experience::Negative);
                tm.record(PeerId::new(observer), PeerId::new(3), Experience::Positive);
            }
        }
        let req = request(1);
        let cfg = BcpConfig { budget: 1, w_trust: 10.0, ..BcpConfig::default() };
        let out = {
            let mut e = engine(&mut w);
            e.trust = Some(&tm);
            e.compose(&req, &cfg).unwrap()
        };
        // With budget 1 only the top-ranked candidate is probed; the
        // heavy trust weight must push the distrusted host out of it.
        assert!(!out.best.contains_peer(PeerId::new(2), &w.reg));
        assert!(out.best.contains_peer(PeerId::new(3), &w.reg));
    }

    #[test]
    fn min_trust_excludes_hosts_outright() {
        use crate::trust::{Experience, TrustManager};
        let mut w = world(1, 2);
        let mut tm = TrustManager::new(1.0);
        for _ in 0..50 {
            tm.record(PeerId::new(0), PeerId::new(2), Experience::Negative);
            tm.record(PeerId::new(0), PeerId::new(3), Experience::Negative);
        }
        let req = request(1);
        let cfg = BcpConfig { min_trust: 0.4, ..BcpConfig::default() };
        let err = {
            let mut e = engine(&mut w);
            e.trust = Some(&tm);
            e.compose(&req, &cfg)
        };
        // Both hosts fall below the threshold: nothing can be composed.
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn disabling_soft_allocation_skips_reservations() {
        let mut w = world(2, 3);
        let req = request(2);
        let cfg = BcpConfig { soft_allocation: false, budget: 16, ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        assert_eq!(out.stats.dropped_admission, 0, "no admission without reservations");
        assert_eq!(w.state.soft_count(), 0);
    }

    #[test]
    fn probe_walk_restores_engine_state_on_every_path() {
        let mut rng = spidernet_util::rng::rng_for(0xBC9, "bcp-pushundo");
        for case in 0u64..16 {
            let funcs = 2 + case % 3;
            let reps = 1 + case % 4;
            let mut w = world(funcs, reps);
            // Exercise the success, QoS-drop, and admission-drop paths.
            let delay_bound = match case % 3 {
                0 => 0.001,                          // impossible: every probe drops
                1 => rng.gen_range(20.0..200.0),     // tight: mixed outcomes
                _ => 100_000.0,                      // loose: mostly complete
            };
            if case % 4 == 3 {
                // Starve one replica's host so admission fails too.
                let peer = w.reg.get(ComponentId::new(0)).peer;
                w.state.set_capacity(peer, ResourceVector::new(0.05, 1.0));
            }
            let req = CompositionRequest {
                qos_req: QosRequirement::new(vec![delay_bound, 10.0]).unwrap(),
                ..request(funcs as usize)
            };
            let cfg = BcpConfig { budget: 1 + (case as u32 % 8), ..BcpConfig::default() };
            // The world registers replica r of function f as component
            // f·reps + r, so replica lists are reconstructible without the
            // DHT round trip.
            let lists: FxHashMap<FunctionId, Vec<ComponentId>> = (0..funcs)
                .map(|f| {
                    let cids = (0..reps).map(|r| ComponentId::new(f * reps + r)).collect();
                    (FunctionId::new(f), cids)
                })
                .collect();
            let before: Vec<_> = w.overlay.peers().map(|p| w.state.available(p)).collect();

            {
                let mut e = engine(&mut w);
                let pools: FxHashMap<FunctionId, Arc<FunctionPool>> = lists
                    .iter()
                    .map(|(&f, list)| {
                        let entries = list
                            .iter()
                            .filter_map(|&cid| {
                                let comp = e.reg.get(cid);
                                if !e.state.is_alive(comp.peer) {
                                    return None;
                                }
                                let static_score = cfg.w_failure * comp.failure_prob;
                                Some(PoolEntry { cid, peer: comp.peer, static_score })
                            })
                            .collect();
                        let pool =
                            FunctionPool { raw_len: list.len(), entries, shed: 0, shed_peer: None };
                        (f, Arc::new(pool))
                    })
                    .collect();
                let pattern = req.function_graph.patterns().remove(0);
                let branch = pattern.branch_paths().remove(0);
                let mut stats = BcpStats::default();
                let mut tokens = Vec::new();
                let mut reserved = FxHashSet::default();
                let mut arena = ComposeScratch::default();
                // probe_branch's debug_asserts check ProbeState restoration
                // (assignment stack, undo stack, QoS accumulator) on every
                // exit path, including QoS and admission drops.
                let _ = e.probe_branch(
                    &req, &cfg, &pattern, &branch, cfg.budget, &pools, &mut stats, &mut tokens,
                    &mut reserved, &mut arena,
                );
                // Releasing the walk's reservations must restore resource
                // state exactly.
                for t in tokens.drain(..) {
                    e.state.release_soft(t, &mut e.obs.trace);
                }
            }

            assert_eq!(w.state.soft_count(), 0, "case {case}: leaked reservations");
            for (p, avail) in w.overlay.peers().zip(before) {
                assert_eq!(w.state.available(p), avail, "case {case}: peer {p} state changed");
            }
        }
    }

    #[test]
    fn qualified_pool_members_are_distinct_and_qualified() {
        let mut w = world(2, 4);
        let req = request(2);
        let cfg = BcpConfig { budget: 64, quota: QuotaPolicy::Uniform(8), ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        for (g, e) in &out.qualified_pool {
            assert!(is_qualified(e, &req));
            assert_ne!(g.assignment, out.best.assignment);
        }
        // Pool is cost-ordered.
        for pair in out.qualified_pool.windows(2) {
            assert!(pair[0].1.cost <= pair[1].1.cost);
        }
        // Best beats the pool.
        if let Some((_, e)) = out.qualified_pool.first() {
            assert!(out.eval.cost <= e.cost);
        }
    }

    #[test]
    fn too_tight_collect_slack_is_rejected_at_build() {
        let err = BcpConfig::builder().collect_deadline_slack(0.5).try_build();
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
        let err = BcpConfig::builder().collect_deadline_slack(f64::NAN).try_build();
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
        // The floor itself and anything looser is fine.
        assert!(BcpConfig::builder().collect_deadline_slack(1.0).try_build().is_ok());
        let cfg = BcpConfig::builder().collect_deadline_slack(5.0).build();
        assert_eq!(cfg.collect_deadline_slack, 5.0);
        assert_eq!(BcpConfig::default().collect_deadline_slack, 3.0);
    }

    #[test]
    fn shed_threshold_out_of_domain_is_rejected_at_build() {
        assert!(matches!(
            BcpConfig::builder().shed_utilization(0.0).try_build(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            BcpConfig::builder().shed_utilization(1.5).try_build(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(BcpConfig::builder().shed_utilization(0.5).try_build().is_ok());
    }

    /// Loads `peer` to ~`frac` CPU utilization with a long-lived soft
    /// reservation (capacity in these worlds is 1.0 CPU).
    fn load_peer(w: &mut World, peer: PeerId, frac: f64) {
        w.state
            .soft_allocate(
                peer,
                ResourceVector::new(frac, 1.0),
                SimTime::from_secs(1_000_000),
                &mut w.obs.trace,
            )
            .unwrap();
    }

    #[test]
    fn saturated_peers_are_shed_before_probing() {
        // world(1, 2): replicas of the single function live on peers 2, 3.
        let cfg = BcpConfig { shed_utilization: 0.5, ..BcpConfig::default() };
        // One saturated host: composition avoids it without spending
        // probes on it.
        let mut w = world(1, 2);
        load_peer(&mut w, PeerId::new(2), 0.6);
        let out = engine(&mut w).compose(&request(1), &cfg).unwrap();
        assert!(!out.best.contains_peer(PeerId::new(2), &w.reg));
        assert_eq!(out.stats.shed_candidates, 1);
        assert_eq!(w.obs.metrics.value(counter::LOAD_SHED), 1);

        // Every host saturated: rejected up front, zero probes sent.
        let mut w = world(1, 2);
        load_peer(&mut w, PeerId::new(2), 0.6);
        load_peer(&mut w, PeerId::new(3), 0.6);
        let err = engine(&mut w).compose(&request(1), &cfg);
        assert!(matches!(err, Err(Error::AdmissionRejected { .. })));
        assert_eq!(w.obs.metrics.value(spidernet_sim::metrics::counter::PROBES), 0);

        // Shedding disabled (the default): the loaded hosts are still
        // probed and the request composes.
        let mut w = world(1, 2);
        load_peer(&mut w, PeerId::new(2), 0.6);
        load_peer(&mut w, PeerId::new(3), 0.6);
        let out = engine(&mut w).compose(&request(1), &BcpConfig::default()).unwrap();
        assert_eq!(out.stats.shed_candidates, 0);
    }

    fn stats_key(s: &BcpStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            s.probes_sent,
            s.dht_lookups,
            s.dht_messages,
            s.complete_probes,
            s.dropped_qos,
            s.dropped_admission,
            s.shed_candidates,
            s.candidates_examined,
            s.discovery_ms.to_bits(),
            s.probing_ms.to_bits(),
        )
    }

    #[test]
    fn compose_cache_hits_replay_identical_stats() {
        let cfg = BcpConfig::default();
        let req = request(3);

        // Uncached reference run.
        let mut w = world(3, 3);
        let reference = engine(&mut w).compose(&req, &cfg).unwrap();

        // Same world, cache attached: a cold run populates the memo, a
        // warm run serves every function from it. All three must produce
        // identical outcomes and per-request accounting.
        let mut w = world(3, 3);
        let mut cache = ComposeCache::new();
        cache.ensure_current(0, 0, &cfg);
        let cold = {
            let mut e = engine(&mut w);
            e.cache = Some(&mut cache);
            e.compose(&req, &cfg).unwrap()
        };
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
        let warm = {
            let mut e = engine(&mut w);
            e.cache = Some(&mut cache);
            e.compose(&req, &cfg).unwrap()
        };
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 3);

        assert_eq!(stats_key(&reference.stats), stats_key(&cold.stats));
        assert_eq!(stats_key(&reference.stats), stats_key(&warm.stats));
        assert_eq!(reference.best.assignment, cold.best.assignment);
        assert_eq!(reference.best.assignment, warm.best.assignment);
        assert_eq!(reference.eval.cost.to_bits(), warm.eval.cost.to_bits());
    }

    #[test]
    fn compose_cache_flushes_on_epoch_or_config_drift() {
        let cfg = BcpConfig::default();
        let req = request(2);
        let mut w = world(2, 2);
        let mut cache = ComposeCache::new();
        cache.ensure_current(0, 0, &cfg);
        {
            let mut e = engine(&mut w);
            e.cache = Some(&mut cache);
            e.compose(&req, &cfg).unwrap();
        }
        assert_eq!(cache.len(), 2);

        // Same epoch: nothing flushed.
        cache.ensure_current(0, 0, &cfg);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.invalidations(), 0);

        // Trust feedback alone must NOT flush under a config that ignores
        // trust (the default) — session teardowns would otherwise empty
        // the memo constantly.
        cache.ensure_current(0, 7, &cfg);
        assert_eq!(cache.len(), 2);

        // World epoch moved (churn / registration / watermark crossing).
        cache.ensure_current(1, 7, &cfg);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations(), 1);

        // Repopulate, then drift the config fingerprint.
        {
            let mut e = engine(&mut w);
            e.cache = Some(&mut cache);
            e.compose(&req, &cfg).unwrap();
        }
        assert_eq!(cache.len(), 2);
        let shed_cfg = BcpConfig { shed_utilization: 0.5, ..BcpConfig::default() };
        cache.ensure_current(1, 7, &shed_cfg);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations(), 2);

        // A trust-admitting config does key on the trust epoch.
        let trust_cfg = BcpConfig { min_trust: 0.1, ..BcpConfig::default() };
        cache.ensure_current(1, 7, &trust_cfg);
        {
            let mut e = engine(&mut w);
            e.cache = Some(&mut cache);
            e.compose(&req, &trust_cfg).unwrap();
        }
        assert_eq!(cache.len(), 2);
        cache.ensure_current(1, 8, &trust_cfg);
        assert_eq!(cache.len(), 0);
    }
}
