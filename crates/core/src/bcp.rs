//! Bounded Composition Probing (paper §4).
//!
//! Given a composite service request, the source spawns *probes* that walk
//! candidate service graphs hop by hop. A probing budget β caps the total
//! number of probes a request may use; per-function probing quotas α_k
//! steer how the budget is divided among next-hop functions. Each hop
//! (§4.2):
//!
//! 1. checks the accumulated QoS against the user's bounds and drops the
//!    probe on violation;
//! 2. *soft-allocates* the component's resources so concurrent probes
//!    cannot jointly over-admit (reservations expire unless confirmed);
//! 3. derives next-hop functions (the composition-pattern successor — the
//!    source pre-enumerates commutation orders into patterns, see
//!    [`crate::model::function_graph::FunctionGraph::patterns`]);
//! 4. selects up to `I_k = min(β_k, α_k)` next-hop replicas by a composite
//!    local metric (network delay, failure probability, load) and spawns
//!    child probes with budget ⌊β_k / I_k⌋.
//!
//! The destination merges branch probes into complete service graphs,
//! filters by the user's requirements, and returns the ψ-optimal qualified
//! graph plus the remaining qualified graphs for backup selection.

use crate::model::component::Registry;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, ServiceGraph};
use crate::paths::PathTable;
use crate::selection::{evaluate, is_qualified, merge_branches, select_best};
use crate::state::{OverlayState, SoftToken};
use crate::trust::TrustManager;
use spidernet_dht::{PastryNetwork, ServiceDirectory};
use spidernet_sim::metrics::{counter, Metrics};
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::{ComponentId, FunctionId, PeerId};
use spidernet_util::qos::{dim, QosVector};
use std::collections::{HashMap, HashSet};

/// How probing quota α_k is assigned per function.
#[derive(Clone, Copy, Debug)]
pub enum QuotaPolicy {
    /// The same quota for every function.
    Uniform(u32),
    /// α_k = ⌈fraction · Z_k⌉ — more replicas, more quota (the paper's
    /// differentiated allocation).
    ReplicaFraction(f64),
}

impl QuotaPolicy {
    fn quota(&self, replicas: usize) -> u32 {
        match *self {
            QuotaPolicy::Uniform(a) => a.max(1),
            QuotaPolicy::ReplicaFraction(f) => ((replicas as f64 * f).ceil() as u32).max(1),
        }
    }
}

/// How probes learn the replica lists of next-hop functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupMode {
    /// The source resolves every function once before probing and attaches
    /// the lists to the probe. Metadata is static, so this is
    /// behaviour-preserving; it matches the prototype's phase split where
    /// "service discovery time" is measured separately from composition
    /// (Fig. 10).
    Prefetch,
    /// Every hop re-queries the DHT, as §4.2 step 2.3 describes literally;
    /// costs extra DHT messages and latency per hop.
    PerHop,
}

/// BCP tuning knobs.
#[derive(Clone, Debug)]
pub struct BcpConfig {
    /// Probing budget β: total probes a request may use.
    pub budget: u32,
    /// Per-function quota policy (α).
    pub quota: QuotaPolicy,
    /// Soft-reservation lifetime (cancelled earlier at selection).
    pub soft_ttl: SimDuration,
    /// Weight of normalized next-hop network delay in the composite
    /// next-hop selection metric.
    pub w_delay: f64,
    /// Weight of the candidate's failure probability.
    pub w_failure: f64,
    /// Weight of the candidate peer's current load.
    pub w_load: f64,
    /// Cap on merged complete graphs per pattern (cartesian guard).
    pub merge_cap: usize,
    /// Replica-list resolution strategy.
    pub lookup: LookupMode,
    /// Fixed per-hop probe processing delay, ms.
    pub hop_processing_ms: f64,
    /// Weight of `(1 − trust)` in the next-hop metric. 0 disables the
    /// trust extension (paper §8 future work) entirely.
    pub w_trust: f64,
    /// Candidates with aggregate trust below this are excluded outright.
    pub min_trust: f64,
    /// Whether probes perform soft resource allocation (§4.2 step 2.1).
    /// Disabling is an ablation: concurrent probes may then jointly
    /// over-admit and the final commit can fail.
    pub soft_allocation: bool,
}

impl Default for BcpConfig {
    fn default() -> Self {
        BcpConfig {
            budget: 16,
            quota: QuotaPolicy::Uniform(4),
            soft_ttl: SimDuration::from_secs(10),
            w_delay: 0.5,
            w_failure: 0.25,
            w_load: 0.25,
            merge_cap: 64,
            lookup: LookupMode::Prefetch,
            hop_processing_ms: 1.0,
            w_trust: 0.0,
            min_trust: 0.0,
            soft_allocation: true,
        }
    }
}

/// Counters and timings of one BCP run.
#[derive(Clone, Debug, Default)]
pub struct BcpStats {
    /// Probe transmissions (per-hop messages).
    pub probes_sent: u64,
    /// DHT lookup queries issued.
    pub dht_lookups: u64,
    /// DHT routing messages (hops) those lookups cost.
    pub dht_messages: u64,
    /// Probes that reached the destination.
    pub complete_probes: u64,
    /// Probes dropped for QoS violation.
    pub dropped_qos: u64,
    /// Probes dropped by soft-allocation admission.
    pub dropped_admission: u64,
    /// Complete candidate service graphs examined at the destination.
    pub candidates_examined: u64,
    /// Wall-clock (virtual) time of the discovery phase, ms.
    pub discovery_ms: f64,
    /// Wall-clock (virtual) time of the probing phase: the latest probe
    /// arrival at the destination, ms.
    pub probing_ms: f64,
}

/// A successful composition.
#[derive(Clone, Debug)]
pub struct CompositionOutcome {
    /// The ψ-optimal qualified service graph.
    pub best: ServiceGraph,
    /// Its evaluation.
    pub eval: GraphEval,
    /// Other qualified graphs, cost-ordered — the pool backup selection
    /// draws from (paper §5). `C` = `1 + qualified_pool.len()`.
    pub qualified_pool: Vec<(ServiceGraph, GraphEval)>,
    /// Protocol accounting.
    pub stats: BcpStats,
}

/// One in-flight probe walking a branch path.
struct PartialProbe {
    at_peer: PeerId,
    pos: usize,
    assign: Vec<(usize, ComponentId)>,
    qos: QosVector,
    budget: u32,
    latency_ms: f64,
}

/// A probe that reached the destination.
struct BranchProbe {
    assign: Vec<(usize, ComponentId)>,
    latency_ms: f64,
}

/// Borrowed world context for one BCP execution.
pub struct BcpEngine<'a> {
    /// The service overlay.
    pub overlay: &'a Overlay,
    /// Component ground truth (accessed via discovery results and
    /// peer-local reads).
    pub reg: &'a Registry,
    /// The Pastry substrate for discovery routing.
    pub pastry: &'a PastryNetwork,
    /// The replica directory.
    pub directory: &'a ServiceDirectory,
    /// Live resource state.
    pub state: &'a mut OverlayState,
    /// Shortest-path cache.
    pub paths: &'a mut PathTable,
    /// ψ weights.
    pub weights: &'a CostWeights,
    /// Protocol-message accounting.
    pub metrics: &'a mut Metrics,
    /// Current virtual time (for soft-reservation expiry).
    pub now: SimTime,
    /// Trust tables, when the trust extension is active.
    pub trust: Option<&'a TrustManager>,
}

impl BcpEngine<'_> {
    /// Runs the full BCP protocol for `req`. Returns
    /// [`Error::NoQualifiedComposition`] when no candidate satisfies the
    /// requirements within the probing budget.
    pub fn compose(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
    ) -> Result<CompositionOutcome> {
        req.validate()?;
        if cfg.budget == 0 {
            return Err(Error::InvalidConfig("probing budget must be ≥ 1".into()));
        }
        let mut stats = BcpStats::default();
        let mut tokens: Vec<SoftToken> = Vec::new();

        // --- Discovery phase: resolve replica lists --------------------
        let mut replica_lists: HashMap<FunctionId, Vec<ComponentId>> = HashMap::new();
        let mut discovery_ms: f64 = 0.0;
        for &f in req.function_graph.functions() {
            if replica_lists.contains_key(&f) {
                continue;
            }
            let name = self.reg.catalog().name(f).to_owned();
            let mut transport = |a: PeerId, b: PeerId| self.paths.delay(self.overlay, a, b);
            let (metas, route) = self
                .directory
                .lookup(self.pastry, req.source, &name, &mut transport)
                .ok_or_else(|| Error::Network("source is not a DHT member".into()))?;
            stats.dht_lookups += 1;
            stats.dht_messages += route.hops() as u64 + 1; // query hops + reply
            self.metrics.add(counter::DHT_MESSAGES, route.hops() as u64 + 1);
            // Lookups run in parallel; the phase lasts as long as the
            // slowest round trip.
            discovery_ms = discovery_ms.max(2.0 * route.latency_ms);
            let list: Vec<ComponentId> = metas.iter().map(|m| m.component).collect();
            if list.is_empty() {
                return Err(Error::UnknownFunction(name));
            }
            replica_lists.insert(f, list);
        }
        stats.discovery_ms = discovery_ms;

        // --- Probing phase ---------------------------------------------
        let patterns = req.function_graph.patterns();
        let per_pattern_budget = (cfg.budget / patterns.len() as u32).max(1);
        let mut candidates: Vec<(ServiceGraph, GraphEval)> = Vec::new();

        for pattern in &patterns {
            let branch_paths = pattern.branch_paths();
            let per_branch_budget = (per_pattern_budget / branch_paths.len() as u32).max(1);
            let mut per_branch: Vec<Vec<Vec<(usize, ComponentId)>>> = Vec::new();
            let mut probing_ms: f64 = 0.0;
            // Soft reservations are per *expected session*, not per probe:
            // a peer recognizes repeat probes of the same request for the
            // same component and shares the reservation (paper §4.2 step
            // 2.1 reserves for "the expected application session").
            let mut reserved: HashSet<ComponentId> = HashSet::new();
            for branch in &branch_paths {
                let probes = self.probe_branch(
                    req,
                    cfg,
                    pattern,
                    branch,
                    per_branch_budget,
                    &replica_lists,
                    &mut stats,
                    &mut tokens,
                    &mut reserved,
                );
                for p in &probes {
                    probing_ms = probing_ms.max(p.latency_ms);
                }
                per_branch.push(probes.into_iter().map(|p| p.assign).collect());
            }
            stats.probing_ms = stats.probing_ms.max(probing_ms);

            // Destination-side merge into complete service graphs.
            let merged = merge_branches(pattern, &branch_paths, &per_branch, cfg.merge_cap);
            stats.candidates_examined += merged.len() as u64;

            // Release this request's own reservations before evaluating so
            // availability reflects *other* traffic only (sequential
            // processing makes release-then-commit atomic; the reservations
            // already did their job gating admission during probing).
            for t in tokens.drain(..) {
                self.state.release_soft(t);
            }

            for assignment in merged {
                let graph =
                    ServiceGraph::new(req.source, req.dest, pattern.clone(), assignment);
                let eval = evaluate(
                    &graph,
                    req,
                    self.reg,
                    self.overlay,
                    self.state,
                    self.paths,
                    self.weights,
                );
                if is_qualified(&eval, req) {
                    candidates.push((graph, eval));
                }
            }
        }

        // Any tokens from the last pattern iteration were drained above;
        // drain again defensively in case of early exits.
        for t in tokens.drain(..) {
            self.state.release_soft(t);
        }

        match select_best(candidates) {
            Some((best, eval, pool)) => Ok(CompositionOutcome {
                best,
                eval,
                qualified_pool: pool,
                stats,
            }),
            None => Err(Error::NoQualifiedComposition),
        }
    }

    /// Probes one branch path of one pattern; returns complete branch
    /// probes.
    #[allow(clippy::too_many_arguments)]
    fn probe_branch(
        &mut self,
        req: &CompositionRequest,
        cfg: &BcpConfig,
        pattern: &crate::model::function_graph::FunctionGraph,
        branch: &[usize],
        budget: u32,
        replica_lists: &HashMap<FunctionId, Vec<ComponentId>>,
        stats: &mut BcpStats,
        tokens: &mut Vec<SoftToken>,
        reserved: &mut HashSet<ComponentId>,
    ) -> Vec<BranchProbe> {
        let m = req.qos_req.dims();
        let mut complete = Vec::new();
        let mut frontier = vec![PartialProbe {
            at_peer: req.source,
            pos: 0,
            assign: Vec::new(),
            qos: QosVector::zeros(m),
            budget,
            latency_ms: 0.0,
        }];

        while let Some(probe) = frontier.pop() {
            if probe.pos == branch.len() {
                // Final leg to the destination.
                let tail = self.paths.delay(self.overlay, probe.at_peer, req.dest);
                let mut leg = vec![0.0; m];
                leg[dim::DELAY_MS] = tail;
                let mut qos = probe.qos.clone();
                qos.accumulate(&QosVector::from_values(leg));
                stats.probes_sent += 1;
                self.metrics.incr(counter::PROBES);
                if !req.qos_req.is_satisfied_by(&qos) {
                    stats.dropped_qos += 1;
                    continue;
                }
                stats.complete_probes += 1;
                complete.push(BranchProbe {
                    assign: probe.assign,
                    latency_ms: probe.latency_ms + tail,
                });
                continue;
            }

            let node = branch[probe.pos];
            let function = pattern.function(node);
            let Some(replicas) = replica_lists.get(&function) else { continue };

            // Per-hop DHT lookup mode: pay the lookup from the current peer.
            let mut lookup_latency = 0.0;
            if cfg.lookup == LookupMode::PerHop && probe.pos > 0 {
                let name = self.reg.catalog().name(function).to_owned();
                let mut transport = |a: PeerId, b: PeerId| self.paths.delay(self.overlay, a, b);
                if let Some((_, route)) =
                    self.directory.lookup(self.pastry, probe.at_peer, &name, &mut transport)
                {
                    stats.dht_lookups += 1;
                    stats.dht_messages += route.hops() as u64 + 1;
                    self.metrics.add(counter::DHT_MESSAGES, route.hops() as u64 + 1);
                    lookup_latency = 2.0 * route.latency_ms;
                }
            }

            // Rank live candidates by the composite next-hop metric.
            let mut scored: Vec<(f64, ComponentId)> = Vec::new();
            let mut max_delay: f64 = 0.0;
            let mut cand_info: Vec<(ComponentId, f64)> = Vec::new();
            for &cid in replicas {
                let comp = self.reg.get(cid);
                if !self.state.is_alive(comp.peer) {
                    continue;
                }
                let d = self.paths.delay(self.overlay, probe.at_peer, comp.peer);
                if !d.is_finite() {
                    continue;
                }
                max_delay = max_delay.max(d);
                cand_info.push((cid, d));
            }
            for (cid, d) in cand_info {
                let comp = self.reg.get(cid);
                let peer_trust = self
                    .trust
                    .map(|t| t.aggregate_trust(comp.peer))
                    .unwrap_or(0.5);
                if peer_trust < cfg.min_trust {
                    continue; // distrusted hosts are not even probed
                }
                let cap = self.state.capacity(comp.peer);
                let avail = self.state.available(comp.peer);
                let load = if cap.cpu() > 0.0 { 1.0 - avail.cpu() / cap.cpu() } else { 1.0 };
                let norm_delay = if max_delay > 0.0 { d / max_delay } else { 0.0 };
                let score = cfg.w_delay * norm_delay
                    + cfg.w_failure * comp.failure_prob
                    + cfg.w_load * load
                    + cfg.w_trust * (1.0 - peer_trust);
                scored.push((score, cid));
            }
            scored.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).expect("scores are finite").then_with(|| a.1.cmp(&b.1))
            });

            let alpha = cfg.quota.quota(replicas.len());
            let i_k = (probe.budget.min(alpha) as usize).min(scored.len());
            if i_k == 0 {
                continue;
            }
            let child_budget = (probe.budget / i_k as u32).max(1);

            for &(_, cid) in scored.iter().take(i_k) {
                let comp = self.reg.get(cid);
                let link_delay = self.paths.delay(self.overlay, probe.at_peer, comp.peer);
                stats.probes_sent += 1;
                self.metrics.incr(counter::PROBES);

                // Accumulate QoS, check, drop early (step 2.1).
                let mut qos = probe.qos.clone();
                let mut leg = vec![0.0; m];
                leg[dim::DELAY_MS] = link_delay;
                qos.accumulate(&QosVector::from_values(leg));
                qos.accumulate(&comp.perf_qos);
                if !req.qos_req.is_satisfied_by(&qos) {
                    stats.dropped_qos += 1;
                    continue;
                }

                // Soft resource allocation — once per component per
                // request; repeat probes share the reservation.
                if cfg.soft_allocation && !reserved.contains(&cid) {
                    match self.state.soft_allocate(comp.peer, comp.resources, self.now + cfg.soft_ttl)
                    {
                        Ok(tok) => {
                            tokens.push(tok);
                            reserved.insert(cid);
                        }
                        Err(_) => {
                            stats.dropped_admission += 1;
                            continue;
                        }
                    }
                }

                let mut assign = probe.assign.clone();
                assign.push((node, cid));
                frontier.push(PartialProbe {
                    at_peer: comp.peer,
                    pos: probe.pos + 1,
                    assign,
                    qos,
                    budget: child_budget,
                    latency_ms: probe.latency_ms
                        + lookup_latency
                        + link_delay
                        + cfg.hop_processing_ms,
                });
            }
        }
        complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::{FunctionCatalog, ServiceComponent};
    use crate::model::function_graph::FunctionGraph;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{Overlay, OverlayConfig, OverlayStyle};
    use spidernet_util::qos::QosRequirement;
    use spidernet_util::res::ResourceVector;

    /// A self-contained world: 40 peers, `funcs` functions with `reps`
    /// replicas each on distinct peers.
    struct World {
        overlay: Overlay,
        reg: Registry,
        pastry: PastryNetwork,
        directory: ServiceDirectory,
        state: OverlayState,
        paths: PathTable,
        weights: CostWeights,
        metrics: Metrics,
    }

    fn world(funcs: u64, reps: u64) -> World {
        let ip = generate_power_law(&InetConfig { nodes: 200, ..InetConfig::default() }, 11);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 40, style: OverlayStyle::Mesh { neighbors: 5 } },
            11,
        );
        let mut catalog = FunctionCatalog::new();
        for f in 0..funcs {
            catalog.intern(&format!("fn-{f}"));
        }
        let mut reg = Registry::new(catalog);
        let peers: Vec<PeerId> = overlay.peers().collect();
        let mut pt = PathTable::new();
        let mut prox = |a: PeerId, b: PeerId| pt.delay(&overlay, a, b);
        let pastry = PastryNetwork::build(&peers, &mut prox);
        let mut directory = ServiceDirectory::new();
        let mut paths = PathTable::new();
        // Replica r of function f on peer 2 + f*reps + r.
        for f in 0..funcs {
            for r in 0..reps {
                let peer = PeerId::new(2 + f * reps + r);
                let cid = reg.add(ServiceComponent {
                    id: ComponentId::new(0),
                    peer,
                    function: FunctionId::new(f),
                    perf_qos: QosVector::from_values(vec![10.0 + r as f64, 0.01]),
                    resources: ResourceVector::new(0.2, 32.0),
                    out_bandwidth_mbps: 1.0,
                    failure_prob: 0.01,
                });
                let mut transport = |a: PeerId, b: PeerId| paths.delay(&overlay, a, b);
                directory
                    .register(
                        &pastry,
                        &format!("fn-{f}"),
                        spidernet_dht::ServiceMeta { component: cid, peer, function: FunctionId::new(f) },
                        &mut transport,
                    )
                    .unwrap();
            }
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World {
            overlay,
            reg,
            pastry,
            directory,
            state,
            paths,
            weights: CostWeights::uniform(),
            metrics: Metrics::new(),
        }
    }

    fn engine<'a>(w: &'a mut World) -> BcpEngine<'a> {
        BcpEngine {
            overlay: &w.overlay,
            reg: &w.reg,
            pastry: &w.pastry,
            directory: &w.directory,
            state: &mut w.state,
            paths: &mut w.paths,
            weights: &w.weights,
            metrics: &mut w.metrics,
            now: SimTime::ZERO,
            trust: None,
        }
    }

    fn request(k: usize) -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(k),
            qos_req: QosRequirement::new(vec![100_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        }
    }

    #[test]
    fn composes_a_linear_chain() {
        let mut w = world(3, 3);
        let req = request(3);
        let out = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert_eq!(out.best.assignment.len(), 3);
        // Each assigned component provides the right function.
        for (i, &c) in out.best.assignment.iter().enumerate() {
            assert_eq!(w.reg.get(c).function, out.best.pattern.function(i));
            assert_eq!(out.best.pattern.function(i), FunctionId::new(i as u64));
        }
        assert!(out.stats.complete_probes >= 1);
        assert!(out.stats.discovery_ms > 0.0);
        assert!(out.stats.probing_ms > 0.0);
    }

    #[test]
    fn probe_count_respects_budget() {
        let mut w = world(3, 4);
        let req = request(3);
        for budget in [1u32, 2, 4, 8] {
            let cfg = BcpConfig {
                budget,
                quota: QuotaPolicy::Uniform(16),
                ..BcpConfig::default()
            };
            let out = engine(&mut w).compose(&req, &cfg).unwrap();
            // Complete end-to-end probes never exceed β.
            assert!(
                out.stats.complete_probes <= budget as u64,
                "budget {budget}: {} complete probes",
                out.stats.complete_probes
            );
        }
    }

    #[test]
    fn larger_budget_examines_no_fewer_candidates() {
        let mut w = world(2, 5);
        let req = request(2);
        let small = engine(&mut w)
            .compose(&req, &BcpConfig { budget: 1, ..BcpConfig::default() })
            .unwrap();
        let big = engine(&mut w)
            .compose(
                &req,
                &BcpConfig { budget: 32, quota: QuotaPolicy::Uniform(8), ..BcpConfig::default() },
            )
            .unwrap();
        assert!(big.stats.candidates_examined >= small.stats.candidates_examined);
        assert!(big.stats.probes_sent > small.stats.probes_sent);
    }

    #[test]
    fn no_replicas_is_unknown_function() {
        let mut w = world(2, 2);
        let mut req = request(2);
        // Reference a function that exists in the catalog but has no
        // registrations.
        w.reg.catalog_mut().intern("fn-ghost");
        let ghost = w.reg.catalog().lookup("fn-ghost").unwrap();
        req.function_graph = FunctionGraph::linear_of(&[FunctionId::new(0), ghost]);
        let err = engine(&mut w).compose(&req, &BcpConfig::default());
        assert!(matches!(err, Err(Error::UnknownFunction(_))));
    }

    #[test]
    fn impossible_qos_returns_no_qualified() {
        let mut w = world(2, 2);
        let mut req = request(2);
        req.qos_req = QosRequirement::new(vec![0.001, 10.0]).unwrap();
        let err = engine(&mut w).compose(&req, &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn dead_replicas_are_skipped() {
        let mut w = world(2, 2);
        // Kill one replica of function 0 (peer 2); the other (peer 3)
        // must carry the composition.
        w.state.fail_peer(PeerId::new(2));
        let req = request(2);
        let out = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert!(!out.best.contains_peer(PeerId::new(2), &w.reg));
    }

    #[test]
    fn all_replicas_dead_fails() {
        let mut w = world(2, 2);
        w.state.fail_peer(PeerId::new(2));
        w.state.fail_peer(PeerId::new(3));
        let err = engine(&mut w).compose(&request(2), &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn soft_reservations_are_all_released() {
        let mut w = world(3, 3);
        let req = request(3);
        let _ = engine(&mut w).compose(&req, &BcpConfig::default()).unwrap();
        assert_eq!(w.state.soft_count(), 0, "leaked soft reservations");
        for p in w.overlay.peers() {
            assert_eq!(w.state.available(p), w.state.capacity(p), "peer {p} not clean");
        }
    }

    #[test]
    fn exhausted_peers_reject_probes_via_admission() {
        let mut w = world(1, 1);
        // The only replica's peer has no headroom.
        let peer = w.reg.get(ComponentId::new(0)).peer;
        w.state.set_capacity(peer, ResourceVector::new(0.05, 1.0));
        let err = engine(&mut w).compose(&request(1), &BcpConfig::default());
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn dag_with_commutation_composes() {
        let mut w = world(4, 2);
        let mut req = request(4);
        // Diamond with commutable middle functions.
        req.function_graph = FunctionGraph::new(
            (0..4).map(FunctionId::new).collect(),
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![(1, 2)],
        )
        .unwrap();
        let cfg = BcpConfig { budget: 32, ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        assert_eq!(out.best.assignment.len(), 4);
        // Functions covered regardless of pattern chosen.
        let mut provided: Vec<u64> =
            out.best.assignment.iter().map(|&c| w.reg.get(c).function.raw()).collect();
        provided.sort_unstable();
        assert_eq!(provided, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_hop_lookup_costs_more_dht_messages() {
        let mut w = world(3, 3);
        let req = request(3);
        let pre = engine(&mut w)
            .compose(&req, &BcpConfig { lookup: LookupMode::Prefetch, ..BcpConfig::default() })
            .unwrap();
        let per = engine(&mut w)
            .compose(&req, &BcpConfig { lookup: LookupMode::PerHop, ..BcpConfig::default() })
            .unwrap();
        assert!(per.stats.dht_messages >= pre.stats.dht_messages);
        assert!(per.stats.dht_lookups >= pre.stats.dht_lookups);
    }

    #[test]
    fn zero_budget_is_invalid_config() {
        let mut w = world(1, 1);
        let err = engine(&mut w).compose(&request(1), &BcpConfig { budget: 0, ..BcpConfig::default() });
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn quota_policies_bound_fanout() {
        assert_eq!(QuotaPolicy::Uniform(3).quota(100), 3);
        assert_eq!(QuotaPolicy::Uniform(0).quota(100), 1); // floor at 1
        assert_eq!(QuotaPolicy::ReplicaFraction(0.5).quota(10), 5);
        assert_eq!(QuotaPolicy::ReplicaFraction(0.01).quota(10), 1);
    }

    #[test]
    fn distrusted_replicas_are_deprioritized() {
        use crate::trust::{Experience, TrustManager};
        let mut w = world(1, 2);
        // Two replicas of function 0 on peers 2 and 3; poison peer 2's
        // reputation thoroughly.
        let mut tm = TrustManager::new(1.0);
        for observer in 0..5u64 {
            for _ in 0..50 {
                tm.record(PeerId::new(observer), PeerId::new(2), Experience::Negative);
                tm.record(PeerId::new(observer), PeerId::new(3), Experience::Positive);
            }
        }
        let req = request(1);
        let cfg = BcpConfig { budget: 1, w_trust: 10.0, ..BcpConfig::default() };
        let out = {
            let mut e = engine(&mut w);
            e.trust = Some(&tm);
            e.compose(&req, &cfg).unwrap()
        };
        // With budget 1 only the top-ranked candidate is probed; the
        // heavy trust weight must push the distrusted host out of it.
        assert!(!out.best.contains_peer(PeerId::new(2), &w.reg));
        assert!(out.best.contains_peer(PeerId::new(3), &w.reg));
    }

    #[test]
    fn min_trust_excludes_hosts_outright() {
        use crate::trust::{Experience, TrustManager};
        let mut w = world(1, 2);
        let mut tm = TrustManager::new(1.0);
        for _ in 0..50 {
            tm.record(PeerId::new(0), PeerId::new(2), Experience::Negative);
            tm.record(PeerId::new(0), PeerId::new(3), Experience::Negative);
        }
        let req = request(1);
        let cfg = BcpConfig { min_trust: 0.4, ..BcpConfig::default() };
        let err = {
            let mut e = engine(&mut w);
            e.trust = Some(&tm);
            e.compose(&req, &cfg)
        };
        // Both hosts fall below the threshold: nothing can be composed.
        assert!(matches!(err, Err(Error::NoQualifiedComposition)));
    }

    #[test]
    fn disabling_soft_allocation_skips_reservations() {
        let mut w = world(2, 3);
        let req = request(2);
        let cfg = BcpConfig { soft_allocation: false, budget: 16, ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        assert_eq!(out.stats.dropped_admission, 0, "no admission without reservations");
        assert_eq!(w.state.soft_count(), 0);
    }

    #[test]
    fn qualified_pool_members_are_distinct_and_qualified() {
        let mut w = world(2, 4);
        let req = request(2);
        let cfg = BcpConfig { budget: 64, quota: QuotaPolicy::Uniform(8), ..BcpConfig::default() };
        let out = engine(&mut w).compose(&req, &cfg).unwrap();
        for (g, e) in &out.qualified_pool {
            assert!(is_qualified(e, &req));
            assert_ne!(g.assignment, out.best.assignment);
        }
        // Pool is cost-ordered.
        for pair in out.qualified_pool.windows(2) {
            assert!(pair[0].1.cost <= pair[1].1.cost);
        }
        // Best beats the pool.
        if let Some((_, e)) = out.qualified_pool.first() {
            assert!(out.eval.cost <= e.cost);
        }
    }
}
