//! Destination-side composition selection (paper §4.3).
//!
//! The destination (1) merges per-branch probe results into complete
//! service graphs, (2) filters them against the user's QoS and resource
//! requirements, and (3) picks the qualified graph minimizing the ψ cost
//! aggregation (Eq. 1), which expresses load balancing: a smaller ψ means
//! the graph's peers and paths have more headroom relative to the demand
//! placed on them.

use crate::model::component::Registry;
use crate::model::function_graph::FunctionGraph;
use crate::model::service_graph::pattern_service_links;
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{CostWeights, GraphEval, LinkEnd, ServiceGraph, ServiceLink};
use crate::paths::PathTable;
use crate::state::OverlayState;
use spidernet_topology::Overlay;
use spidernet_util::hash::FxHashMap;
use spidernet_util::id::{ComponentId, PeerId};
use spidernet_util::qos::{dim, QosVector};
use spidernet_util::res::ResourceVector;

/// Reusable buffers for [`evaluate_with`].
///
/// Evaluating a candidate needs the pattern's branch paths and service
/// links plus several small per-candidate aggregation maps; in the BCP
/// destination-side merge those were rebuilt for every candidate of every
/// request and dominated composition time. One scratch, reused across the
/// candidates of a pattern, removes all of that heap churn. Results are
/// bit-identical to a fresh evaluation.
#[derive(Default)]
pub struct GraphEvalScratch {
    /// Branch paths of the current pattern ([`GraphEvalScratch::set_pattern`]).
    branches: Vec<Vec<usize>>,
    /// Service links of the current pattern.
    links: Vec<ServiceLink>,
    /// Per-branch QoS accumulator.
    acc: QosVector,
    /// Per-peer end-system demand, aggregated in assignment order.
    demand: Vec<(PeerId, ResourceVector)>,
    /// Per-peer worst failure probability.
    failure: Vec<(PeerId, f64)>,
    /// Per-overlay-link aggregate bandwidth demand.
    shared_bw: Vec<((usize, usize), f64)>,
    /// Overlay path buffer for [`PathTable::peer_path_into`].
    path: Vec<PeerId>,
}

impl GraphEvalScratch {
    /// Fresh scratch; call [`GraphEvalScratch::set_pattern`] before evaluating.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caches `pattern`'s branch paths and service links. Call whenever
    /// the pattern changes between [`evaluate_with`] calls — candidates
    /// over one pattern share the shape, so the per-candidate loop pays
    /// for it once.
    pub fn set_pattern(&mut self, pattern: &FunctionGraph) {
        self.branches = pattern.branch_paths();
        self.links = pattern_service_links(pattern);
    }
}

/// Evaluates one candidate service graph against a request.
///
/// QoS accumulation follows branch semantics: each additive dimension is
/// summed along every source→…→destination branch path (component Q_p plus
/// overlay path delay into dimension [`dim::DELAY_MS`]), and the
/// user-visible value is the worst branch.
pub fn evaluate(
    graph: &ServiceGraph,
    req: &CompositionRequest,
    reg: &Registry,
    overlay: &Overlay,
    state: &OverlayState,
    paths: &mut PathTable,
    weights: &CostWeights,
) -> GraphEval {
    let mut scratch = GraphEvalScratch::new();
    scratch.set_pattern(&graph.pattern);
    evaluate_with(
        graph.source,
        graph.dest,
        graph.components(),
        req,
        reg,
        overlay,
        state,
        paths,
        weights,
        &mut scratch,
    )
}

/// [`evaluate`] against caller-owned scratch whose pattern shape was set
/// via [`GraphEvalScratch::set_pattern`], taking the assignment directly so
/// the hot merge loop prices every merged candidate *before* paying for a
/// [`ServiceGraph`] (pattern clone + assignment move) — only qualified
/// candidates get one. Bit-identical results; no per-call allocation
/// beyond the returned QoS vector.
///
/// Every float aggregation that was map-ordered in the original
/// formulation keeps its order here: per-peer sums accumulate in
/// assignment order and fold in ascending-peer order (the former
/// `BTreeMap` walk), and per-link bandwidth sums follow service-link
/// order.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_with(
    source: PeerId,
    dest: PeerId,
    assignment: &[ComponentId],
    req: &CompositionRequest,
    reg: &Registry,
    overlay: &Overlay,
    state: &OverlayState,
    paths: &mut PathTable,
    weights: &CostWeights,
    scratch: &mut GraphEvalScratch,
) -> GraphEval {
    let m = req.qos_req.dims();

    // --- QoS: worst branch of per-branch accumulation ---
    let mut qos = QosVector::zeros(m);
    if scratch.acc.values().len() != m {
        scratch.acc = QosVector::zeros(m);
    }
    for branch in &scratch.branches {
        scratch.acc.values_mut().fill(0.0);
        let mut prev_peer = source;
        for &node in branch {
            let comp = reg.get(assignment[node]);
            scratch.acc.values_mut()[dim::DELAY_MS] += paths.delay(overlay, prev_peer, comp.peer);
            scratch.acc.accumulate(&comp.perf_qos);
            prev_peer = comp.peer;
        }
        scratch.acc.values_mut()[dim::DELAY_MS] += paths.delay(overlay, prev_peer, dest);
        // Element-wise max across branches.
        for (q, a) in qos.values_mut().iter_mut().zip(scratch.acc.values()) {
            *q = q.max(*a);
        }
    }

    // --- resource feasibility + ψ cost ---
    let mut fits = true;
    let mut cost = 0.0;

    // End-system term: Σ_j Σ_i w_i · r_i^{s_j} / ra_i^{v_j}. Aggregated in
    // assignment order per peer, folded in ascending-peer order.
    scratch.demand.clear();
    for &c in assignment {
        let comp = reg.get(c);
        match scratch.demand.iter_mut().find(|(p, _)| *p == comp.peer) {
            Some((_, need)) => *need = need.add(&comp.resources),
            None => scratch.demand.push((comp.peer, ResourceVector::ZERO.add(&comp.resources))),
        }
    }
    scratch.demand.sort_unstable_by_key(|&(p, _)| p);
    for &(peer, ref need) in scratch.demand.iter() {
        let avail = state.available(peer);
        if !need.fits_within(&avail) {
            fits = false;
        }
        cost += need.weighted_usage_ratio(&avail, &weights.resource);
    }

    // Bandwidth term: Σ_links w_{n+1} · b_ℓ / ba_℘ over each service
    // link's overlay path, with feasibility on *aggregate* per-overlay-link
    // demand (branches can share overlay links).
    scratch.shared_bw.clear();
    for link in scratch.links.iter() {
        let peer_of = |end: LinkEnd| match end {
            LinkEnd::Source => source,
            LinkEnd::Dest => dest,
            LinkEnd::Node(i) => reg.get(assignment[i]).peer,
        };
        let from = peer_of(link.from);
        let to = peer_of(link.to);
        let bw = match link.from {
            LinkEnd::Source => req.bandwidth_mbps,
            LinkEnd::Node(i) => reg.get(assignment[i]).out_bandwidth_mbps,
            LinkEnd::Dest => 0.0,
        };
        if from == to || bw <= 0.0 {
            continue;
        }
        if !paths.peer_path_into(overlay, from, to, &mut scratch.path) {
            fits = false;
            cost = f64::INFINITY;
        } else {
            let avail = state.path_available(&scratch.path);
            cost += weights.bandwidth * if avail > 0.0 { bw / avail } else { f64::INFINITY };
            for w in scratch.path.windows(2) {
                let key = if w[0].index() <= w[1].index() {
                    (w[0].index(), w[1].index())
                } else {
                    (w[1].index(), w[0].index())
                };
                match scratch.shared_bw.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, b)) => *b += bw,
                    None => scratch.shared_bw.push((key, bw)),
                }
            }
        }
    }
    for &((a, b), need) in scratch.shared_bw.iter() {
        let avail = state.link_available(a.into(), b.into());
        if avail + 1e-12 < need {
            fits = false;
        }
    }

    // Dead peers disqualify outright.
    for &c in assignment {
        if !state.is_alive(reg.get(c).peer) {
            fits = false;
            cost = f64::INFINITY;
        }
    }

    // Failure probability: worst component per peer, independence product
    // in ascending-peer order (matches ServiceGraph::failure_probability's
    // BTreeMap walk bit for bit).
    scratch.failure.clear();
    for &c in assignment {
        let comp = reg.get(c);
        match scratch.failure.iter_mut().find(|(p, _)| *p == comp.peer) {
            Some((_, fp)) => *fp = fp.max(comp.failure_prob),
            None => scratch.failure.push((comp.peer, 0.0f64.max(comp.failure_prob))),
        }
    }
    scratch.failure.sort_unstable_by_key(|&(p, _)| p);
    let failure_prob = 1.0 - scratch.failure.iter().map(|&(_, p)| 1.0 - p).product::<f64>();

    GraphEval { qos, cost, failure_prob, fits_resources: fits }
}

/// True if the evaluation satisfies the request's QoS bounds and fits the
/// overlay's resources — the paper's "qualified service graph".
pub fn is_qualified(eval: &GraphEval, req: &CompositionRequest) -> bool {
    eval.fits_resources && req.qos_req.is_satisfied_by(&eval.qos)
}

/// Merges per-branch assignments into complete graph assignments
/// (paper §4.3: "we need to first merge the branches into complete service
/// graphs").
///
/// `per_branch[i]` holds candidate assignments for branch path
/// `branch_paths[i]`, each as `(node index, component)` pairs. Two branch
/// candidates combine only if they agree on every shared node (e.g. the
/// fork and join functions of a DAG). At most `cap` complete assignments
/// are produced (cartesian growth guard).
pub fn merge_branches(
    pattern: &FunctionGraph,
    branch_paths: &[Vec<usize>],
    per_branch: &[Vec<Vec<(usize, ComponentId)>>],
    cap: usize,
) -> Vec<Vec<ComponentId>> {
    assert_eq!(branch_paths.len(), per_branch.len());
    let n = pattern.len();
    // Partial assignment: per-node Option<ComponentId>.
    let mut partials: Vec<Vec<Option<ComponentId>>> = vec![vec![None; n]];
    for candidates in per_branch {
        let mut next: Vec<Vec<Option<ComponentId>>> = Vec::new();
        'outer: for partial in &partials {
            for cand in candidates {
                let mut merged = partial.clone();
                let mut ok = true;
                for &(node, comp) in cand {
                    match merged[node] {
                        Some(existing) if existing != comp => {
                            ok = false;
                            break;
                        }
                        _ => merged[node] = Some(comp),
                    }
                }
                if ok {
                    next.push(merged);
                    if next.len() >= cap {
                        break 'outer;
                    }
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return Vec::new();
        }
    }
    partials
        .into_iter()
        .filter_map(|p| p.into_iter().collect::<Option<Vec<ComponentId>>>())
        .collect()
}

/// The assignment-independent shape of one composition pattern: its
/// branch paths and service-link list, computed once per pattern instead
/// of once per candidate graph.
///
/// The link list replicates [`ServiceGraph::service_links`] exactly
/// (Source→entries, deps in declaration order, exits→Dest) so evaluation
/// against it visits overlay legs in the same order.
#[derive(Clone, Debug)]
pub struct PatternShape {
    /// Entry→exit branch paths, as [`FunctionGraph::branch_paths`] yields
    /// them.
    pub branches: Vec<Vec<usize>>,
    /// Service links in [`ServiceGraph::service_links`] order.
    pub links: Vec<ServiceLink>,
}

impl PatternShape {
    /// Precomputes the shape of `pattern`.
    pub fn new(pattern: &FunctionGraph) -> Self {
        let mut links = Vec::with_capacity(pattern.deps().len() + 2);
        for e in pattern.entry_nodes() {
            links.push(ServiceLink { from: LinkEnd::Source, to: LinkEnd::Node(e) });
        }
        for &(a, b) in pattern.deps() {
            links.push(ServiceLink { from: LinkEnd::Node(a), to: LinkEnd::Node(b) });
        }
        for x in pattern.exit_nodes() {
            links.push(ServiceLink { from: LinkEnd::Node(x), to: LinkEnd::Dest });
        }
        PatternShape { branches: pattern.branch_paths(), links }
    }
}

/// One memoized overlay leg: reachability, path bandwidth headroom, and
/// the normalized overlay-link keys the path crosses.
#[derive(Clone, Debug)]
pub struct LegPath {
    /// False when the overlay route does not exist.
    pub reachable: bool,
    /// `OverlayState::path_available` of the route at snapshot time.
    pub avail: f64,
    /// Normalized `(lo, hi)` overlay-link keys along the route.
    pub hops: Vec<(usize, usize)>,
}

/// Immutable per-request snapshot of every overlay leg and peer datum a
/// candidate evaluation touches.
///
/// Built once per enumeration from the mutable [`PathTable`] (warming its
/// SSSP trees and pair-delay memo), then shared read-only across worker
/// threads: evaluating a candidate becomes pure hash lookups with no
/// `&mut` anywhere. Values are the exact bits the live query path
/// returns, so evaluations against the table match [`evaluate`]
/// bit-for-bit as long as the overlay state is not mutated in between.
#[derive(Clone, Debug, Default)]
pub struct LegTable {
    delays: FxHashMap<(PeerId, PeerId), f64>,
    legs: FxHashMap<(PeerId, PeerId), LegPath>,
    avail: FxHashMap<PeerId, ResourceVector>,
    alive: FxHashMap<PeerId, bool>,
}

impl LegTable {
    /// Snapshots all pairs `froms × tos` plus per-peer liveness and
    /// available resources for `peers`.
    pub fn build(
        overlay: &Overlay,
        state: &OverlayState,
        paths: &mut PathTable,
        froms: &[PeerId],
        tos: &[PeerId],
        peers: &[PeerId],
    ) -> Self {
        let mut table = LegTable::default();
        for &a in froms {
            for &b in tos {
                if table.delays.contains_key(&(a, b)) {
                    continue;
                }
                table.delays.insert((a, b), paths.delay(overlay, a, b));
                if a == b {
                    continue;
                }
                let leg = match paths.peer_path(overlay, a, b) {
                    None => LegPath { reachable: false, avail: 0.0, hops: Vec::new() },
                    Some(p) => LegPath {
                        reachable: true,
                        avail: state.path_available(&p),
                        hops: p
                            .windows(2)
                            .map(|w| {
                                if w[0].index() <= w[1].index() {
                                    (w[0].index(), w[1].index())
                                } else {
                                    (w[1].index(), w[0].index())
                                }
                            })
                            .collect(),
                    },
                };
                table.legs.insert((a, b), leg);
            }
        }
        for &p in peers {
            table.avail.insert(p, state.available(p));
            table.alive.insert(p, state.is_alive(p));
        }
        table
    }

    /// Memoized overlay delay `from → to`, ms.
    ///
    /// # Panics
    /// If the pair was outside the `froms × tos` universe at build time.
    pub fn delay(&self, from: PeerId, to: PeerId) -> f64 {
        *self.delays.get(&(from, to)).expect("leg outside the precomputed pair universe")
    }

    /// Memoized leg data for `from → to` (`from != to`).
    ///
    /// # Panics
    /// If the pair was outside the `froms × tos` universe at build time.
    pub fn leg(&self, from: PeerId, to: PeerId) -> &LegPath {
        self.legs.get(&(from, to)).expect("leg outside the precomputed pair universe")
    }

    /// Snapshot of `OverlayState::available` for `peer`.
    ///
    /// # Panics
    /// If `peer` was not in the build-time peer set.
    pub fn available(&self, peer: PeerId) -> &ResourceVector {
        self.avail.get(&peer).expect("peer outside the precomputed peer set")
    }

    /// Snapshot of `OverlayState::is_alive` for `peer`.
    ///
    /// # Panics
    /// If `peer` was not in the build-time peer set.
    pub fn is_alive(&self, peer: PeerId) -> bool {
        *self.alive.get(&peer).expect("peer outside the precomputed peer set")
    }
}

/// Shared read-only inputs of [`evaluate_assignment`].
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// The composition request being served.
    pub req: &'a CompositionRequest,
    /// Component registry.
    pub reg: &'a Registry,
    /// Live overlay state (read-only; used for aggregate link feasibility).
    pub state: &'a OverlayState,
    /// Per-request leg snapshot.
    pub legs: &'a LegTable,
    /// ψ aggregation weights.
    pub weights: &'a CostWeights,
}

/// Reusable allocation scratch for [`evaluate_assignment`].
#[derive(Clone, Debug, Default)]
pub struct EvalScratch {
    qos: Vec<f64>,
    acc: Vec<f64>,
    demand: Vec<(PeerId, ResourceVector)>,
    fail: Vec<(PeerId, f64)>,
    links: FxHashMap<(usize, usize), f64>,
}

/// Evaluates one assignment of a pattern without constructing a
/// [`ServiceGraph`] and without touching the mutable path cache.
///
/// Bit-for-bit equivalent to [`evaluate`] on the equivalent graph: every
/// float reduction (branch QoS accumulation, per-peer demand aggregation,
/// ψ terms, failure product) replays the same operations in the same
/// order, with BTreeMap passes replaced by peer-sorted scratch vectors.
/// This is the enumeration hot path: no per-candidate allocation beyond
/// the returned [`GraphEval`].
pub fn evaluate_assignment(
    ctx: &EvalContext<'_>,
    shape: &PatternShape,
    assignment: &[ComponentId],
    scratch: &mut EvalScratch,
) -> GraphEval {
    let m = ctx.req.qos_req.dims();

    // --- QoS: worst branch of per-branch accumulation ---
    scratch.qos.clear();
    scratch.qos.resize(m, 0.0);
    scratch.acc.resize(m, 0.0);
    for branch in &shape.branches {
        scratch.acc.fill(0.0);
        let mut prev_peer = ctx.req.source;
        for &node in branch {
            let comp = ctx.reg.get(assignment[node]);
            scratch.acc[dim::DELAY_MS] += ctx.legs.delay(prev_peer, comp.peer);
            for (a, b) in scratch.acc.iter_mut().zip(comp.perf_qos.values()) {
                *a += b;
            }
            prev_peer = comp.peer;
        }
        scratch.acc[dim::DELAY_MS] += ctx.legs.delay(prev_peer, ctx.req.dest);
        for (q, a) in scratch.qos.iter_mut().zip(&scratch.acc) {
            *q = q.max(*a);
        }
    }

    // --- resource feasibility + ψ cost ---
    let mut fits = true;
    let mut cost = 0.0;

    // End-system term, aggregated per peer then visited in ascending peer
    // order (the BTreeMap order `evaluate` relies on).
    scratch.demand.clear();
    for &c in assignment {
        let comp = ctx.reg.get(c);
        match scratch.demand.iter_mut().find(|(p, _)| *p == comp.peer) {
            Some((_, need)) => *need = need.add(&comp.resources),
            None => scratch.demand.push((comp.peer, ResourceVector::ZERO.add(&comp.resources))),
        }
    }
    scratch.demand.sort_by_key(|&(p, _)| p);
    for (peer, need) in &scratch.demand {
        let avail = ctx.legs.available(*peer);
        if !need.fits_within(avail) {
            fits = false;
        }
        cost += need.weighted_usage_ratio(avail, &ctx.weights.resource);
    }

    // Bandwidth term over each service link's overlay path, aggregate
    // feasibility per overlay link.
    scratch.links.clear();
    for link in &shape.links {
        let from = match link.from {
            LinkEnd::Source => ctx.req.source,
            LinkEnd::Dest => ctx.req.dest,
            LinkEnd::Node(i) => ctx.reg.get(assignment[i]).peer,
        };
        let to = match link.to {
            LinkEnd::Source => ctx.req.source,
            LinkEnd::Dest => ctx.req.dest,
            LinkEnd::Node(i) => ctx.reg.get(assignment[i]).peer,
        };
        let bw = match link.from {
            LinkEnd::Source => ctx.req.bandwidth_mbps,
            LinkEnd::Node(i) => ctx.reg.get(assignment[i]).out_bandwidth_mbps,
            LinkEnd::Dest => 0.0,
        };
        if from == to || bw <= 0.0 {
            continue;
        }
        let leg = ctx.legs.leg(from, to);
        if !leg.reachable {
            fits = false;
            cost = f64::INFINITY;
        } else {
            cost += ctx.weights.bandwidth * if leg.avail > 0.0 { bw / leg.avail } else { f64::INFINITY };
            for &key in &leg.hops {
                *scratch.links.entry(key).or_insert(0.0) += bw;
            }
        }
    }
    for (&(a, b), &need) in &scratch.links {
        let avail = ctx.state.link_available(a.into(), b.into());
        if avail + 1e-12 < need {
            fits = false;
        }
    }

    // Dead peers disqualify outright.
    for &c in assignment {
        if !ctx.legs.is_alive(ctx.reg.get(c).peer) {
            fits = false;
            cost = f64::INFINITY;
        }
    }

    // Failure probability: worst component per peer, product in ascending
    // peer order (mirrors `ServiceGraph::failure_probability`).
    scratch.fail.clear();
    for &c in assignment {
        let comp = ctx.reg.get(c);
        match scratch.fail.iter_mut().find(|(p, _)| *p == comp.peer) {
            Some((_, fp)) => *fp = fp.max(comp.failure_prob),
            None => scratch.fail.push((comp.peer, 0.0f64.max(comp.failure_prob))),
        }
    }
    scratch.fail.sort_by_key(|&(p, _)| p);
    let failure_prob = 1.0 - scratch.fail.iter().map(|&(_, p)| 1.0 - p).product::<f64>();

    GraphEval {
        qos: QosVector::from_values(scratch.qos.clone()),
        cost,
        failure_prob,
        fits_resources: fits,
    }
}

/// A candidate with its evaluation.
pub type Candidate = (ServiceGraph, GraphEval);

/// Which score ranks the qualified candidate pool at selection time.
///
/// Every policy selects among the *same* qualified pool (functional
/// correctness, QoS bounds, and resource admission are identical); only
/// the ranking differs. The non-paper policies exist for the congestion
/// experiments: under the shared-bandwidth flow model the paper's static
/// ψ cannot see contention, while [`SelectionPolicy::Marketplace`] prices
/// candidates by live residual capacity and delivery reputation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's ψ composite cost (static metric).
    #[default]
    Paper,
    /// ICN-style bids: latency × residual capacity × delivery reputation
    /// ([`crate::trust::Marketplace`]); highest aggregate bid wins.
    Marketplace,
    /// Deterministic pseudo-random pick (content-hashed, seed-free).
    Random,
    /// Lowest end-to-end delay, ignoring load and failure risk.
    Greedy,
}

/// Ranks qualified graphs by ψ and returns `(best, best's eval, others)` —
/// the others, still cost-ordered, feed backup selection (paper §5).
pub fn select_best(
    mut qualified: Vec<Candidate>,
) -> Option<(ServiceGraph, GraphEval, Vec<Candidate>)> {
    if qualified.is_empty() {
        return None;
    }
    // `total_cmp` sorts a NaN-cost graph last: it can never displace a
    // finite best, and the sort cannot panic on a poisoned evaluation.
    qualified.sort_by(|a, b| {
        a.1.cost.total_cmp(&b.1.cost).then_with(|| a.0.assignment.cmp(&b.0.assignment))
    });
    let (best, eval) = qualified.remove(0);
    Some((best, eval, qualified))
}

/// Like [`select_best`] but ranks by an arbitrary score (lower is
/// better) instead of ψ. The runner-up pool is returned in score order
/// so backup selection degrades gracefully under the same policy.
/// NaN scores sort last via `total_cmp`; exact ties break on the
/// assignment, keeping every policy deterministic.
pub fn select_best_by(
    mut qualified: Vec<Candidate>,
    mut score: impl FnMut(&ServiceGraph, &GraphEval) -> f64,
) -> Option<(ServiceGraph, GraphEval, Vec<Candidate>)> {
    if qualified.is_empty() {
        return None;
    }
    let mut scored: Vec<(f64, Candidate)> =
        qualified.drain(..).map(|c| (score(&c.0, &c.1), c)).collect();
    scored.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then_with(|| a.1 .0.assignment.cmp(&b.1 .0.assignment))
    });
    let mut it = scored.into_iter().map(|(_, c)| c);
    let (best, eval) = it.next().expect("non-empty");
    Some((best, eval, it.collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::component::ServiceComponent;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::id::{FunctionId, PeerId};
    use spidernet_util::qos::QosRequirement;
    use spidernet_util::res::ResourceVector;

    struct World {
        overlay: Overlay,
        reg: Registry,
        state: OverlayState,
        paths: PathTable,
    }

    fn world() -> World {
        let ip = generate_power_law(&InetConfig { nodes: 150, ..InetConfig::default() }, 6);
        let overlay = Overlay::build(
            &ip,
            &OverlayConfig { peers: 30, style: OverlayStyle::Mesh { neighbors: 4 } },
            6,
        );
        let mut reg = Registry::default();
        // Function f on peer f+1 (peers 1, 2, 3) plus a duplicate of
        // function 0 on peer 4.
        for (peer, function) in [(1u64, 0u64), (2, 1), (3, 2), (4, 0)] {
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(peer),
                function: FunctionId::new(function),
                perf_qos: QosVector::from_values(vec![10.0, 0.01]),
                resources: ResourceVector::new(0.2, 32.0),
                out_bandwidth_mbps: 1.0,
                failure_prob: 0.01,
            });
        }
        let state = OverlayState::new(&overlay, ResourceVector::new(1.0, 256.0));
        World { overlay, reg, state, paths: PathTable::new() }
    }

    fn request() -> CompositionRequest {
        CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(9),
            function_graph: FunctionGraph::linear(3),
            qos_req: QosRequirement::new(vec![10_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        }
    }

    fn chain_assignment() -> Vec<ComponentId> {
        vec![ComponentId::new(0), ComponentId::new(1), ComponentId::new(2)]
    }

    #[test]
    fn evaluation_accumulates_qos_along_the_chain() {
        let mut w = world();
        let req = request();
        let g = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let eval = evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        // Delay = 3 component Qp (30ms) + 4 overlay legs.
        let legs = w.paths.delay(&w.overlay, PeerId::new(0), PeerId::new(1))
            + w.paths.delay(&w.overlay, PeerId::new(1), PeerId::new(2))
            + w.paths.delay(&w.overlay, PeerId::new(2), PeerId::new(3))
            + w.paths.delay(&w.overlay, PeerId::new(3), PeerId::new(9));
        assert!((eval.qos[dim::DELAY_MS] - (30.0 + legs)).abs() < 1e-9);
        assert!((eval.qos[dim::LOSS] - 0.03).abs() < 1e-12);
        assert!(eval.fits_resources);
        assert!(eval.cost.is_finite() && eval.cost > 0.0);
        assert!(is_qualified(&eval, &req));
    }

    #[test]
    fn tight_qos_bound_disqualifies() {
        let mut w = world();
        let mut req = request();
        req.qos_req = QosRequirement::new(vec![1.0, 10.0]).unwrap(); // 1ms budget
        let g = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let eval = evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        assert!(!is_qualified(&eval, &req));
    }

    #[test]
    fn dead_peer_disqualifies_with_infinite_cost() {
        let mut w = world();
        let req = request();
        w.state.fail_peer(PeerId::new(2));
        let g = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let eval = evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        assert!(!eval.fits_resources);
        assert!(eval.cost.is_infinite());
    }

    #[test]
    fn resource_exhaustion_disqualifies() {
        let mut w = world();
        let req = request();
        w.state.set_capacity(PeerId::new(1), ResourceVector::new(0.1, 8.0));
        let g = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let eval = evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        assert!(!eval.fits_resources);
    }

    #[test]
    fn loaded_peers_cost_more() {
        let mut w = world();
        let req = request();
        let g = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let before =
            evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        // Load peer 1 heavily (committed elsewhere).
        w.state
            .commit(&[(PeerId::new(1), ResourceVector::new(0.7, 200.0))], &[])
            .unwrap();
        let after =
            evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        assert!(after.cost > before.cost, "ψ must grow with load");
    }

    #[test]
    fn merge_linear_is_direct() {
        let pattern = FunctionGraph::linear(2);
        let branches = pattern.branch_paths();
        let per_branch = vec![vec![
            vec![(0, ComponentId::new(0)), (1, ComponentId::new(1))],
            vec![(0, ComponentId::new(2)), (1, ComponentId::new(3))],
        ]];
        let merged = merge_branches(&pattern, &branches, &per_branch, 100);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], vec![ComponentId::new(0), ComponentId::new(1)]);
    }

    #[test]
    fn merge_requires_agreement_on_shared_nodes() {
        // Diamond 0→1→3, 0→2→3; node 0 and 3 shared between branches.
        let pattern = FunctionGraph::new(
            (0..4).map(FunctionId::new).collect(),
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![],
        )
        .unwrap();
        let branches = pattern.branch_paths(); // [[0,1,3],[0,2,3]]
        let c = ComponentId::new;
        let per_branch = vec![
            vec![
                vec![(0, c(10)), (1, c(11)), (3, c(13))],
                vec![(0, c(20)), (1, c(21)), (3, c(23))],
            ],
            vec![
                vec![(0, c(10)), (2, c(12)), (3, c(13))], // agrees with first
                vec![(0, c(99)), (2, c(12)), (3, c(13))], // disagrees on node 0
            ],
        ];
        let merged = merge_branches(&pattern, &branches, &per_branch, 100);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], vec![c(10), c(11), c(12), c(13)]);
    }

    #[test]
    fn merge_cap_limits_output() {
        let pattern = FunctionGraph::linear(1);
        let branches = pattern.branch_paths();
        let cands: Vec<Vec<(usize, ComponentId)>> =
            (0..50).map(|i| vec![(0, ComponentId::new(i))]).collect();
        let merged = merge_branches(&pattern, &branches, &[cands], 7);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn merge_with_no_candidates_is_empty() {
        let pattern = FunctionGraph::linear(2);
        let branches = pattern.branch_paths();
        let merged = merge_branches(&pattern, &branches, &[vec![]], 10);
        assert!(merged.is_empty());
    }

    #[test]
    fn dag_qos_takes_the_worst_branch() {
        let mut w = world();
        let req = CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(9),
            function_graph: FunctionGraph::new(
                (0..3).map(FunctionId::new).collect(),
                vec![(0, 1), (0, 2)], // fork: two exit branches
                vec![],
            )
            .unwrap(),
            qos_req: QosRequirement::new(vec![10_000.0, 10.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 1.0,
        };
        let g = ServiceGraph::new(
            req.source,
            req.dest,
            req.function_graph.clone(),
            chain_assignment(),
        );
        let eval =
            evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &CostWeights::uniform());
        // Compute both branches by hand; the eval must equal the max.
        let mut leg = |a: u64, b: u64| w.paths.delay(&w.overlay, PeerId::new(a), PeerId::new(b));
        let branch1 = leg(0, 1) + 10.0 + leg(1, 2) + 10.0 + leg(2, 9); // 0→n0→n1→dest
        let branch2 = leg(0, 1) + 10.0 + leg(1, 3) + 10.0 + leg(3, 9); // 0→n0→n2→dest
        assert!((eval.qos[dim::DELAY_MS] - branch1.max(branch2)).abs() < 1e-9);
    }

    fn assert_bit_equal(a: &GraphEval, b: &GraphEval) {
        assert_eq!(a.qos.values().len(), b.qos.values().len());
        for (x, y) in a.qos.values().iter().zip(b.qos.values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "qos dims must match bitwise");
        }
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "cost must match bitwise");
        assert_eq!(a.failure_prob.to_bits(), b.failure_prob.to_bits());
        assert_eq!(a.fits_resources, b.fits_resources);
    }

    fn leg_table_for(w: &mut World, req: &CompositionRequest) -> LegTable {
        let replicas: Vec<PeerId> = (1..=4).map(PeerId::new).collect();
        let mut froms = vec![req.source];
        froms.extend(&replicas);
        let mut tos = replicas.clone();
        tos.push(req.dest);
        LegTable::build(&w.overlay, &w.state, &mut w.paths, &froms, &tos, &replicas)
    }

    #[test]
    fn evaluate_assignment_matches_evaluate_bitwise() {
        let mut w = world();
        let req = request();
        let legs = leg_table_for(&mut w, &req);
        let shape = PatternShape::new(&req.function_graph);
        let mut scratch = EvalScratch::default();
        let weights = CostWeights::uniform();
        // Both replicas of function 0 (components 0 and 3), so the fast
        // path is exercised on more than one assignment.
        for first in [0u64, 3] {
            let mut assignment = chain_assignment();
            assignment[0] = ComponentId::new(first);
            let g = ServiceGraph::new(
                req.source,
                req.dest,
                req.function_graph.clone(),
                assignment.clone(),
            );
            let slow =
                evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
            let ctx = EvalContext {
                req: &req,
                reg: &w.reg,
                state: &w.state,
                legs: &legs,
                weights: &weights,
            };
            let fast = evaluate_assignment(&ctx, &shape, &assignment, &mut scratch);
            assert_bit_equal(&fast, &slow);
        }
    }

    #[test]
    fn evaluate_assignment_matches_on_dag_and_dead_peer() {
        let mut w = world();
        let req = CompositionRequest {
            function_graph: FunctionGraph::new(
                (0..3).map(FunctionId::new).collect(),
                vec![(0, 1), (0, 2)],
                vec![],
            )
            .unwrap(),
            ..request()
        };
        w.state.fail_peer(PeerId::new(2));
        let legs = leg_table_for(&mut w, &req);
        let shape = PatternShape::new(&req.function_graph);
        let weights = CostWeights::uniform();
        let assignment = chain_assignment();
        let g = ServiceGraph::new(
            req.source,
            req.dest,
            req.function_graph.clone(),
            assignment.clone(),
        );
        let slow = evaluate(&g, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
        let ctx =
            EvalContext { req: &req, reg: &w.reg, state: &w.state, legs: &legs, weights: &weights };
        let fast = evaluate_assignment(&ctx, &shape, &assignment, &mut EvalScratch::default());
        assert_bit_equal(&fast, &slow);
        assert!(!fast.fits_resources, "dead peer must disqualify");
        assert!(fast.cost.is_infinite());
    }

    #[test]
    fn select_best_minimizes_cost() {
        let mut w = world();
        let req = request();
        let g1 = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let mut a2 = chain_assignment();
        a2[0] = ComponentId::new(3); // duplicate of function 0 on peer 4
        let g2 = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), a2);
        let weights = CostWeights::uniform();
        let e1 = evaluate(&g1, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
        let e2 = evaluate(&g2, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
        let expect_first = if e1.cost <= e2.cost { g1.clone() } else { g2.clone() };
        let (best, _, rest) = select_best(vec![(g1, e1), (g2, e2)]).unwrap();
        assert_eq!(best.assignment, expect_first.assignment);
        assert_eq!(rest.len(), 1);
        assert!(select_best(vec![]).is_none());
    }

    #[test]
    fn select_best_by_ranks_on_the_given_score() {
        let mut w = world();
        let req = request();
        let g1 = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), chain_assignment());
        let mut a2 = chain_assignment();
        a2[0] = ComponentId::new(3);
        let g2 = ServiceGraph::new(req.source, req.dest, FunctionGraph::linear(3), a2);
        let weights = CostWeights::uniform();
        let e1 = evaluate(&g1, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
        let e2 = evaluate(&g2, &req, &w.reg, &w.overlay, &w.state, &mut w.paths, &weights);
        // Scoring by ψ reproduces select_best exactly.
        let (a, _, _) = select_best(vec![(g1.clone(), e1.clone()), (g2.clone(), e2.clone())]).unwrap();
        let (b, _, _) = select_best_by(
            vec![(g1.clone(), e1.clone()), (g2.clone(), e2.clone())],
            |_, e| e.cost,
        )
        .unwrap();
        assert_eq!(a.assignment, b.assignment);
        // An inverted score flips the winner; a NaN score loses to any
        // finite one instead of panicking or winning by accident.
        let (c, _, rest) = select_best_by(
            vec![(g1.clone(), e1.clone()), (g2.clone(), e2.clone())],
            |g, e| if g.assignment == a.assignment { f64::NAN } else { e.cost },
        )
        .unwrap();
        assert_ne!(c.assignment, a.assignment);
        assert_eq!(rest.len(), 1);
        assert!(select_best_by(vec![], |_, e| e.cost).is_none());
    }
}
