//! Open-loop workload engine: arrival processes, Zipf-skewed function
//! popularity, and a standing-world load cell (ROADMAP item 2).
//!
//! The paper evaluates composition closed-loop — a fixed number of
//! requests per time unit, each composed to completion before the next
//! (§6.1). This module adds the heavy-traffic axis: requests arrive on
//! their own clock (Poisson, diurnal, or flash-crowd), function demand is
//! Zipf-skewed the way real service popularity is, and thousands of
//! sessions are admitted, established, expired, and recovered against one
//! standing [`SpiderNet`] world over the indexed event core.
//!
//! Everything is deterministic under the derived-RNG discipline: arrival
//! times, request contents, lifetimes, and churn all come from
//! [`rng_for`] streams labelled off one master seed, so a load cell's
//! model-time results are byte-identical across thread counts and
//! processes (wall-clock throughput fields are measured, not modeled).

use crate::bcp::BcpConfig;
use crate::model::function_graph::FunctionGraph;
use crate::model::request::CompositionRequest;
use crate::model::component::Registry;
use crate::system::SpiderNet;
use crate::workload::{provisioned_functions, RequestConfig};
use crate::recovery::FailureOutcome;
use spidernet_sim::event_core::EventCore;
use spidernet_sim::metrics::counter;
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_topology::Overlay;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::{FunctionId, PeerId, SessionId};
use spidernet_util::qos::{loss_to_additive, QosRequirement};
use spidernet_util::rng::{rng_for, Rng};
use spidernet_util::stats::percentile;
use std::time::Instant;

// --- arrival processes --------------------------------------------------

/// A time-varying arrival-rate profile, in requests per model time unit.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests/unit.
    Poisson {
        /// Mean arrival rate, requests per time unit.
        rate: f64,
    },
    /// A smooth day/night cycle: the rate swings sinusoidally between
    /// `base` and `peak` with the given period.
    Diurnal {
        /// Off-peak rate, requests per time unit.
        base: f64,
        /// Peak rate, requests per time unit.
        peak: f64,
        /// Cycle length, time units.
        period: f64,
    },
    /// A flash crowd: `base` rate everywhere except a burst window
    /// `[start, start + duration)` at `peak`.
    FlashCrowd {
        /// Background rate, requests per time unit.
        base: f64,
        /// Burst rate, requests per time unit.
        peak: f64,
        /// Burst onset, time units.
        start: f64,
        /// Burst length, time units.
        duration: f64,
    },
}

fn parse_kv(spec: &str) -> Result<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| Error::InvalidConfig(format!("expected key=value, got {part:?}")))?;
        let v: f64 = v
            .parse()
            .map_err(|_| Error::InvalidConfig(format!("invalid number for {k}: {v:?}")))?;
        out.push((k.trim().to_owned(), v));
    }
    Ok(out)
}

fn take(kv: &[(String, f64)], key: &str, default: Option<f64>) -> Result<f64> {
    kv.iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .or(default)
        .ok_or_else(|| Error::InvalidConfig(format!("missing required key {key}")))
}

impl ArrivalProcess {
    /// Parses a CLI spec: `poisson:rate=R`,
    /// `diurnal:base=B,peak=P,period=T`, or
    /// `flash:base=B,peak=P,start=S,duration=D`.
    pub fn parse(spec: &str) -> Result<ArrivalProcess> {
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let kv = parse_kv(rest)?;
        let proc = match kind {
            "poisson" => ArrivalProcess::Poisson { rate: take(&kv, "rate", None)? },
            "diurnal" => ArrivalProcess::Diurnal {
                base: take(&kv, "base", None)?,
                peak: take(&kv, "peak", None)?,
                period: take(&kv, "period", Some(100.0))?,
            },
            "flash" => ArrivalProcess::FlashCrowd {
                base: take(&kv, "base", None)?,
                peak: take(&kv, "peak", None)?,
                start: take(&kv, "start", Some(0.0))?,
                duration: take(&kv, "duration", Some(10.0))?,
            },
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown arrival process {other:?} (poisson|diurnal|flash)"
                )))
            }
        };
        for (label, v) in [("rates", proc.peak_rate()), ("rates", proc.rate_at(0.0))] {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::InvalidConfig(format!("{label} must be finite and ≥ 0")));
            }
        }
        if proc.peak_rate() <= 0.0 {
            return Err(Error::InvalidConfig("peak arrival rate must be > 0".into()));
        }
        Ok(proc)
    }

    /// The instantaneous rate λ(t), requests per unit.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal { base, peak, period } => {
                let phase = (t / period.max(1e-9)) * std::f64::consts::TAU;
                base + (peak - base) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd { base, peak, start, duration } => {
                if t >= start && t < start + duration {
                    peak
                } else {
                    base
                }
            }
        }
    }

    /// The rate envelope λ_max used by the thinning sampler.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal { base, peak, .. } => peak.max(base),
            ArrivalProcess::FlashCrowd { base, peak, .. } => peak.max(base),
        }
    }

    /// Stable label for result rows (round-trips through
    /// [`ArrivalProcess::parse`]).
    pub fn label(&self) -> String {
        match *self {
            ArrivalProcess::Poisson { rate } => format!("poisson:rate={rate}"),
            ArrivalProcess::Diurnal { base, peak, period } => {
                format!("diurnal:base={base},peak={peak},period={period}")
            }
            ArrivalProcess::FlashCrowd { base, peak, start, duration } => {
                format!("flash:base={base},peak={peak},start={start},duration={duration}")
            }
        }
    }
}

/// Draws arrival timestamps from an [`ArrivalProcess`] by thinning: the
/// candidate stream is exponential at the peak-rate envelope, and each
/// candidate survives with probability λ(t)/λ_max. For a homogeneous
/// Poisson process every candidate survives, so the same code path (and
/// the same RNG consumption pattern) serves all three profiles.
#[derive(Clone, Debug)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    rng: Rng,
    t: f64,
}

impl ArrivalSampler {
    /// A sampler seeded from `(seed, label)` starting at t = 0.
    pub fn new(process: ArrivalProcess, seed: u64, label: &str) -> Self {
        ArrivalSampler { process, rng: rng_for(seed, label), t: 0.0 }
    }

    /// The next arrival timestamp, in time units (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        let lambda_max = self.process.peak_rate();
        loop {
            // Exponential(λ_max) increment; u ∈ [0, 1) keeps ln(1-u) finite.
            let u: f64 = self.rng.gen();
            self.t += -(1.0 - u).ln() / lambda_max;
            let accept: f64 = self.rng.gen();
            if accept * lambda_max < self.process.rate_at(self.t) {
                return self.t;
            }
        }
    }
}

// --- Zipf popularity ----------------------------------------------------

/// Samples ranks `0..n` with Zipf weights `1/(rank+1)^s` via inverse-CDF
/// binary search — rank 0 is the most popular. `s = 0` degenerates to
/// uniform; larger `s` concentrates demand on the head of the catalog.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s` (`n ≥ 1`, `s ≥ 0`).
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidConfig("Zipf sampler needs ≥ 1 rank".into()));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error::InvalidConfig(format!("Zipf exponent must be ≥ 0, got {s}")));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(ZipfSampler { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has exactly one rank (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

fn sample_range(rng: &mut Rng, (lo, hi): (f64, f64)) -> f64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Draws one composition request whose functions are sampled (without
/// replacement) by Zipf popularity over `pool` — `pool[0]` is the most
/// popular. Request shape (QoS bounds, bandwidth, endpoints) follows
/// `cfg` exactly like [`crate::workload::random_request`].
pub fn zipf_request(
    overlay: &Overlay,
    reg: &Registry,
    pool: &[FunctionId],
    zipf: &ZipfSampler,
    cfg: &RequestConfig,
    rng: &mut Rng,
) -> CompositionRequest {
    assert!(!pool.is_empty(), "no provisioned functions to request");
    assert_eq!(zipf.len(), pool.len(), "Zipf sampler must cover the pool");
    let (lo, hi) = cfg.functions;
    let k = rng.gen_range(lo..=hi).min(pool.len());
    let mut funcs: Vec<FunctionId> = Vec::with_capacity(k);
    // Rejection-sample distinct functions; under heavy skew the head ranks
    // repeat, so cap the attempts and backfill in rank order (still
    // deterministic, still popularity-biased).
    let mut attempts = 0usize;
    while funcs.len() < k && attempts < 64 * k {
        attempts += 1;
        let f = pool[zipf.sample(rng)];
        if !funcs.contains(&f) {
            funcs.push(f);
        }
    }
    let mut rank = 0usize;
    while funcs.len() < k {
        let f = pool[rank];
        if !funcs.contains(&f) {
            funcs.push(f);
        }
        rank += 1;
    }

    let function_graph = if k >= 4 && rng.gen::<f64>() < cfg.dag_probability {
        let mut deps = vec![(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        for i in 3..(k - 1) {
            deps.push((i, i + 1));
        }
        FunctionGraph::new(funcs.clone(), deps, vec![(1, 2)])
            .expect("diamond construction is valid")
    } else {
        FunctionGraph::linear_of(&funcs)
    };
    let _ = reg; // the registry is what `pool` was derived from

    let n = overlay.peer_count() as u64;
    let source = PeerId::new(rng.gen_range(0..n));
    let mut dest = PeerId::new(rng.gen_range(0..n));
    while dest == source {
        dest = PeerId::new(rng.gen_range(0..n));
    }

    CompositionRequest {
        source,
        dest,
        function_graph,
        qos_req: QosRequirement::new(vec![
            sample_range(rng, cfg.delay_bound_ms),
            loss_to_additive(sample_range(rng, cfg.loss_bound)),
        ])
        .expect("bounds are positive"),
        bandwidth_mbps: sample_range(rng, cfg.bandwidth_mbps),
        max_failure_prob: cfg.max_failure_prob,
    }
}

// --- the open-loop load cell --------------------------------------------

/// Deterministic churn riding along with the load: every `period` units
/// one live peer is crashed and revived `revive_after` units later,
/// exercising recovery under sustained traffic.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Units between kills (≥ 1).
    pub period: u64,
    /// Units a killed peer stays down.
    pub revive_after: u64,
}

/// Parameters of one open-loop load cell.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Arrival profile, requests per time unit.
    pub arrivals: ArrivalProcess,
    /// Cell length, time units (1 unit = 1 model second).
    pub duration_units: u64,
    /// Session lifetime range, time units.
    pub session_lifetime: (f64, f64),
    /// Request shape.
    pub request: RequestConfig,
    /// Zipf exponent for function popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Master seed; all streams derive from it.
    pub seed: u64,
    /// The BCP configuration requests compose under (shedding rides on
    /// its `shed_utilization`).
    pub bcp: BcpConfig,
    /// Whether the world's epoch-invalidated compose cache is enabled.
    pub compose_caching: bool,
    /// Optional churn plan.
    pub churn: Option<ChurnConfig>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            arrivals: ArrivalProcess::Poisson { rate: 20.0 },
            duration_units: 50,
            session_lifetime: (5.0, 20.0),
            request: RequestConfig::default(),
            zipf_exponent: 0.9,
            seed: 8,
            bcp: BcpConfig::default(),
            compose_caching: false,
            churn: None,
        }
    }
}

/// Model-time results of one load cell (deterministic for a fixed
/// config), plus wall-clock throughput fields (measured, excluded from
/// determinism pins).
#[derive(Clone, Debug, Default)]
pub struct LoadCellResult {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests admitted end-to-end (composed + established).
    pub admitted: u64,
    /// Requests refused by admission control (ψ shedding or soft-state
    /// resource admission), at probe or commit time.
    pub rejected_admission: u64,
    /// Requests that found no qualified composition.
    pub rejected_qos: u64,
    /// Requests lost to any other error.
    pub failed_other: u64,
    /// Sessions that ran to their natural expiry.
    pub expired: u64,
    /// Peers crashed by the churn plan.
    pub churn_kills: u64,
    /// Sessions saved by a maintained backup after a crash.
    pub recovered_backup: u64,
    /// Sessions saved by reactive re-composition.
    pub recovered_reactive: u64,
    /// Sessions abandoned after a crash.
    pub abandoned: u64,
    /// Largest number of concurrently established sessions.
    pub peak_in_flight: u64,
    /// Replicas dropped pre-probe by ψ shedding (sum over composes).
    pub shed_candidates: u64,
    /// Compose-cache totals for the cell.
    pub cache_hits: u64,
    /// Compose-cache misses.
    pub cache_misses: u64,
    /// Compose-cache epoch/config flushes.
    pub cache_invalidations: u64,
    /// Model-time setup latency (discovery + probing) percentiles over
    /// admitted requests, ms.
    pub setup_p50_ms: f64,
    /// 95th percentile, ms.
    pub setup_p95_ms: f64,
    /// 99th percentile, ms.
    pub setup_p99_ms: f64,
    /// Admitted sessions per time unit.
    pub goodput_per_unit: f64,
    /// `1 - admitted/arrivals`.
    pub rejection_rate: f64,
    /// Compose attempts (equals arrivals).
    pub composes: u64,
    /// Wall-clock seconds inside the whole cell loop (measured).
    pub wall_secs: f64,
    /// `composes / wall_secs` (measured).
    pub composes_per_sec: f64,
}

impl LoadCellResult {
    /// The deterministic fingerprint: every model-time field, no
    /// wall-clock. Byte-identical across thread counts and processes for
    /// a fixed config.
    pub fn deterministic_key(&self) -> String {
        format!(
            "arrivals={} admitted={} rej_adm={} rej_qos={} other={} expired={} kills={} \
             rec_b={} rec_r={} abandoned={} peak={} shed={} hits={} misses={} inv={} \
             p50={:016x} p95={:016x} p99={:016x}",
            self.arrivals,
            self.admitted,
            self.rejected_admission,
            self.rejected_qos,
            self.failed_other,
            self.expired,
            self.churn_kills,
            self.recovered_backup,
            self.recovered_reactive,
            self.abandoned,
            self.peak_in_flight,
            self.shed_candidates,
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.setup_p50_ms.to_bits(),
            self.setup_p95_ms.to_bits(),
            self.setup_p99_ms.to_bits(),
        )
    }
}

/// Drives one open-loop load cell against a clone of `base`.
///
/// Per time unit: due session expiries and churn events fire through the
/// indexed event core, then every arrival in the unit is composed,
/// established (committing resources and selecting backups), and
/// scheduled for expiry. Rejections are counted by cause; crashes run
/// the full recovery path (backup switch, then reactive BCP, then
/// abandonment). All model-time outputs are deterministic for the config.
pub fn run_cell(base: &SpiderNet, cfg: &LoadConfig) -> LoadCellResult {
    let started = Instant::now();
    let mut net = base.clone();
    net.set_compose_caching(cfg.compose_caching);
    if cfg.bcp.shed_utilization < 1.0 {
        net.state_mut().set_shed_watermark(cfg.bcp.shed_utilization);
    }

    let mut arrivals = ArrivalSampler::new(cfg.arrivals.clone(), cfg.seed, "loadgen-arrivals");
    let mut req_rng = rng_for(cfg.seed, "loadgen-requests");
    let mut churn_rng = rng_for(cfg.seed, "loadgen-churn");
    let pool = provisioned_functions(net.registry());
    let zipf = ZipfSampler::new(pool.len(), cfg.zipf_exponent).expect("pool is non-empty");

    let mut core = EventCore::new();
    let expire = core.register_handler("session-expire");
    let revive = core.register_handler("peer-revive");

    let mut res = LoadCellResult::default();
    let mut setups: Vec<f64> = Vec::new();
    let mut in_flight = 0u64;
    let mut next_arrival = arrivals.next_arrival();

    for unit in 0..cfg.duration_units {
        // 1. Due events: expiries and revivals, in (time, insertion) order.
        for fired in core.pop_until(SimTime::from_secs(unit)) {
            if fired.handler == expire {
                if net.teardown(SessionId::new(fired.payload)).is_ok() {
                    res.expired += 1;
                    in_flight = in_flight.saturating_sub(1);
                }
            } else if fired.handler == revive {
                net.revive_peer(PeerId::new(fired.payload));
            }
        }

        // 2. Churn: one crash per period, recovery handled in full.
        if let Some(churn) = &cfg.churn {
            if churn.period > 0 && unit > 0 && unit % churn.period == 0 {
                let live = net.state().live_peers();
                if live.len() > 2 {
                    let victim = live[churn_rng.gen_range(0..live.len() as u64) as usize];
                    res.churn_kills += 1;
                    for (sid, outcome) in net.fail_peer(victim) {
                        match outcome {
                            FailureOutcome::RecoveredByBackup { .. } => res.recovered_backup += 1,
                            FailureOutcome::NeedsReactive => {
                                if net.reactive_recover(sid, &cfg.bcp) {
                                    res.recovered_reactive += 1;
                                } else {
                                    res.abandoned += 1;
                                    in_flight = in_flight.saturating_sub(1);
                                }
                            }
                        }
                    }
                    core.schedule(
                        SimTime::from_secs(unit + churn.revive_after.max(1)),
                        revive,
                        victim.raw(),
                    );
                }
            }
        }

        // 3. Arrivals due this unit, in arrival order.
        while next_arrival < (unit + 1) as f64 {
            res.arrivals += 1;
            let req =
                zipf_request(net.overlay(), net.registry(), &pool, &zipf, &cfg.request, &mut req_rng);
            let lifetime = sample_range(&mut req_rng, cfg.session_lifetime).max(1.0);
            match net.compose(&req, &cfg.bcp) {
                Ok(outcome) => {
                    let setup_ms = outcome.stats.discovery_ms + outcome.stats.probing_ms;
                    match net.establish(&req, outcome) {
                        Ok(sid) => {
                            res.admitted += 1;
                            setups.push(setup_ms);
                            in_flight += 1;
                            res.peak_in_flight = res.peak_in_flight.max(in_flight);
                            core.schedule(
                                SimTime::from_ms((next_arrival + lifetime) * 1_000.0),
                                expire,
                                sid.raw(),
                            );
                        }
                        Err(Error::AdmissionRejected { .. }) => res.rejected_admission += 1,
                        Err(Error::Network(_)) => res.rejected_admission += 1,
                        Err(_) => res.failed_other += 1,
                    }
                }
                Err(Error::AdmissionRejected { .. }) => res.rejected_admission += 1,
                Err(Error::NoQualifiedComposition) => res.rejected_qos += 1,
                Err(_) => res.failed_other += 1,
            }
            next_arrival = arrivals.next_arrival();
        }

        // 4. Advance model time (sweeps overdue soft reservations).
        net.advance(SimDuration::from_secs(1));
    }

    let (hits, misses, invalidations) = net.compose_cache_stats();
    res.cache_hits = hits;
    res.cache_misses = misses;
    res.cache_invalidations = invalidations;
    res.shed_candidates = net.metrics().value(counter::LOAD_SHED);
    res.setup_p50_ms = percentile(&mut setups, 50.0);
    res.setup_p95_ms = percentile(&mut setups, 95.0);
    res.setup_p99_ms = percentile(&mut setups, 99.0);
    if setups.is_empty() {
        // NaN would poison byte-identical JSON; pin empty cells to 0.
        res.setup_p50_ms = 0.0;
        res.setup_p95_ms = 0.0;
        res.setup_p99_ms = 0.0;
    }
    res.goodput_per_unit = res.admitted as f64 / cfg.duration_units.max(1) as f64;
    res.rejection_rate = if res.arrivals > 0 {
        1.0 - res.admitted as f64 / res.arrivals as f64
    } else {
        0.0
    };
    res.composes = res.arrivals;
    res.wall_secs = started.elapsed().as_secs_f64();
    res.composes_per_sec =
        if res.wall_secs > 0.0 { res.composes as f64 / res.wall_secs } else { 0.0 };
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SpiderNet, SpiderNetConfig};
    use crate::workload::PopulationConfig;

    fn world() -> SpiderNet {
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: 300,
            peers: 60,
            seed: 17,
            ..SpiderNetConfig::default()
        });
        net.populate(&PopulationConfig { functions: 12, ..Default::default() });
        net
    }

    #[test]
    fn arrival_parse_round_trips() {
        for spec in [
            "poisson:rate=25",
            "diurnal:base=5,peak=40,period=100",
            "flash:base=5,peak=80,start=20,duration=10",
        ] {
            let p = ArrivalProcess::parse(spec).unwrap();
            assert_eq!(ArrivalProcess::parse(&p.label()).unwrap(), p);
        }
        assert!(ArrivalProcess::parse("poisson").is_err());
        assert!(ArrivalProcess::parse("poisson:rate=0").is_err());
        assert!(ArrivalProcess::parse("poisson:rate=nope").is_err());
        assert!(ArrivalProcess::parse("storm:rate=3").is_err());
        // Defaults fill in the optional keys.
        assert_eq!(
            ArrivalProcess::parse("flash:base=1,peak=9").unwrap(),
            ArrivalProcess::FlashCrowd { base: 1.0, peak: 9.0, start: 0.0, duration: 10.0 }
        );
    }

    #[test]
    fn poisson_interarrivals_match_rate() {
        let mut s = ArrivalSampler::new(ArrivalProcess::Poisson { rate: 50.0 }, 7, "t");
        let n = 20_000;
        let mut last = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = s.next_arrival();
            assert!(t > last);
            sum += t - last;
            last = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0 / 50.0).abs() < 0.002, "mean interarrival {mean}");
    }

    #[test]
    fn flash_crowd_bursts_and_diurnal_oscillates() {
        let flash =
            ArrivalProcess::FlashCrowd { base: 2.0, peak: 60.0, start: 50.0, duration: 10.0 };
        let mut s = ArrivalSampler::new(flash, 9, "t");
        let mut in_burst = 0u32;
        let mut before = 0u32;
        loop {
            let t = s.next_arrival();
            if t >= 60.0 {
                break;
            }
            if t < 50.0 {
                before += 1;
            } else {
                in_burst += 1;
            }
        }
        // 50 units at rate 2 ≈ 100 arrivals; 10 units at 60 ≈ 600.
        assert!(in_burst > before * 2, "burst {in_burst} vs background {before}");

        let diurnal = ArrivalProcess::Diurnal { base: 1.0, peak: 30.0, period: 40.0 };
        assert!(diurnal.rate_at(0.0) < 1.5);
        assert!(diurnal.rate_at(20.0) > 29.0, "mid-period must hit the peak");
        assert!(diurnal.rate_at(40.0) < 1.5, "full period returns to base");
    }

    #[test]
    fn zipf_skews_toward_head_ranks() {
        let z = ZipfSampler::new(50, 1.2).unwrap();
        let mut rng = rng_for(3, "zipf");
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        // Uniform degenerates: head and tail within noise of each other.
        let u = ZipfSampler::new(50, 0.0).unwrap();
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[u.sample(&mut rng)] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*hi < 2 * *lo, "uniform Zipf is skewed: {lo}..{hi}");
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(5, -1.0).is_err());
    }

    #[test]
    fn zipf_requests_are_valid_and_deduplicated() {
        let net = world();
        let pool = provisioned_functions(net.registry());
        let zipf = ZipfSampler::new(pool.len(), 1.5).unwrap();
        let mut rng = rng_for(11, "req");
        for _ in 0..100 {
            let req = zipf_request(
                net.overlay(),
                net.registry(),
                &pool,
                &zipf,
                &RequestConfig::default(),
                &mut rng,
            );
            req.validate().unwrap();
            let mut fs: Vec<u64> =
                req.function_graph.functions().iter().map(|f| f.raw()).collect();
            fs.sort_unstable();
            fs.dedup();
            assert_eq!(fs.len(), req.function_graph.len(), "duplicate function in request");
        }
    }

    #[test]
    fn load_cell_admits_expires_and_is_deterministic() {
        let base = world();
        let cfg = LoadConfig {
            arrivals: ArrivalProcess::Poisson { rate: 6.0 },
            duration_units: 30,
            session_lifetime: (2.0, 6.0),
            seed: 21,
            ..LoadConfig::default()
        };
        let a = run_cell(&base, &cfg);
        assert!(a.arrivals > 100, "open loop generated almost nothing: {}", a.arrivals);
        assert!(a.admitted > 0, "nothing admitted");
        assert!(a.expired > 0, "no session expired over 30 units");
        assert!(a.peak_in_flight > 1, "sessions never overlapped");
        assert!(a.setup_p50_ms > 0.0 && a.setup_p99_ms >= a.setup_p50_ms);
        assert_eq!(a.arrivals, a.admitted + a.rejected_admission + a.rejected_qos + a.failed_other);
        let b = run_cell(&base, &cfg);
        assert_eq!(a.deterministic_key(), b.deterministic_key());
    }

    #[test]
    fn cached_cell_reproduces_uncached_admissions() {
        let base = world();
        let cfg = LoadConfig {
            arrivals: ArrivalProcess::Poisson { rate: 5.0 },
            duration_units: 20,
            seed: 33,
            ..LoadConfig::default()
        };
        let off = run_cell(&base, &cfg);
        let on = run_cell(&base, &LoadConfig { compose_caching: true, ..cfg });
        // The cache must be invisible in model-time results…
        assert_eq!(off.admitted, on.admitted);
        assert_eq!(off.rejected_admission, on.rejected_admission);
        assert_eq!(off.rejected_qos, on.rejected_qos);
        assert_eq!(off.setup_p50_ms.to_bits(), on.setup_p50_ms.to_bits());
        assert_eq!(off.setup_p99_ms.to_bits(), on.setup_p99_ms.to_bits());
        // …while actually being exercised.
        assert_eq!(off.cache_hits + off.cache_misses, 0, "cache ran while disabled");
        assert!(on.cache_hits > 0, "cache never hit under duplicate-function pressure");
    }

    #[test]
    fn churn_under_load_recovers_sessions() {
        let base = world();
        let cfg = LoadConfig {
            arrivals: ArrivalProcess::Poisson { rate: 6.0 },
            duration_units: 30,
            session_lifetime: (8.0, 15.0),
            seed: 5,
            churn: Some(ChurnConfig { period: 5, revive_after: 3 }),
            ..LoadConfig::default()
        };
        let res = run_cell(&base, &cfg);
        assert!(res.churn_kills >= 4, "churn plan barely fired: {}", res.churn_kills);
        assert!(res.admitted > 0);
        // Determinism holds under churn + recovery too.
        assert_eq!(res.deterministic_key(), run_cell(&base, &cfg).deterministic_key());
    }
}
