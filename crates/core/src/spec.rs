//! Declarative composite-request specification.
//!
//! The paper's users author function graphs in QoSTalk, an XML-based
//! visual specification environment [13, 23]. This module provides the
//! textual equivalent: a small line-oriented format covering everything a
//! [`CompositionRequest`] needs, parsed without external dependencies.
//!
//! ```text
//! # comments and blank lines are ignored
//! function transcode        # node 0
//! function scale            # node 1
//! function watermark        # node 2
//! dep 0 -> 1                # dependency link
//! dep 1 -> 2
//! commute 1 2               # commutation link: order exchangeable
//! max_delay_ms 400
//! max_loss 0.05
//! bandwidth_mbps 1.0
//! max_failure_prob 0.1
//! ```
//!
//! Function names are interned into the catalog at parse time, so a spec
//! can be written before any replica registers.

use crate::model::component::FunctionCatalog;
use crate::model::function_graph::FunctionGraph;
use crate::model::request::CompositionRequest;
use spidernet_util::error::{Error, Result};
use spidernet_util::id::{FunctionId, PeerId};
use spidernet_util::qos::{loss_to_additive, QosRequirement};

/// A parsed specification, independent of endpoints.
#[derive(Clone, Debug)]
pub struct RequestSpec {
    /// The function graph.
    pub function_graph: FunctionGraph,
    /// End-to-end delay bound, ms.
    pub max_delay_ms: f64,
    /// End-to-end loss bound, probability.
    pub max_loss: f64,
    /// Stream bandwidth, Mbit/s.
    pub bandwidth_mbps: f64,
    /// Failure-probability bound.
    pub max_failure_prob: f64,
}

impl RequestSpec {
    /// Instantiates the spec into a request between two peers.
    pub fn into_request(self, source: PeerId, dest: PeerId) -> Result<CompositionRequest> {
        let req = CompositionRequest {
            source,
            dest,
            function_graph: self.function_graph,
            qos_req: QosRequirement::new(vec![
                self.max_delay_ms,
                loss_to_additive(self.max_loss),
            ])?,
            bandwidth_mbps: self.bandwidth_mbps,
            max_failure_prob: self.max_failure_prob,
        };
        req.validate()?;
        Ok(req)
    }
}

fn bad(line_no: usize, msg: impl std::fmt::Display) -> Error {
    Error::InvalidRequirement(format!("spec line {line_no}: {msg}"))
}

fn parse_f64(line_no: usize, token: &str, what: &str) -> Result<f64> {
    token
        .parse::<f64>()
        .map_err(|_| bad(line_no, format!("{what} is not a number: {token:?}")))
}

fn parse_idx(line_no: usize, token: &str, n: usize) -> Result<usize> {
    let i = token
        .parse::<usize>()
        .map_err(|_| bad(line_no, format!("node index is not an integer: {token:?}")))?;
    if i >= n {
        return Err(bad(line_no, format!("node index {i} out of range (have {n} functions)")));
    }
    Ok(i)
}

/// Parses a spec, interning function names into `catalog`.
pub fn parse_spec(text: &str, catalog: &mut FunctionCatalog) -> Result<RequestSpec> {
    let mut functions: Vec<FunctionId> = Vec::new();
    let mut deps: Vec<(usize, usize)> = Vec::new();
    let mut commutations: Vec<(usize, usize)> = Vec::new();
    let mut max_delay_ms: Option<f64> = None;
    let mut max_loss: Option<f64> = None;
    let mut bandwidth_mbps: Option<f64> = None;
    let mut max_failure_prob: f64 = 1.0;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "function" => {
                let [name] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: function <name>"));
                };
                functions.push(catalog.intern(name));
            }
            "dep" => {
                let [a, arrow, b] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: dep <i> -> <j>"));
                };
                if *arrow != "->" {
                    return Err(bad(line_no, "expected '->' between node indices"));
                }
                deps.push((
                    parse_idx(line_no, a, functions.len())?,
                    parse_idx(line_no, b, functions.len())?,
                ));
            }
            "commute" => {
                let [a, b] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: commute <i> <j>"));
                };
                commutations.push((
                    parse_idx(line_no, a, functions.len())?,
                    parse_idx(line_no, b, functions.len())?,
                ));
            }
            "max_delay_ms" => {
                let [v] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: max_delay_ms <ms>"));
                };
                max_delay_ms = Some(parse_f64(line_no, v, "delay bound")?);
            }
            "max_loss" => {
                let [v] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: max_loss <p>"));
                };
                let p = parse_f64(line_no, v, "loss bound")?;
                if !(0.0..1.0).contains(&p) {
                    return Err(bad(line_no, format!("loss bound {p} outside [0, 1)")));
                }
                max_loss = Some(p);
            }
            "bandwidth_mbps" => {
                let [v] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: bandwidth_mbps <rate>"));
                };
                bandwidth_mbps = Some(parse_f64(line_no, v, "bandwidth")?);
            }
            "max_failure_prob" => {
                let [v] = rest.as_slice() else {
                    return Err(bad(line_no, "expected: max_failure_prob <p>"));
                };
                max_failure_prob = parse_f64(line_no, v, "failure bound")?;
            }
            other => return Err(bad(line_no, format!("unknown keyword {other:?}"))),
        }
    }

    if functions.is_empty() {
        return Err(Error::InvalidRequirement("spec declares no functions".into()));
    }
    // A spec without dependency links means a linear chain in declaration
    // order — the common case.
    if deps.is_empty() && functions.len() > 1 {
        deps = (0..functions.len() - 1).map(|i| (i, i + 1)).collect();
    }
    let function_graph = FunctionGraph::new(functions, deps, commutations)?;

    Ok(RequestSpec {
        function_graph,
        max_delay_ms: max_delay_ms
            .ok_or_else(|| Error::InvalidRequirement("spec missing max_delay_ms".into()))?,
        max_loss: max_loss
            .ok_or_else(|| Error::InvalidRequirement("spec missing max_loss".into()))?,
        bandwidth_mbps: bandwidth_mbps
            .ok_or_else(|| Error::InvalidRequirement("spec missing bandwidth_mbps".into()))?,
        max_failure_prob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "
        # pervasive content distribution
        function transcode
        function scale     # node 1
        function watermark
        dep 0 -> 1
        dep 1 -> 2
        commute 1 2
        max_delay_ms 400
        max_loss 0.05
        bandwidth_mbps 1.5
        max_failure_prob 0.1
    ";

    #[test]
    fn parses_a_complete_spec() {
        let mut cat = FunctionCatalog::new();
        let spec = parse_spec(GOOD, &mut cat).unwrap();
        assert_eq!(spec.function_graph.len(), 3);
        assert_eq!(spec.function_graph.deps(), &[(0, 1), (1, 2)]);
        assert_eq!(spec.function_graph.commutations(), &[(1, 2)]);
        assert_eq!(spec.max_delay_ms, 400.0);
        assert_eq!(spec.max_loss, 0.05);
        assert_eq!(cat.lookup("scale"), Some(spec.function_graph.function(1)));
        // Two composition patterns from the commutation link.
        assert_eq!(spec.function_graph.patterns().len(), 2);
    }

    #[test]
    fn spec_converts_to_valid_request() {
        let mut cat = FunctionCatalog::new();
        let req = parse_spec(GOOD, &mut cat)
            .unwrap()
            .into_request(PeerId::new(0), PeerId::new(9))
            .unwrap();
        assert_eq!(req.bandwidth_mbps, 1.5);
        assert!(req.qos_req.bounds()[0] == 400.0);
        req.validate().unwrap();
    }

    #[test]
    fn missing_deps_default_to_linear_chain() {
        let mut cat = FunctionCatalog::new();
        let spec = parse_spec(
            "function a\nfunction b\nfunction c\nmax_delay_ms 100\nmax_loss 0.1\nbandwidth_mbps 1",
            &mut cat,
        )
        .unwrap();
        assert!(spec.function_graph.is_linear());
        assert_eq!(spec.function_graph.deps(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn default_failure_bound_is_permissive() {
        let mut cat = FunctionCatalog::new();
        let spec = parse_spec(
            "function a\nmax_delay_ms 100\nmax_loss 0.1\nbandwidth_mbps 1",
            &mut cat,
        )
        .unwrap();
        assert_eq!(spec.max_failure_prob, 1.0);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let mut cat = FunctionCatalog::new();
        let err = parse_spec("function a\nbogus keyword here", &mut cat).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_spec("function a\ndep 0 -> 5\nmax_delay_ms 1", &mut cat).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = parse_spec("function a\ndep 0 to 0", &mut cat).unwrap_err();
        assert!(err.to_string().contains("'->'"), "{err}");
    }

    #[test]
    fn missing_required_fields_rejected() {
        let mut cat = FunctionCatalog::new();
        for missing in [
            "function a\nmax_loss 0.1\nbandwidth_mbps 1",     // no delay
            "function a\nmax_delay_ms 10\nbandwidth_mbps 1",  // no loss
            "function a\nmax_delay_ms 10\nmax_loss 0.1",      // no bandwidth
            "max_delay_ms 10\nmax_loss 0.1\nbandwidth_mbps 1", // no functions
        ] {
            assert!(parse_spec(missing, &mut cat).is_err(), "accepted: {missing}");
        }
    }

    #[test]
    fn invalid_numbers_and_domains_rejected() {
        let mut cat = FunctionCatalog::new();
        assert!(parse_spec("function a\nmax_delay_ms abc", &mut cat).is_err());
        assert!(parse_spec(
            "function a\nmax_delay_ms 10\nmax_loss 1.5\nbandwidth_mbps 1",
            &mut cat
        )
        .is_err());
    }

    #[test]
    fn cyclic_spec_rejected_by_graph_validation() {
        let mut cat = FunctionCatalog::new();
        let err = parse_spec(
            "function a\nfunction b\ndep 0 -> 1\ndep 1 -> 0\nmax_delay_ms 1\nmax_loss 0.1\nbandwidth_mbps 1",
            &mut cat,
        );
        assert!(matches!(err, Err(Error::InvalidFunctionGraph(_))));
    }
}
