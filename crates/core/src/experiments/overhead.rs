//! §6.1 claim — "Compared to the global-view-based centralized scheme,
//! SpiderNet can achieve similar performance but with more than one order
//! of magnitude less overhead since SpiderNet does not perform periodical
//! global view maintenance."
//!
//! Both schemes are charged in the same currency: **overlay-level message
//! transmissions per simulated horizon**.
//!
//! * SpiderNet: BCP probes (one transmission per spawned probe), DHT
//!   discovery messages (one per routing hop), session control, and backup
//!   maintenance — all on demand, proportional to the request rate.
//! * Centralized: every peer ships a state update to the central composer
//!   every update period; each update costs the overlay path length (in
//!   hops) from the peer to the composer. This cost is paid regardless of
//!   demand and scales with N — which is exactly why the paper's 1,000-peer
//!   setting yields the order-of-magnitude gap.

use crate::baselines::centralized_state_messages;
use crate::bcp::{BcpConfig, QuotaPolicy};
use crate::paths::PathTable;
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_sim::metrics::counter;
use spidernet_util::id::PeerId;
use spidernet_util::par::par_map_with;
use spidernet_util::rng::rng_for;
use std::fmt;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct OverheadConfig {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers. The centralized scheme's cost scales with this.
    pub peers: usize,
    /// Function pool size.
    pub functions: usize,
    /// Master seed.
    pub seed: u64,
    /// Time units simulated.
    pub duration_units: u64,
    /// Composition requests per time unit.
    pub requests_per_unit: u64,
    /// Session lifetime, time units (keeps maintenance load steady-state).
    pub session_lifetime_units: u64,
    /// Centralized scheme's state-update period, time units. Dynamic P2P
    /// networks force frequent updates to keep state fresh; 1 is the
    /// faithful setting.
    pub update_period_units: u64,
    /// BCP budget per request.
    pub budget: u32,
    /// Worker threads for the per-peer hop-count fan-out (`None` =
    /// environment / all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            ip_nodes: 2_000,
            peers: 1_000,
            functions: 100,
            seed: 5,
            duration_units: 100,
            requests_per_unit: 2,
            session_lifetime_units: 20,
            update_period_units: 1,
            budget: 20,
            threads: None,
        }
    }
}

/// The measured comparison.
#[derive(Clone, Debug)]
pub struct OverheadResult {
    /// BCP probe messages.
    pub probe_messages: u64,
    /// DHT discovery messages.
    pub dht_messages: u64,
    /// Backup maintenance messages.
    pub maintenance_messages: u64,
    /// Session control (ack/teardown) messages.
    pub control_messages: u64,
    /// Total SpiderNet messages.
    pub spidernet_total: u64,
    /// Mean overlay hops from a peer to the central composer.
    pub mean_update_hops: f64,
    /// Centralized global-state update messages over the same horizon.
    pub centralized_total: u64,
    /// centralized / spidernet.
    pub ratio: f64,
    /// Probes spent per composition session `(session id, probes)`,
    /// ascending by session — the per-session rows the `--trace-json`
    /// exporter publishes.
    pub session_probes: Vec<(u64, u64)>,
}

impl fmt::Display for OverheadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Overhead — SpiderNet vs centralized global-state scheme")?;
        writeln!(f, "spidernet probes:      {:>12}", self.probe_messages)?;
        writeln!(f, "spidernet dht:         {:>12}", self.dht_messages)?;
        writeln!(f, "spidernet maintenance: {:>12}", self.maintenance_messages)?;
        writeln!(f, "spidernet control:     {:>12}", self.control_messages)?;
        writeln!(f, "spidernet total:       {:>12}", self.spidernet_total)?;
        writeln!(f, "mean update hops:      {:>12.2}", self.mean_update_hops)?;
        writeln!(f, "centralized total:     {:>12}", self.centralized_total)?;
        writeln!(f, "overhead ratio:        {:>12.1}x", self.ratio)
    }
}

impl OverheadResult {
    /// CSV rendering: one `metric,value` pair per line.
    pub fn to_csv(&self) -> String {
        format!(
            "metric,value\nprobes,{}\ndht,{}\nmaintenance,{}\ncontrol,{}\nspidernet_total,{}\ncentralized_total,{}\nratio,{:.3}\n",
            self.probe_messages,
            self.dht_messages,
            self.maintenance_messages,
            self.control_messages,
            self.spidernet_total,
            self.centralized_total,
            self.ratio
        )
    }
}

/// Runs the comparison.
pub fn run(cfg: &OverheadConfig) -> OverheadResult {
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        ..SpiderNetConfig::default()
    });
    net.populate(&PopulationConfig { functions: cfg.functions, ..PopulationConfig::default() });
    net.reset_metrics(); // registration cost excluded from both sides
    net.set_session_tracking(true); // per-session probe rows for the exporter

    // Mean overlay path length from peers to the central composer (peer 0):
    // the per-update transmission cost of the centralized scheme. Each
    // peer's SSSP is independent, so the hop counts fan out across the
    // worker threads (the simulation loop below is inherently sequential —
    // every request mutates the shared resource state).
    let mean_update_hops = {
        let composer = PeerId::new(0);
        let sources: Vec<PeerId> = net.overlay().peers().filter(|&p| p != composer).collect();
        let overlay = net.overlay();
        let hops = par_map_with(super::resolve_threads(cfg.threads), sources, |_, p| {
            let mut paths = PathTable::new();
            paths.peer_path(overlay, p, composer).map(|path| path.len() - 1)
        });
        let counted = hops.iter().flatten().count();
        let total_hops: usize = hops.iter().flatten().sum();
        total_hops as f64 / counted.max(1) as f64
    };

    let req_cfg = RequestConfig { functions: (2, 4), ..RequestConfig::default() };
    let mut rng = rng_for(cfg.seed, "overhead");
    let bcp = BcpConfig { budget: cfg.budget, quota: QuotaPolicy::Uniform(4), ..BcpConfig::default() };

    let mut active: Vec<(u64, spidernet_util::id::SessionId)> = Vec::new();
    for unit in 0..cfg.duration_units {
        // Teardown expired sessions.
        let (expired, rest): (Vec<_>, Vec<_>) = active.into_iter().partition(|(end, _)| *end <= unit);
        active = rest;
        for (_, id) in expired {
            let _ = net.teardown(id);
        }
        for _ in 0..cfg.requests_per_unit {
            let req = random_request(net.overlay(), net.registry(), &req_cfg, &mut rng);
            if let Ok(outcome) = net.compose(&req, &bcp) {
                if let Ok(id) = net.establish(&req, outcome) {
                    active.push((unit + cfg.session_lifetime_units, id));
                }
            }
        }
        net.maintenance_tick();
    }

    let probe_messages = net.metrics().value(counter::PROBES);
    let dht_messages = net.metrics().value(counter::DHT_MESSAGES);
    let maintenance_messages = net.metrics().value(counter::MAINTENANCE);
    let control_messages = net.metrics().value(counter::CONTROL);
    let spidernet_total = probe_messages + dht_messages + maintenance_messages + control_messages;
    let probe_handle = net.obs().counters.probes;
    let session_probes: Vec<(u64, u64)> = net
        .metrics()
        .sessions()
        .map(|(sid, _)| (sid, net.metrics().session_value(sid, probe_handle)))
        .collect();
    let centralized_total = (centralized_state_messages(
        cfg.peers as u64,
        cfg.duration_units,
        cfg.update_period_units,
    ) as f64
        * mean_update_hops)
        .round() as u64;

    OverheadResult {
        probe_messages,
        dht_messages,
        maintenance_messages,
        control_messages,
        spidernet_total,
        mean_update_hops,
        centralized_total,
        ratio: centralized_total as f64 / spidernet_total.max(1) as f64,
        session_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(peers: usize) -> OverheadConfig {
        OverheadConfig {
            ip_nodes: 600,
            peers,
            functions: 20,
            duration_units: 40,
            requests_per_unit: 1,
            session_lifetime_units: 10,
            budget: 12,
            ..OverheadConfig::default()
        }
    }

    #[test]
    fn centralized_cost_scales_with_peers_spidernet_does_not() {
        let a = run(&small(100));
        let b = run(&small(300));
        // Centralized triples with the population; SpiderNet's demand-driven
        // cost stays in the same ballpark, so the advantage widens.
        assert!(b.centralized_total > 2 * a.centralized_total);
        assert!(
            b.ratio > a.ratio,
            "advantage must widen with N: {:.1}x → {:.1}x",
            a.ratio,
            b.ratio
        );
    }

    #[test]
    fn spidernet_wins_clearly_at_scale() {
        let res = run(&small(300));
        assert!(res.spidernet_total > 0, "no messages accounted");
        assert!(
            res.ratio > 2.0,
            "expected a clear advantage even at 300 peers, got {:.1}x ({} vs {})",
            res.ratio,
            res.centralized_total,
            res.spidernet_total
        );
        assert!(res.mean_update_hops >= 1.0);
        assert!(res.to_string().contains("overhead ratio"));
    }

    #[test]
    fn csv_lists_all_counters() {
        let res = run(&small(100));
        let csv = res.to_csv();
        for key in ["probes", "dht", "maintenance", "control", "spidernet_total", "centralized_total", "ratio"] {
            assert!(csv.contains(key), "missing {key} in csv");
        }
    }

    #[test]
    fn totals_add_up() {
        let res = run(&small(100));
        assert_eq!(
            res.spidernet_total,
            res.probe_messages + res.dht_messages + res.maintenance_messages
                + res.control_messages
        );
        // Every probe was spent inside some composition session.
        assert!(!res.session_probes.is_empty());
        let per_session: u64 = res.session_probes.iter().map(|&(_, p)| p).sum();
        assert_eq!(per_session, res.probe_messages);
    }
}
