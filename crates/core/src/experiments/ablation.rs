//! Quality ablations of the design choices DESIGN.md calls out.
//!
//! Three studies, each isolating one mechanism:
//!
//! 1. **Commutation links** — the same workload with exchangeable middle
//!    functions vs the identical graphs with commutations stripped.
//!    SpiderNet's claim: exploring exchangeable orders finds better
//!    (lower-ψ / lower-delay) compositions.
//! 2. **Probing-quota policy** — uniform α vs replica-proportional α at a
//!    fixed small budget. The paper motivates differentiated quotas for
//!    functions with more duplicates.
//! 3. **Trust-aware selection** (the §8 extension) — a population with
//!    adversarial (failure-prone, distrusted) hosts, composed with
//!    `w_trust = 0` vs a strong trust weight. Metric: how often the
//!    selected graph touches an adversarial host.

use crate::bcp::{BcpConfig, QuotaPolicy};
use crate::model::function_graph::FunctionGraph;
use crate::model::request::CompositionRequest;
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::trust::Experience;
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_util::id::PeerId;
use spidernet_util::qos::dim;
use spidernet_util::rng::rng_for;
use spidernet_util::stats::Summary;
use std::fmt;

/// Ablation study parameters.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Function pool.
    pub functions: usize,
    /// Master seed.
    pub seed: u64,
    /// Requests per study arm.
    pub requests: usize,
    /// Worker threads for the study/arm fan-out (`None` = environment /
    /// all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            ip_nodes: 600,
            peers: 120,
            functions: 20,
            seed: 3,
            requests: 60,
            threads: None,
        }
    }
}

/// Results of the three studies.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// (mean delay with commutation, without) over requests where both
    /// composed, plus the count compared.
    pub commutation_delay_ms: (f64, f64, usize),
    /// Mean best-candidate delay, ms (uniform quota, replica-proportional
    /// quota) at the same tight budget.
    pub quota_delay_ms: (f64, f64),
    /// Fraction of selected graphs touching an adversarial host
    /// (trust-blind, trust-aware).
    pub trust_adversarial_rate: (f64, f64),
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Ablations")?;
        let (with_c, without_c, n) = self.commutation_delay_ms;
        writeln!(
            f,
            "commutation:   mean best delay {with_c:.1} ms with exchangeable orders vs {without_c:.1} ms fixed ({n} requests)"
        )?;
        let (u, r) = self.quota_delay_ms;
        writeln!(f, "quota policy:  mean best delay {u:.1} ms uniform vs {r:.1} ms replica-proportional")?;
        let (blind, aware) = self.trust_adversarial_rate;
        writeln!(
            f,
            "trust:         adversarial-host selection rate {blind:.3} blind vs {aware:.3} trust-aware"
        )
    }
}

fn build(cfg: &AblationConfig, label: &str) -> SpiderNet {
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: spidernet_util::rng::derive_seed(cfg.seed, label),
        ..SpiderNetConfig::default()
    });
    net.populate(&PopulationConfig { functions: cfg.functions, ..PopulationConfig::default() });
    net
}

fn loose(cfg_fns: (usize, usize)) -> RequestConfig {
    RequestConfig {
        functions: cfg_fns,
        delay_bound_ms: (3_000.0, 4_000.0),
        loss_bound: (0.3, 0.4),
        max_failure_prob: 1.0,
        ..RequestConfig::default()
    }
}

/// Study 1: commutation on/off.
fn commutation(cfg: &AblationConfig) -> (f64, f64, usize) {
    let mut net = build(cfg, "ablation-commutation");
    let mut rng = rng_for(cfg.seed, "ablation-commutation-req");
    let req_cfg = RequestConfig { dag_probability: 0.0, ..loose((4, 4)) };
    let bcp = BcpConfig { budget: 48, merge_cap: 512, ..BcpConfig::default() };
    let mut with_sum = Summary::new();
    let mut without_sum = Summary::new();
    let mut compared = 0;
    for _ in 0..cfg.requests {
        let base = random_request(net.overlay(), net.registry(), &req_cfg, &mut rng);
        let funcs = base.function_graph.functions().to_vec();
        let chain_deps: Vec<(usize, usize)> = (0..3).map(|i| (i, i + 1)).collect();
        let with_commute = CompositionRequest {
            function_graph: FunctionGraph::new(funcs.clone(), chain_deps.clone(), vec![(1, 2)])
                .expect("valid"),
            ..base.clone()
        };
        let without = CompositionRequest {
            function_graph: FunctionGraph::new(funcs, chain_deps, vec![]).expect("valid"),
            ..base
        };
        let (Ok(a), Ok(b)) = (net.compose(&with_commute, &bcp), net.compose(&without, &bcp))
        else {
            continue;
        };
        // Best delay among qualified candidates, the Fig. 11 metric.
        let best = |o: &crate::bcp::CompositionOutcome| {
            o.qualified_pool
                .iter()
                .map(|(_, e)| e.qos[dim::DELAY_MS])
                .fold(o.eval.qos[dim::DELAY_MS], f64::min)
        };
        with_sum.record(best(&a));
        without_sum.record(best(&b));
        compared += 1;
    }
    (with_sum.mean(), without_sum.mean(), compared)
}

/// One arm of study 2 (quota policy at a tight budget, measured on
/// composition quality where probe placement matters): mean
/// best-candidate delay under one policy.
fn quota_arm(cfg: &AblationConfig, policy: QuotaPolicy) -> f64 {
    let mut net = build(cfg, "ablation-quota");
    let mut rng = rng_for(cfg.seed, "ablation-quota-req");
    let bcp = BcpConfig { budget: 8, quota: policy, ..BcpConfig::default() };
    let mut sum = Summary::new();
    for _ in 0..cfg.requests {
        let req = random_request(net.overlay(), net.registry(), &loose((2, 4)), &mut rng);
        if let Ok(out) = net.compose(&req, &bcp) {
            let best = out
                .qualified_pool
                .iter()
                .map(|(_, e)| e.qos[dim::DELAY_MS])
                .fold(out.eval.qos[dim::DELAY_MS], f64::min);
            sum.record(best);
        }
    }
    sum.mean()
}

/// One arm of study 3: adversarial-host selection rate at one trust
/// weight.
fn trust_arm(cfg: &AblationConfig, w_trust: f64) -> f64 {
    let mut net = build(cfg, "ablation-trust");
    // A quarter of the peers are adversarial; the network has learned
    // this (poisoned reputations from many observers).
    let adversaries: Vec<PeerId> =
        (0..cfg.peers as u64).filter(|p| p % 4 == 0).map(PeerId::new).collect();
    for &a in &adversaries {
        for observer in 0..8u64 {
            for _ in 0..20 {
                net.trust_mut().record(PeerId::new(observer), a, Experience::Negative);
            }
        }
    }
    let mut rng = rng_for(cfg.seed, "ablation-trust-req");
    let bcp = BcpConfig { budget: 16, w_trust, ..BcpConfig::default() };
    let mut touched = 0usize;
    let mut composed = 0usize;
    for _ in 0..cfg.requests {
        let req = random_request(net.overlay(), net.registry(), &loose((2, 3)), &mut rng);
        if let Ok(out) = net.compose(&req, &bcp) {
            composed += 1;
            if adversaries.iter().any(|&a| out.best.contains_peer(a, net.registry())) {
                touched += 1;
            }
        }
    }
    if composed == 0 { 0.0 } else { touched as f64 / composed as f64 }
}

/// Study 3: trust-blind vs trust-aware under adversarial hosts.
#[cfg(test)]
fn trust(cfg: &AblationConfig) -> (f64, f64) {
    (trust_arm(cfg, 0.0), trust_arm(cfg, 4.0))
}

/// The five independent cells the ablation suite decomposes into (the
/// commutation study compares two requests per draw internally, so it is
/// a single cell).
#[derive(Clone, Copy, Debug)]
enum Cell {
    Commutation,
    Quota(QuotaPolicy),
    Trust(f64),
}

/// What one cell produced.
enum CellOut {
    Commutation((f64, f64, usize)),
    Scalar(f64),
}

/// Runs all three studies, fanning the five independent cells out across
/// the configured worker threads. Each cell builds its own network and
/// random streams from the master seed, so results are identical for any
/// thread count.
pub fn run(cfg: &AblationConfig) -> AblationResult {
    let cells = vec![
        Cell::Commutation,
        Cell::Quota(QuotaPolicy::Uniform(2)),
        Cell::Quota(QuotaPolicy::ReplicaFraction(0.4)),
        Cell::Trust(0.0),
        Cell::Trust(4.0),
    ];
    let mut outs = spidernet_util::par::par_map_with(
        super::resolve_threads(cfg.threads),
        cells,
        |_, cell| match cell {
            Cell::Commutation => CellOut::Commutation(commutation(cfg)),
            Cell::Quota(p) => CellOut::Scalar(quota_arm(cfg, p)),
            Cell::Trust(w) => CellOut::Scalar(trust_arm(cfg, w)),
        },
    )
    .into_iter();
    let commutation_delay_ms = match outs.next() {
        Some(CellOut::Commutation(c)) => c,
        _ => unreachable!("commutation cell is first"),
    };
    let mut scalar = || match outs.next() {
        Some(CellOut::Scalar(v)) => v,
        _ => unreachable!("scalar cell"),
    };
    AblationResult {
        commutation_delay_ms,
        quota_delay_ms: (scalar(), scalar()),
        trust_adversarial_rate: (scalar(), scalar()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig { ip_nodes: 300, peers: 60, functions: 10, requests: 15, ..Default::default() }
    }

    #[test]
    fn commutation_never_hurts_quality() {
        let (with_c, without_c, n) = commutation(&tiny());
        assert!(n > 0, "nothing compared");
        // Exploring a superset of orders cannot find a worse best *given
        // unlimited probing*; at a fixed budget β the extra pattern dilutes
        // per-pattern coverage, so allow sub-2% noise from that dilution.
        assert!(
            with_c <= without_c * 1.02 + 1e-6,
            "commutation worsened delay: {with_c} vs {without_c}"
        );
    }

    #[test]
    fn trust_awareness_reduces_adversarial_exposure() {
        let (blind, aware) = trust(&tiny());
        assert!(
            aware <= blind + 1e-9,
            "trust weighting increased adversarial exposure: {aware} vs {blind}"
        );
    }

    #[test]
    fn full_run_renders() {
        let res = run(&tiny());
        let text = res.to_string();
        assert!(text.contains("commutation"));
        assert!(text.contains("quota"));
        assert!(text.contains("trust"));
        let (u, r) = res.quota_delay_ms;
        assert!(u > 0.0 && r > 0.0);
    }
}
