//! Fig. 8 — composition success rate vs workload, five algorithms.
//!
//! The paper's setting: 10,000-node IP network, 1,000 peers each providing
//! \[1,3\] of 200 functions; during each time unit a configurable number of
//! composition requests arrives; each run lasts 2,000 time units. The
//! "QoS success rate" counts compositions that satisfy function, resource,
//! and QoS requirements. Algorithms: optimal (unbounded flooding),
//! probing-0.2 and probing-0.1 (BCP at 20% / 10% of the optimal probe
//! count), random, and static.
//!
//! Defaults below are scaled down (see [`Fig8Config::paper_scale`] for the
//! full-size run); the claim under test is the *ordering and shape*:
//! optimal ≈ probing-0.2 ≥ probing-0.1 ≫ random > static, with success
//! decaying as workload grows.

use crate::bcp::{BcpConfig, LookupMode, QuotaPolicy};
use crate::state::SessionAllocation;
use crate::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use crate::{recovery, selection};
use spidernet_sim::event_core::EventCore;
use spidernet_sim::metrics::{counter, MetricsRegistry};
use spidernet_sim::time::SimTime;
use spidernet_topology::overlay::GeoConfig;
use spidernet_util::arena::{SlotArena, SlotKey};
use spidernet_util::par::par_map_with;
use spidernet_util::rng::{rng_for, Rng};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// One competing algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Exhaustive flooding (global best), probe count Π Z_k.
    Optimal,
    /// BCP with budget = `fraction` × (optimal probe count).
    Probing(f64),
    /// Random functionally-qualified pick.
    Random,
    /// Fixed pre-defined pick.
    Static,
}

impl Algorithm {
    /// Stable label used in result rows (matches the paper's legend).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Optimal => "Optimal".into(),
            Algorithm::Probing(f) => format!("probing-{f}"),
            Algorithm::Random => "Random".into(),
            Algorithm::Static => "Static".into(),
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Function pool size.
    pub functions: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulated time units per run.
    pub duration_units: u64,
    /// Workload points: requests per time unit.
    pub workloads: Vec<u64>,
    /// Session lifetime in time units (uniform range).
    pub session_lifetime: (u64, u64),
    /// Request shape.
    pub request: RequestConfig,
    /// Component population shape.
    pub population: PopulationConfig,
    /// Enumeration cap for the optimal baseline (None = exact).
    pub optimal_cap: Option<u64>,
    /// Algorithms to run.
    pub algorithms: Vec<Algorithm>,
    /// Worker threads for the cell fan-out (`None` = environment /
    /// all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            ip_nodes: 1_000,
            peers: 200,
            functions: 40,
            seed: 8,
            duration_units: 100,
            workloads: vec![5, 10, 15, 20, 25],
            session_lifetime: (10, 30),
            request: RequestConfig { functions: (2, 4), ..RequestConfig::default() },
            population: PopulationConfig { functions: 40, ..PopulationConfig::default() },
            // Exact optimal by default: the branch-and-bound enumerator
            // makes the uncapped default grid affordable, so capping is now
            // opt-in (tests pin small caps to exercise the capped path).
            optimal_cap: None,
            algorithms: vec![
                Algorithm::Optimal,
                Algorithm::Probing(0.2),
                Algorithm::Probing(0.1),
                Algorithm::Random,
                Algorithm::Static,
            ],
            threads: None,
        }
    }
}

impl Fig8Config {
    /// The paper's full-size setting (minutes of runtime).
    pub fn paper_scale() -> Self {
        Fig8Config {
            ip_nodes: 10_000,
            peers: 1_000,
            functions: 200,
            duration_units: 2_000,
            workloads: vec![50, 100, 150, 200, 250],
            population: PopulationConfig { functions: 200, ..PopulationConfig::default() },
            optimal_cap: None,
            ..Fig8Config::default()
        }
    }
}

/// One row of the figure: success rate per algorithm at one workload.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Requests per time unit.
    pub workload: u64,
    /// Algorithm label → success rate in [0, 1].
    pub success: BTreeMap<String, f64>,
}

/// The regenerated figure.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// One row per workload point.
    pub rows: Vec<Fig8Row>,
    /// Probe transmissions summed across every cell — harness throughput
    /// accounting (for `BENCH_fig8.json`), not part of the figure.
    pub total_probes: u64,
    /// Protocol counters and histograms merged across every cell in
    /// (workload, algorithm) order — the `--trace-json` exporter's input.
    pub metrics: MetricsRegistry,
    /// Wall-clock seconds spent inside the optimal enumerator across every
    /// cell — bench accounting only, never part of the figure output.
    pub optimal_phase_secs: f64,
    /// Wall-clock seconds spent building and populating the shared world
    /// (done once; every cell clones it).
    pub build_secs: f64,
    /// Wall-clock seconds summed over the BCP probing cells only — the
    /// denominator for an honest probes/sec (optimal, random, and static
    /// cells transmit no probes, so folding their time into the rate
    /// understates probing throughput).
    pub probing_phase_secs: f64,
    /// Candidate combinations fully evaluated by the optimal enumerator,
    /// summed across cells.
    pub combos_examined: u64,
    /// Candidate combinations skipped by admissible pruning, summed
    /// across cells.
    pub combos_pruned: u64,
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fig. 8 — composition success rate vs workload")?;
        let labels: Vec<&String> =
            self.rows.first().map(|r| r.success.keys().collect()).unwrap_or_default();
        write!(f, "{:>10}", "workload")?;
        for l in &labels {
            write!(f, " {l:>14}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:>10}", row.workload)?;
            for l in &labels {
                write!(f, " {:>14.3}", row.success[*l])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Fig8Result {
    /// CSV rendering: `workload,<algorithm columns>`, one row per point.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let labels: Vec<&String> =
            self.rows.first().map(|r| r.success.keys().collect()).unwrap_or_default();
        out.push_str("workload");
        for l in &labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.workload.to_string());
            for l in &labels {
                out.push_str(&format!(",{:.4}", row.success[*l]));
            }
            out.push('\n');
        }
        out
    }
}

/// The per-request probe budget for a BCP fraction: `fraction × Π Z_k`,
/// floored at 1.
fn fraction_budget(net: &SpiderNet, req: &crate::model::request::CompositionRequest, fraction: f64) -> u32 {
    let combos: f64 = req
        .function_graph
        .functions()
        .iter()
        .map(|&f| net.registry().replicas(f).len() as f64)
        .product();
    ((combos * fraction).round() as u32).max(1)
}

/// Per-cell outputs, reassembled by [`run`] in cell order.
struct CellOut {
    rate: f64,
    probes: u64,
    optimal_secs: f64,
    cell_secs: f64,
    metrics: MetricsRegistry,
}

/// Runs one algorithm at one workload point against a clone of the shared
/// world. Cloning duplicates the built-and-populated state bit-for-bit, so
/// every cell still faces an identical network while the expensive
/// construction happens once per figure instead of once per cell.
fn run_cell(cfg: &Fig8Config, base: &SpiderNet, algo: Algorithm, workload: u64) -> CellOut {
    let cell_started = Instant::now();
    let mut net = base.clone();
    // The request stream is seeded identically for every algorithm so they
    // face the same demand.
    let mut req_rng: Rng = rng_for(cfg.seed, "fig8-requests");

    // Session expiry runs through the indexed event core: each committed
    // session schedules one expiry event (payload = its arena slot), and
    // each unit drains everything due. Events pop in (time, insertion)
    // order, which is exactly the order the old linear end-time scan
    // released allocations in, so the float fold over released resources
    // is unchanged.
    let mut expiry = EventCore::new();
    let expire = expiry.register_handler("session-expire");
    let mut live: SlotArena<SessionAllocation> = SlotArena::new();
    let mut successes = 0u64;
    let mut attempts = 0u64;
    let mut optimal_secs = 0.0f64;
    // One SSSP cache for the whole trial: session-demand paths repeat the
    // same sources across requests, so rebuilding a table per session
    // would redo identical Dijkstra runs.
    let mut paths = crate::paths::PathTable::new();

    for unit in 0..cfg.duration_units {
        // Expire finished sessions.
        for fired in expiry.pop_until(SimTime::from_secs(unit)) {
            if let Some(alloc) = live.remove(SlotKey::from_raw(fired.payload)) {
                net.state_mut().release(&alloc);
            }
        }

        for _ in 0..workload {
            let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
            let lifetime = {
                let (lo, hi) = cfg.session_lifetime;
                req_rng.gen_range(lo..=hi)
            };
            attempts += 1;

            // Each algorithm picks a graph; success = picked graph is
            // qualified AND its resources commit.
            let picked = match algo {
                Algorithm::Optimal => {
                    // Only the best graph is consumed here, so the
                    // pool-free policy applies: cost-bound pruning on, same
                    // best graph and evaluation as the full-pool run.
                    let started = Instant::now();
                    let picked = net
                        .compose_with(&req, &CompositionOptions::optimal_best_only(cfg.optimal_cap))
                        .ok()
                        .map(|o| (o.best, o.eval));
                    optimal_secs += started.elapsed().as_secs_f64();
                    picked
                }
                Algorithm::Probing(fraction) => {
                    let budget = fraction_budget(&net, &req, fraction);
                    let bcp = BcpConfig {
                        budget,
                        quota: QuotaPolicy::ReplicaFraction(fraction.max(0.05)),
                        merge_cap: 256,
                        lookup: LookupMode::Prefetch,
                        ..BcpConfig::default()
                    };
                    net.compose(&req, &bcp).ok().map(|o| (o.best, o.eval))
                }
                Algorithm::Random => net
                    .compose_with(&req, &CompositionOptions::random())
                    .ok()
                    .filter(|o| selection::is_qualified(&o.eval, &req))
                    .map(|o| (o.best, o.eval)),
                Algorithm::Static => net
                    .compose_with(&req, &CompositionOptions::static_())
                    .ok()
                    .filter(|o| selection::is_qualified(&o.eval, &req))
                    .map(|o| (o.best, o.eval)),
            };

            if let Some((graph, _)) = picked {
                // Commit the session's resources for its lifetime.
                let (peers, links) =
                    recovery::session_demands(&graph, &req, net.registry(), net.overlay(), &mut paths);
                if let Ok(alloc) = net.state_mut().commit(&peers, &links) {
                    let key = live.insert(alloc);
                    expiry.schedule(SimTime::from_secs(unit + lifetime), expire, key.to_raw());
                    successes += 1;
                }
            }
        }
    }
    let rate = successes as f64 / attempts.max(1) as f64;
    CellOut {
        rate,
        probes: net.metrics().value(counter::PROBES),
        optimal_secs,
        cell_secs: cell_started.elapsed().as_secs_f64(),
        metrics: net.metrics().clone(),
    }
}

/// Runs the full figure.
///
/// The network is built and populated once from the master seed; every
/// (workload, algorithm) cell clones that world and derives its own
/// request stream, so each cell is still an independent trial facing
/// byte-identical state while construction cost is paid once. The grid
/// fans out over the configured worker threads and reassembles by cell
/// index; the result is bit-identical for any thread count.
pub fn run(cfg: &Fig8Config) -> Fig8Result {
    let build_started = Instant::now();
    let mut base = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        ..SpiderNetConfig::default()
    });
    base.populate(&cfg.population);
    let build_secs = build_started.elapsed().as_secs_f64();

    let cells: Vec<(u64, Algorithm)> = cfg
        .workloads
        .iter()
        .flat_map(|&w| cfg.algorithms.iter().map(move |&a| (w, a)))
        .collect();
    let base = &base;
    let rates = par_map_with(super::resolve_threads(cfg.threads), cells, |_, (workload, algo)| {
        run_cell(cfg, base, algo, workload)
    });

    let mut rows = Vec::with_capacity(cfg.workloads.len());
    let mut total_probes = 0u64;
    let mut optimal_phase_secs = 0.0f64;
    let mut probing_phase_secs = 0.0f64;
    let mut metrics = MetricsRegistry::new();
    let mut it = rates.into_iter();
    for &workload in &cfg.workloads {
        let mut success = BTreeMap::new();
        for &algo in &cfg.algorithms {
            let cell = it.next().expect("one rate per cell");
            total_probes += cell.probes;
            optimal_phase_secs += cell.optimal_secs;
            if matches!(algo, Algorithm::Probing(_)) {
                probing_phase_secs += cell.cell_secs;
            }
            metrics.merge(&cell.metrics);
            success.insert(algo.label(), cell.rate);
        }
        rows.push(Fig8Row { workload, success });
    }
    let combos_examined = metrics.value(counter::COMBOS_EXAMINED);
    let combos_pruned = metrics.value(counter::COMBOS_PRUNED);
    Fig8Result {
        rows,
        total_probes,
        metrics,
        optimal_phase_secs,
        build_secs,
        probing_phase_secs,
        combos_examined,
        combos_pruned,
    }
}

/// Wall-time comparison of the naive reference enumerator against the
/// branch-and-bound rewrite.
///
/// Both sides face the identical request stream (the same one
/// [`run`]'s cells derive from `cfg.seed`) on identically built,
/// freshly populated networks, under the same enumeration cap — so the
/// considered-combination semantics match: naive examines exactly the
/// capped combination count, and branch-and-bound's `examined + pruned`
/// equals that same count.
#[derive(Clone, Debug)]
pub struct OptimalPhaseBench {
    /// Requests composed per side.
    pub requests: u64,
    /// Seconds the naive enumerator spent composing.
    pub naive_secs: f64,
    /// Seconds the branch-and-bound enumerator spent composing.
    pub bb_secs: f64,
    /// `naive_secs / bb_secs` (0.0 when `bb_secs` is 0).
    pub speedup: f64,
    /// Combinations fully evaluated by branch-and-bound.
    pub combos_examined: u64,
    /// Combinations skipped by admissible pruning.
    pub combos_pruned: u64,
}

/// Runs the optimal-phase bench: `requests` compositions through the
/// naive enumerator, then the same stream through branch-and-bound.
pub fn optimal_phase_bench(cfg: &Fig8Config, requests: u64) -> OptimalPhaseBench {
    let base = {
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: cfg.ip_nodes,
            peers: cfg.peers,
            seed: cfg.seed,
            ..SpiderNetConfig::default()
        });
        net.populate(&cfg.population);
        net
    };
    let build = || base.clone();
    let reqs: Vec<_> = {
        let net = build();
        let mut rng: Rng = rng_for(cfg.seed, "fig8-requests");
        (0..requests)
            .map(|_| random_request(net.overlay(), net.registry(), &cfg.request, &mut rng))
            .collect()
    };

    let mut net = build();
    let started = Instant::now();
    for req in &reqs {
        let _ = net.compose_optimal_naive(req, cfg.optimal_cap);
    }
    let naive_secs = started.elapsed().as_secs_f64();

    let mut net = build();
    let started = Instant::now();
    for req in &reqs {
        let _ = net.compose_with(req, &CompositionOptions::optimal_best_only(cfg.optimal_cap));
    }
    let bb_secs = started.elapsed().as_secs_f64();

    OptimalPhaseBench {
        requests,
        naive_secs,
        bb_secs,
        speedup: if bb_secs > 0.0 { naive_secs / bb_secs } else { 0.0 },
        combos_examined: net.metrics().value(counter::COMBOS_EXAMINED),
        combos_pruned: net.metrics().value(counter::COMBOS_PRUNED),
    }
}

/// Parameters for the scale sweep (`fig8 --peers N`): BCP probing
/// throughput on the geometric overlay at 10^5–10^6 peers, where the
/// classic transit-stub construction would not fit in time or memory.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Overlay peers.
    pub peers: usize,
    /// Function pool size.
    pub functions: usize,
    /// Master seed.
    pub seed: u64,
    /// BCP composition requests to run.
    pub requests: u64,
    /// Per-request probe budget.
    pub budget: u32,
    /// Per-function probe quota (uniform — replica fractions explode at
    /// this replica density).
    pub quota: u32,
    /// Worker threads for the Pastry build phase (results are identical
    /// for any value).
    pub build_threads: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            peers: 100_000,
            functions: 200,
            seed: 8,
            requests: 400,
            budget: 64,
            quota: 4,
            build_threads: 1,
        }
    }
}

/// Scale-sweep outputs (peak RSS is sampled by the bench binary, which
/// owns the process-level accounting).
#[derive(Clone, Debug)]
pub struct ScaleResult {
    /// Overlay peers simulated.
    pub peers: usize,
    /// Requests composed.
    pub requests: u64,
    /// Requests that composed and committed.
    pub successes: u64,
    /// Seconds to build the overlay + Pastry ring and register services.
    pub build_secs: f64,
    /// Seconds spent composing (probing + commit).
    pub probe_secs: f64,
    /// Probe transmissions sent.
    pub probes: u64,
    /// `probes / probe_secs`.
    pub probes_per_sec: f64,
}

/// Runs the scale sweep: builds a geometric-overlay world of `cfg.peers`
/// peers, registers the service population, then drives `cfg.requests`
/// BCP compositions (committing successes) and reports probing
/// throughput. Deterministic for a fixed seed, any `build_threads`.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleResult {
    let build_started = Instant::now();
    let mut net = SpiderNet::build(
        &SpiderNetConfig::builder()
            .peers(cfg.peers)
            .seed(cfg.seed)
            .geo(GeoConfig::default())
            .build_threads(cfg.build_threads)
            .build(),
    );
    net.populate(&PopulationConfig { functions: cfg.functions, ..PopulationConfig::default() });
    let build_secs = build_started.elapsed().as_secs_f64();

    let req_cfg = RequestConfig { functions: (2, 4), ..RequestConfig::default() };
    let bcp = BcpConfig {
        budget: cfg.budget.max(1),
        quota: QuotaPolicy::Uniform(cfg.quota.max(1)),
        merge_cap: 256,
        lookup: LookupMode::Prefetch,
        ..BcpConfig::default()
    };
    let mut rng: Rng = rng_for(cfg.seed, "fig8-scale-requests");
    let mut paths = crate::paths::PathTable::new();
    let mut successes = 0u64;
    let probe_started = Instant::now();
    for _ in 0..cfg.requests {
        let req = random_request(net.overlay(), net.registry(), &req_cfg, &mut rng);
        if let Ok(out) = net.compose(&req, &bcp) {
            let (peers, links) =
                recovery::session_demands(&out.best, &req, net.registry(), net.overlay(), &mut paths);
            if net.state_mut().commit(&peers, &links).is_ok() {
                successes += 1;
            }
        }
    }
    let probe_secs = probe_started.elapsed().as_secs_f64();
    let probes = net.metrics().value(counter::PROBES);
    ScaleResult {
        peers: cfg.peers,
        requests: cfg.requests,
        successes,
        build_secs,
        probe_secs,
        probes,
        probes_per_sec: if probe_secs > 0.0 { probes as f64 / probe_secs } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig8Config {
        Fig8Config {
            ip_nodes: 300,
            peers: 60,
            functions: 12,
            duration_units: 20,
            workloads: vec![3, 9],
            population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
            optimal_cap: Some(200),
            request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
            ..Fig8Config::default()
        }
    }

    #[test]
    fn produces_one_row_per_workload_and_all_labels() {
        let cfg = tiny();
        let res = run(&cfg);
        assert_eq!(res.rows.len(), 2);
        for row in &res.rows {
            assert_eq!(row.success.len(), 5);
            for &rate in row.success.values() {
                assert!((0.0..=1.0).contains(&rate));
            }
        }
        // Display renders without panicking and mentions every algorithm.
        let text = res.to_string();
        assert!(text.contains("probing-0.2"));
        assert!(text.contains("Optimal"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = tiny();
        let res = run(&cfg);
        let csv = res.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + res.rows.len());
        assert!(lines[0].starts_with("workload,"));
        assert!(lines[0].contains("Optimal"));
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 6); // workload + 5 algorithms
        }
    }

    #[test]
    fn bench_fields_are_populated_and_phase_bench_agrees_on_combos() {
        let cfg = tiny();
        let res = run(&cfg);
        // Optimal ran in half the cells, so the phase timer and the
        // enumerator counters must be live.
        assert!(res.optimal_phase_secs > 0.0);
        assert!(res.build_secs > 0.0, "shared world build was not timed");
        assert!(res.probing_phase_secs > 0.0, "probing cells were not timed");
        assert!(res.combos_examined > 0, "no combinations examined");
        // The bench fields never leak into the pinned figure output.
        assert!(!res.to_csv().contains("combos"));

        let bench = optimal_phase_bench(&cfg, 8);
        assert_eq!(bench.requests, 8);
        assert!(bench.naive_secs > 0.0 && bench.bb_secs > 0.0);
        assert!(bench.combos_examined > 0);
        assert!(bench.speedup > 0.0);
    }

    #[test]
    fn scale_sweep_is_build_thread_invariant() {
        let base = ScaleConfig {
            peers: 500,
            functions: 24,
            requests: 20,
            budget: 16,
            quota: 2,
            ..ScaleConfig::default()
        };
        let a = run_scale(&ScaleConfig { build_threads: 1, ..base.clone() });
        let b = run_scale(&ScaleConfig { build_threads: 3, ..base });
        assert!(a.probes > 0, "scale sweep sent no probes");
        assert!(a.successes <= a.requests);
        assert_eq!(a.probes, b.probes, "probe count depends on build threads");
        assert_eq!(a.successes, b.successes, "successes depend on build threads");
        assert!(a.probes_per_sec > 0.0);
    }

    #[test]
    fn qos_aware_algorithms_beat_blind_ones() {
        let cfg = tiny();
        let res = run(&cfg);
        // Averaged over workloads, optimal and probing-0.2 must beat
        // random and static (the paper's headline ordering).
        let avg = |label: &str| -> f64 {
            res.rows.iter().map(|r| r.success[label]).sum::<f64>() / res.rows.len() as f64
        };
        assert!(avg("Optimal") >= avg("Random"), "optimal below random");
        assert!(avg("probing-0.2") >= avg("Static"), "probing below static");
    }
}

#[cfg(test)]
mod profile {
    use super::*;

    #[test]
    #[ignore]
    fn probing_cell_phase_split() {
        let cfg = Fig8Config::default();
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: cfg.ip_nodes,
            peers: cfg.peers,
            seed: cfg.seed,
            ..SpiderNetConfig::default()
        });
        net.populate(&cfg.population);
        let mut req_rng: Rng = rng_for(cfg.seed, "fig8-requests");
        let mut paths = crate::paths::PathTable::new();
        let mut expiry = EventCore::new();
        let expire = expiry.register_handler("e");
        let mut live: SlotArena<SessionAllocation> = SlotArena::new();
        let (mut t_req, mut t_compose, mut t_commit, mut t_expire) = (0.0f64, 0.0, 0.0, 0.0);
        let workload = 25u64;
        for unit in 0..cfg.duration_units {
            let t = Instant::now();
            for fired in expiry.pop_until(SimTime::from_secs(unit)) {
                if let Some(alloc) = live.remove(SlotKey::from_raw(fired.payload)) {
                    net.state_mut().release(&alloc);
                }
            }
            t_expire += t.elapsed().as_secs_f64();
            for _ in 0..workload {
                let t = Instant::now();
                let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
                let lifetime = { let (lo, hi) = cfg.session_lifetime; req_rng.gen_range(lo..=hi) };
                t_req += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let budget = fraction_budget(&net, &req, 0.2);
                let bcp = BcpConfig {
                    budget,
                    quota: QuotaPolicy::ReplicaFraction(0.2),
                    merge_cap: 256,
                    lookup: LookupMode::Prefetch,
                    ..BcpConfig::default()
                };
                let picked = net.compose(&req, &bcp).ok().map(|o| (o.best, o.eval));
                t_compose += t.elapsed().as_secs_f64();
                if let Some((graph, _)) = picked {
                    let t = Instant::now();
                    let (peers, links) = recovery::session_demands(&graph, &req, net.registry(), net.overlay(), &mut paths);
                    if let Ok(alloc) = net.state_mut().commit(&peers, &links) {
                        let key = live.insert(alloc);
                        expiry.schedule(SimTime::from_secs(unit + lifetime), expire, key.to_raw());
                    }
                    t_commit += t.elapsed().as_secs_f64();
                }
            }
        }
        eprintln!("req={t_req:.3}s compose={t_compose:.3}s commit={t_commit:.3}s expire={t_expire:.3}s");
    }
}
