//! Fig. 11 — average end-to-end delay vs probing budget, comparing the
//! random algorithm, SpiderNet (BCP), and the optimal algorithm.
//!
//! The paper's prototype setting (§6.2): ~102 peers, six multimedia
//! functions, one component per peer (≈17 replicas per function);
//! compositions require three functions and the goal is the qualified
//! service graph with *minimum end-to-end delay*. The optimal algorithm
//! needs 17³ = 4913 probes; BCP's delay falls with budget, degenerating to
//! random at tiny budgets and asymptotically approaching optimal around a
//! few hundred probes (≈4% of the flooding cost).

use crate::bcp::{BcpConfig, QuotaPolicy};
use crate::model::request::CompositionRequest;
use crate::model::service_graph::{GraphEval, ServiceGraph};
use crate::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_util::par::par_map_with;
use spidernet_util::qos::dim;
use spidernet_util::rng::rng_for;
use spidernet_util::stats::Summary;
use std::fmt;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig11Config {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers (paper: 102 PlanetLab hosts).
    pub peers: usize,
    /// Function pool (paper: 6 multimedia functions).
    pub functions: usize,
    /// Functions per request (paper: 3).
    pub request_functions: usize,
    /// Probing budgets to sweep (paper x-axis: 10 … 1000).
    pub budgets: Vec<u32>,
    /// Requests averaged per point.
    pub requests: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the budget-point fan-out (`None` = environment /
    /// all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            ip_nodes: 1_000,
            peers: 102,
            functions: 6,
            request_functions: 3,
            budgets: vec![10, 100, 200, 300, 400, 500, 1000],
            requests: 50,
            seed: 11,
            threads: None,
        }
    }
}

/// The regenerated figure.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Budget points.
    pub budgets: Vec<u32>,
    /// Mean delay of SpiderNet's pick at each budget, ms.
    pub spidernet_ms: Vec<f64>,
    /// Mean delay of the random pick (budget-independent), ms.
    pub random_ms: f64,
    /// Mean delay of the optimal pick, ms.
    pub optimal_ms: f64,
    /// The optimal algorithm's probe count (Π Z_k averaged), for the
    /// "4% of flooding" ratio.
    pub optimal_probes: f64,
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fig. 11 — average delay vs probing budget")?;
        writeln!(f, "{:>8} {:>12} {:>12} {:>12}", "budget", "Random", "SpiderNet", "Optimal")?;
        for (i, &b) in self.budgets.iter().enumerate() {
            writeln!(
                f,
                "{b:>8} {:>12.1} {:>12.1} {:>12.1}",
                self.random_ms, self.spidernet_ms[i], self.optimal_ms
            )?;
        }
        writeln!(f, "optimal probes (mean): {:.0}", self.optimal_probes)
    }
}

impl Fig11Result {
    /// CSV rendering: `budget,random_ms,spidernet_ms,optimal_ms`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("budget,random_ms,spidernet_ms,optimal_ms\n");
        for (i, &b) in self.budgets.iter().enumerate() {
            out.push_str(&format!(
                "{b},{:.2},{:.2},{:.2}\n",
                self.random_ms, self.spidernet_ms[i], self.optimal_ms
            ));
        }
        out
    }
}

/// Minimum-delay pick among the best graph and the qualified pool.
fn min_delay(best: &(ServiceGraph, GraphEval), pool: &[(ServiceGraph, GraphEval)]) -> f64 {
    let mut d = best.1.qos[dim::DELAY_MS];
    for (_, e) in pool {
        d = d.min(e.qos[dim::DELAY_MS]);
    }
    d
}

/// Builds the prototype deployment and the fixed request set shared by
/// every algorithm and budget. Fully determined by the config, so every
/// cell of the sweep reconstructs an identical world.
fn world(cfg: &Fig11Config) -> (SpiderNet, Vec<CompositionRequest>) {
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        ..SpiderNetConfig::default()
    });
    // One component per peer, drawn from the small function pool — the
    // prototype's deployment (§6.2).
    net.populate(&PopulationConfig {
        functions: cfg.functions,
        components_per_peer: (1, 1),
        ..PopulationConfig::default()
    });

    let req_cfg = RequestConfig {
        functions: (cfg.request_functions, cfg.request_functions),
        // The experiment minimizes delay among qualified graphs; generous
        // bounds keep qualification from masking the metric.
        delay_bound_ms: (50_000.0, 50_001.0),
        loss_bound: (0.5, 0.51),
        max_failure_prob: 1.0,
        ..RequestConfig::default()
    };
    let mut rng = rng_for(cfg.seed, "fig11-requests");
    let requests = (0..cfg.requests)
        .map(|_| random_request(net.overlay(), net.registry(), &req_cfg, &mut rng))
        .collect();
    (net, requests)
}

/// The reference cell: random and optimal baselines over the request set.
fn references(cfg: &Fig11Config) -> (f64, f64, f64) {
    let (mut net, requests) = world(cfg);
    let mut random_sum = Summary::new();
    let mut optimal_sum = Summary::new();
    let mut probes_sum = Summary::new();
    for req in &requests {
        if let Ok(out) = net.compose_with(req, &CompositionOptions::random()) {
            random_sum.record(out.eval.qos[dim::DELAY_MS]);
        }
        if let Ok(out) = net.compose_with(req, &CompositionOptions::optimal(None)) {
            optimal_sum.record(min_delay(&(out.best.clone(), out.eval.clone()), &out.qualified_pool));
            probes_sum.record(out.probes as f64);
        }
    }
    (random_sum.mean(), optimal_sum.mean(), probes_sum.mean())
}

/// One budget cell of the sweep: BCP's mean minimum delay at `budget`.
fn budget_cell(cfg: &Fig11Config, budget: u32) -> f64 {
    let (mut net, requests) = world(cfg);
    let bcp = BcpConfig {
        budget,
        quota: QuotaPolicy::Uniform(budget.max(1)),
        merge_cap: 4096,
        ..BcpConfig::default()
    };
    let mut sum = Summary::new();
    for req in &requests {
        match net.compose(req, &bcp) {
            Ok(out) => {
                sum.record(min_delay(&(out.best.clone(), out.eval.clone()), &out.qualified_pool))
            }
            Err(_) => {
                // Budget too small to find anything qualified: fall
                // back to the random pick's delay, mirroring the
                // paper's "degenerates into the random algorithm".
                if let Ok(out) = net.compose_with(req, &CompositionOptions::random()) {
                    sum.record(out.eval.qos[dim::DELAY_MS]);
                }
            }
        }
    }
    sum.mean()
}

/// What one parallel cell computes.
enum Cell {
    /// Random + optimal baselines.
    References,
    /// BCP at one budget.
    Budget(u32),
}

/// Runs the sweep. The reference baselines and every budget point are
/// independent cells fanned out across the configured worker threads;
/// results are identical for any thread count (each cell rebuilds its own
/// world, so the per-network baseline stream restarts per cell).
pub fn run(cfg: &Fig11Config) -> Fig11Result {
    let mut cells = vec![Cell::References];
    cells.extend(cfg.budgets.iter().map(|&b| Cell::Budget(b)));
    let mut outs = par_map_with(super::resolve_threads(cfg.threads), cells, |_, cell| match cell {
        Cell::References => {
            let (random_ms, optimal_ms, optimal_probes) = references(cfg);
            vec![random_ms, optimal_ms, optimal_probes]
        }
        Cell::Budget(budget) => vec![budget_cell(cfg, budget)],
    })
    .into_iter();

    let refs = outs.next().expect("references cell");
    Fig11Result {
        budgets: cfg.budgets.clone(),
        spidernet_ms: outs.map(|v| v[0]).collect(),
        random_ms: refs[0],
        optimal_ms: refs[1],
        optimal_probes: refs[2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig11Config {
        Fig11Config {
            ip_nodes: 300,
            peers: 40,
            functions: 4,
            request_functions: 3,
            budgets: vec![1, 8, 64],
            requests: 10,
            seed: 11,
            threads: None,
        }
    }

    #[test]
    fn delay_improves_with_budget_toward_optimal() {
        let res = run(&tiny());
        assert_eq!(res.spidernet_ms.len(), 3);
        // Optimal lower-bounds everything.
        for &d in &res.spidernet_ms {
            assert!(d + 1e-6 >= res.optimal_ms, "BCP beat optimal: {d} < {}", res.optimal_ms);
        }
        assert!(res.random_ms + 1e-6 >= res.optimal_ms);
        // The largest budget must do at least as well as the smallest.
        assert!(
            res.spidernet_ms.last().unwrap() <= res.spidernet_ms.first().unwrap(),
            "more budget made delay worse: {:?}",
            res.spidernet_ms
        );
        assert!(res.optimal_probes >= 1.0);
        assert!(res.to_string().contains("SpiderNet"));
    }

    #[test]
    fn csv_mirrors_budgets() {
        let res = run(&tiny());
        let csv = res.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "budget,random_ms,spidernet_ms,optimal_ms");
        assert_eq!(lines.len(), 1 + res.budgets.len());
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn large_budget_is_near_optimal() {
        let res = run(&tiny());
        let last = *res.spidernet_ms.last().unwrap();
        // 40 peers / 4 functions = 10 replicas per function; 64 probes over
        // 10³ = 1000 combos should land within 25% of optimal.
        assert!(
            last <= res.optimal_ms * 1.25 + 5.0,
            "budget-64 BCP too far from optimal: {last} vs {}",
            res.optimal_ms
        );
    }
}
