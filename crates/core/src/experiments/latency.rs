//! E7 — recovery-latency distribution: proactive backup switching vs
//! reactive re-composition.
//!
//! The paper's §5 argument: proactive recovery is "especially important
//! for soft real time applications" because switching to a maintained
//! backup avoids "the delay and overhead of triggering BCP to find a new
//! composition". This experiment quantifies that delay gap. Recovery
//! latency is modeled as:
//!
//! * **proactive**: failure-detection delay + stream switch delay;
//! * **reactive**: failure-detection delay + a full BCP round (discovery +
//!   probing in virtual network time) + session re-initialization (ack
//!   traversal of the new graph).
//!
//! The experiment drives a churn loop, forces both paths to occur (by
//! running one arm with backups and one without), and reports the latency
//! distribution of each.

use crate::bcp::BcpConfig;
use crate::recovery::{FailureOutcome, RecoveryConfig};
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_sim::ChurnModel;
use spidernet_util::id::PeerId;
use spidernet_util::par::par_map_with;
use spidernet_util::rng::rng_for;
use spidernet_util::stats::percentile;
use std::fmt;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct LatencyConfig {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Master seed.
    pub seed: u64,
    /// Standing sessions.
    pub sessions: usize,
    /// Churn time units simulated.
    pub duration_units: u64,
    /// Churn process.
    pub churn: ChurnModel,
    /// Recovery policy (detection/switch delays).
    pub recovery: RecoveryConfig,
    /// Component population.
    pub population: PopulationConfig,
    /// Request shape.
    pub request: RequestConfig,
    /// BCP configuration (setup + reactive).
    pub bcp: BcpConfig,
    /// Worker threads for the arm fan-out (`None` = environment /
    /// all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            ip_nodes: 800,
            peers: 160,
            seed: 77,
            sessions: 80,
            duration_units: 40,
            churn: ChurnModel { fail_fraction: 0.02, rejoin_after_units: Some(8) },
            recovery: RecoveryConfig { backup_upper_bound: 4.0, ..RecoveryConfig::default() },
            population: PopulationConfig { functions: 25, ..PopulationConfig::default() },
            request: RequestConfig {
                functions: (2, 4),
                delay_bound_ms: (350.0, 600.0),
                loss_bound: (0.03, 0.06),
                max_failure_prob: 0.12,
                ..RequestConfig::default()
            },
            bcp: BcpConfig { budget: 96, merge_cap: 256, ..BcpConfig::default() },
            threads: None,
        }
    }
}

/// Latency distribution of one recovery mechanism, ms.
#[derive(Clone, Debug, Default)]
pub struct LatencyDist {
    /// Raw samples.
    pub samples: Vec<f64>,
}

impl LatencyDist {
    /// p50 / p95 / max summary; NaNs for an empty distribution.
    pub fn quantiles(&self) -> (f64, f64, f64) {
        let mut v = self.samples.clone();
        let p50 = percentile(&mut v, 50.0);
        let p95 = percentile(&mut v, 95.0);
        let max = v.last().copied().unwrap_or(f64::NAN);
        (p50, p95, max)
    }
}

/// The measured comparison.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// Proactive (backup-switch) recovery latencies.
    pub proactive: LatencyDist,
    /// Reactive (full-BCP) recovery latencies.
    pub reactive: LatencyDist,
}

impl fmt::Display for LatencyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# E7 — recovery latency: proactive switch vs reactive re-composition (ms)")?;
        writeln!(f, "{:>10} {:>8} {:>10} {:>10} {:>10}", "mechanism", "n", "p50", "p95", "max")?;
        for (name, d) in [("proactive", &self.proactive), ("reactive", &self.reactive)] {
            let (p50, p95, max) = d.quantiles();
            writeln!(
                f,
                "{name:>10} {:>8} {p50:>10.0} {p95:>10.0} {max:>10.0}",
                d.samples.len()
            )?;
        }
        let (p_p50, ..) = self.proactive.quantiles();
        let (r_p50, ..) = self.reactive.quantiles();
        if p_p50.is_finite() && r_p50.is_finite() && p_p50 > 0.0 {
            writeln!(f, "median speedup: {:.1}x", r_p50 / p_p50)?;
        }
        Ok(())
    }
}

impl LatencyResult {
    /// CSV rendering: `mechanism,n,p50_ms,p95_ms,max_ms`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("mechanism,n,p50_ms,p95_ms,max_ms\n");
        for (name, d) in [("proactive", &self.proactive), ("reactive", &self.reactive)] {
            let (p50, p95, max) = d.quantiles();
            out.push_str(&format!("{name},{},{p50:.1},{p95:.1},{max:.1}\n", d.samples.len()));
        }
        out
    }
}

/// One arm: proactive (backups on) or reactive (backups off).
fn run_arm(cfg: &LatencyConfig, proactive: bool) -> LatencyDist {
    let recovery = RecoveryConfig {
        backup_upper_bound: if proactive { cfg.recovery.backup_upper_bound } else { 0.0 },
        ..cfg.recovery.clone()
    };
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        recovery: recovery.clone(),
        ..SpiderNetConfig::default()
    });
    net.populate(&cfg.population);

    let mut req_rng = rng_for(cfg.seed, "latency-requests");
    let mut established = 0usize;
    let mut guard = 0;
    while established < cfg.sessions && guard < cfg.sessions * 20 {
        guard += 1;
        let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
        if let Ok(outcome) = net.compose(&req, &cfg.bcp) {
            if net.establish(&req, outcome).is_ok() {
                established += 1;
            }
        }
    }

    let mut churn_rng = rng_for(cfg.seed, "latency-churn");
    let mut dist = LatencyDist::default();
    let mut pending_rejoin: Vec<(u64, PeerId)> = Vec::new();

    for unit in 0..cfg.duration_units {
        let (due, rest): (Vec<_>, Vec<_>) =
            pending_rejoin.into_iter().partition(|(t, _)| *t <= unit);
        pending_rejoin = rest;
        for (_, p) in due {
            net.revive_peer(p);
        }
        let victims = cfg.churn.sample_failures(&net.state().live_peers(), &mut churn_rng);
        for v in victims {
            for (sid, outcome) in net.fail_peer(v) {
                match outcome {
                    FailureOutcome::RecoveredByBackup { switch_ms, .. } => {
                        dist.samples.push(switch_ms);
                    }
                    FailureOutcome::NeedsReactive => {
                        // Reactive latency: detection + BCP protocol time
                        // + re-init ack (≈ a quarter of the protocol time,
                        // one reversed traversal of the selected graph).
                        if let Some(stats) = net.reactive_recover_with_stats(sid, &cfg.bcp) {
                            let protocol = stats.discovery_ms + stats.probing_ms;
                            dist.samples.push(
                                recovery.detection_delay_ms + protocol + protocol * 0.25,
                            );
                        }
                    }
                }
            }
            if let Some(k) = cfg.churn.rejoin_after_units {
                pending_rejoin.push((unit + k, v));
            }
        }
        net.maintenance_tick();
    }
    dist
}

/// Runs both arms in parallel; each arm is an independent simulation
/// with deliberately shared seeds (same network and failure schedule).
pub fn run(cfg: &LatencyConfig) -> LatencyResult {
    let mut arms = par_map_with(
        super::resolve_threads(cfg.threads),
        vec![true, false],
        |_, proactive| run_arm(cfg, proactive),
    );
    let reactive = arms.pop().expect("reactive arm");
    let proactive = arms.pop().expect("proactive arm");
    LatencyResult { proactive, reactive }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LatencyConfig {
        LatencyConfig {
            ip_nodes: 300,
            peers: 70,
            sessions: 20,
            duration_units: 12,
            population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
            ..LatencyConfig::default()
        }
    }

    #[test]
    fn proactive_recovery_is_much_faster() {
        let res = run(&tiny());
        assert!(!res.proactive.samples.is_empty(), "no proactive recoveries observed");
        assert!(!res.reactive.samples.is_empty(), "no reactive recoveries observed");
        let (p50_pro, ..) = res.proactive.quantiles();
        let (p50_re, ..) = res.reactive.quantiles();
        assert!(
            p50_pro < p50_re,
            "proactive median {p50_pro} not below reactive {p50_re}"
        );
        assert!(res.to_string().contains("median speedup"));
    }

    #[test]
    fn csv_lists_both_mechanisms() {
        let res = run(&tiny());
        let csv = res.to_csv();
        assert!(csv.starts_with("mechanism,"));
        assert!(csv.contains("proactive,"));
        assert!(csv.contains("reactive,"));
    }

    #[test]
    fn latencies_include_detection_delay() {
        let cfg = tiny();
        let res = run(&cfg);
        for s in res.proactive.samples.iter().chain(&res.reactive.samples) {
            assert!(*s >= cfg.recovery.detection_delay_ms, "latency {s} below detection delay");
        }
    }
}
