//! Deterministic fault-injection lab driving the proactive recovery path.
//!
//! A [`FaultDriver`] establishes a population of standing sessions, then
//! replays a seeded [`FaultPlan`] unit by unit against the sim clock:
//! crashes and revives flow through [`SpiderNet::fail_peers`] /
//! [`SpiderNet::revive_peer`] (exercising
//! `SessionManager::handle_peer_failure` and reactive BCP), soft-state
//! expiry storms stress the `OverlayState` sweep, and every unit ends
//! with a maintenance tick plus a clock advance. The driver is steppable
//! so tests can assert the recovery invariants *between* units
//! ([`FaultDriver::verify_invariants`]), and entirely sequential per
//! plan — replaying the same plan against the same config is
//! byte-identical whatever `SPIDERNET_THREADS` says. The
//! [`churn_sweep`] harness fans whole plans out per churn rate with the
//! PR1 parallel contract (per-cell derived seeds, results written back
//! by cell index).

use crate::bcp::BcpConfig;
use crate::recovery::{FailureOutcome, RecoveryConfig};
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_sim::fault::{FaultAction, FaultPlan};
use spidernet_sim::metrics::MetricsRegistry;
use spidernet_sim::time::SimDuration;
use spidernet_sim::trace::{TraceBuffer, TraceEvent};
use spidernet_util::id::PeerId;
use spidernet_util::par::par_map_with;
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::{derive_seed, rng_for, Rng};
use std::fmt;

/// World and workload parameters of the fault lab.
#[derive(Clone, Debug)]
pub struct FaultLabConfig {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Master seed (world construction + request stream).
    pub seed: u64,
    /// Standing sessions established before the plan starts.
    pub sessions: usize,
    /// Sim-time length of one plan unit.
    pub unit: SimDuration,
    /// Backup bound U (Eq. 2).
    pub backup_upper_bound: f64,
    /// Component population.
    pub population: PopulationConfig,
    /// Request shape for the standing sessions.
    pub request: RequestConfig,
    /// BCP configuration for setup and reactive recovery.
    pub bcp: BcpConfig,
    /// Worker threads for [`churn_sweep`]'s per-rate fan-out (`None` =
    /// environment; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for FaultLabConfig {
    fn default() -> Self {
        FaultLabConfig {
            ip_nodes: 600,
            peers: 120,
            seed: 10,
            sessions: 40,
            unit: SimDuration::from_secs(1),
            backup_upper_bound: 4.0,
            population: PopulationConfig { functions: 20, ..PopulationConfig::default() },
            request: RequestConfig {
                functions: (2, 4),
                delay_bound_ms: (350.0, 600.0),
                loss_bound: (0.03, 0.06),
                max_failure_prob: 0.12,
                ..RequestConfig::default()
            },
            bcp: BcpConfig { budget: 128, merge_cap: 256, ..BcpConfig::default() },
            threads: None,
        }
    }
}

/// Per-unit accounting of one plan replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitRow {
    /// Plan time unit.
    pub unit: u64,
    /// Peers crashed this unit.
    pub crashes: u64,
    /// Peers revived this unit.
    pub revives: u64,
    /// Sessions whose primary graph lost a peer.
    pub hits: u64,
    /// Hits recovered by switching to a maintained backup.
    pub switches: u64,
    /// Hits that fell through to reactive BCP.
    pub reactive: u64,
    /// Reactive re-compositions that re-placed the session.
    pub saved: u64,
    /// Sessions lost (reactive BCP found nothing).
    pub lost: u64,
    /// Soft-storm reservations granted this unit.
    pub soft_granted: u64,
    /// Soft reservations reclaimed by this unit's expiry sweep.
    pub soft_expired: u64,
}

/// The finished replay: per-unit rows plus end-state summary.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Per-unit accounting, one row per plan unit.
    pub rows: Vec<UnitRow>,
    /// Sessions established before the plan started.
    pub established: usize,
    /// Sessions still active after the final unit.
    pub surviving: usize,
    /// Mean backup-switch latency (ms) across all switches (0 if none).
    pub mean_switch_ms: f64,
    /// The world's protocol counters after the replay.
    pub metrics: MetricsRegistry,
}

impl FaultReport {
    fn total(&self, f: impl Fn(&UnitRow) -> u64) -> u64 {
        self.rows.iter().map(f).sum()
    }

    /// Total peers crashed.
    pub fn crashes(&self) -> u64 {
        self.total(|r| r.crashes)
    }

    /// Total peers revived.
    pub fn revives(&self) -> u64 {
        self.total(|r| r.revives)
    }

    /// Total primary-graph hits.
    pub fn hits(&self) -> u64 {
        self.total(|r| r.hits)
    }

    /// Total backup switches.
    pub fn switches(&self) -> u64 {
        self.total(|r| r.switches)
    }

    /// Total reactive-BCP fallbacks.
    pub fn reactive(&self) -> u64 {
        self.total(|r| r.reactive)
    }

    /// Total sessions re-placed by reactive BCP.
    pub fn saved(&self) -> u64 {
        self.total(|r| r.saved)
    }

    /// Total sessions lost outright.
    pub fn lost(&self) -> u64 {
        self.total(|r| r.lost)
    }

    /// Total soft reservations reclaimed by expiry sweeps.
    pub fn soft_expired(&self) -> u64 {
        self.total(|r| r.soft_expired)
    }

    /// Fraction of hits recovered *proactively* (by a maintained backup,
    /// no reactive BCP). 1.0 when nothing was hit.
    pub fn recovery_success_rate(&self) -> f64 {
        let hits = self.hits();
        if hits == 0 {
            1.0
        } else {
            self.switches() as f64 / hits as f64
        }
    }

    /// CSV rendering, one row per unit — the byte-identity artifact for
    /// the determinism contract.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "unit,crashes,revives,hits,switches,reactive,saved,lost,soft_granted,soft_expired\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.unit,
                r.crashes,
                r.revives,
                r.hits,
                r.switches,
                r.reactive,
                r.saved,
                r.lost,
                r.soft_granted,
                r.soft_expired
            ));
        }
        out
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fault-injection replay — {} units", self.rows.len())?;
        writeln!(
            f,
            "{:>6} {:>8} {:>8} {:>6} {:>9} {:>9} {:>6} {:>6}",
            "unit", "crashes", "revives", "hits", "switches", "reactive", "saved", "lost"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>8} {:>8} {:>6} {:>9} {:>9} {:>6} {:>6}",
                r.unit, r.crashes, r.revives, r.hits, r.switches, r.reactive, r.saved, r.lost
            )?;
        }
        writeln!(f, "sessions: {} established, {} surviving", self.established, self.surviving)?;
        writeln!(f, "recovery success rate: {:.3}", self.recovery_success_rate())?;
        writeln!(f, "mean switch latency: {:.1} ms", self.mean_switch_ms)
    }
}

/// Steppable replay of one [`FaultPlan`] against a freshly built world.
pub struct FaultDriver {
    net: SpiderNet,
    plan: FaultPlan,
    cfg: FaultLabConfig,
    unit: u64,
    /// Driver-side randomness (soft-storm target picks), seeded from the
    /// *plan* so the same plan replays identically under any config seed
    /// reuse.
    storm_rng: Rng,
    rows: Vec<UnitRow>,
    established: usize,
}

impl FaultDriver {
    /// Builds the world, establishes the standing sessions, and arms
    /// `plan`. Entirely deterministic in `(cfg, plan)`.
    pub fn new(cfg: &FaultLabConfig, plan: FaultPlan) -> FaultDriver {
        let mut net = SpiderNet::build(&SpiderNetConfig {
            ip_nodes: cfg.ip_nodes,
            peers: cfg.peers,
            seed: cfg.seed,
            recovery: RecoveryConfig {
                backup_upper_bound: cfg.backup_upper_bound,
                ..RecoveryConfig::default()
            },
            ..SpiderNetConfig::default()
        });
        net.populate(&cfg.population);
        let mut req_rng = rng_for(cfg.seed, "faultlab-requests");
        let mut established = 0usize;
        let mut guard = 0;
        while established < cfg.sessions && guard < cfg.sessions * 20 {
            guard += 1;
            let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
            if let Ok(outcome) = net.compose(&req, &cfg.bcp) {
                if net.establish(&req, outcome).is_ok() {
                    established += 1;
                }
            }
        }
        let storm_rng = rng_for(plan.seed(), "faultlab-storm");
        FaultDriver { net, plan, cfg: cfg.clone(), unit: 0, storm_rng, rows: Vec::new(), established }
    }

    /// The world under test (sessions, state, metrics).
    pub fn net(&self) -> &SpiderNet {
        &self.net
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Units already replayed.
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// Replays one plan unit: revive/crash/storm actions in plan order,
    /// then a maintenance tick, then the clock advance (which sweeps
    /// expired soft state). Returns `false` once the plan horizon is
    /// reached (nothing is replayed then).
    pub fn step(&mut self) -> bool {
        if self.unit >= self.plan.horizon() {
            return false;
        }
        let mut row = UnitRow { unit: self.unit, ..UnitRow::default() };
        let actions = self.plan.actions_at(self.unit).to_vec();
        for action in actions {
            match action {
                FaultAction::Crash { peer } => self.apply_crashes(&[peer], &mut row),
                FaultAction::CrashCorrelated { peers } => self.apply_crashes(&peers, &mut row),
                FaultAction::Revive { peer } => {
                    let p = PeerId::new(peer);
                    if peer < self.cfg.peers as u64 && !self.net.state().is_alive(p) {
                        self.net.revive_peer(p);
                        self.record_fault(peer, false);
                        row.revives += 1;
                    }
                }
                FaultAction::SoftStorm { allocs } => self.apply_soft_storm(allocs, &mut row),
            }
        }
        self.net.maintenance_tick();
        row.soft_expired = self.net.advance(self.cfg.unit) as u64;
        self.rows.push(row);
        self.unit += 1;
        true
    }

    /// Replays the remaining plan to its horizon.
    pub fn run_to_end(&mut self) {
        while self.step() {}
    }

    fn record_fault(&mut self, peer: u64, crash: bool) {
        let obs = self.net.obs_mut();
        obs.metrics.incr(obs.counters.faults_injected);
        obs.trace.record(TraceEvent::FaultInjected { unit: self.unit, peer, crash });
    }

    fn apply_crashes(&mut self, peers: &[u64], row: &mut UnitRow) {
        let victims: Vec<PeerId> = peers
            .iter()
            .copied()
            .filter(|&p| p < self.cfg.peers as u64)
            .map(PeerId::new)
            .filter(|&p| self.net.state().is_alive(p))
            .collect();
        if victims.is_empty() {
            return;
        }
        for v in &victims {
            self.record_fault(v.raw(), true);
        }
        row.crashes += victims.len() as u64;
        let outcomes = self.net.fail_peers(&victims);
        for (sid, outcome) in outcomes {
            row.hits += 1;
            match outcome {
                FailureOutcome::RecoveredByBackup { .. } => row.switches += 1,
                FailureOutcome::NeedsReactive => {
                    row.reactive += 1;
                    if self.net.reactive_recover(sid, &self.cfg.bcp) {
                        row.saved += 1;
                    } else {
                        row.lost += 1;
                    }
                }
            }
        }
    }

    fn apply_soft_storm(&mut self, allocs: u32, row: &mut UnitRow) {
        // Short-TTL reservations expiring exactly at the end of this unit —
        // the sweep's inclusive `expires <= now` boundary reclaims them in
        // this same step's advance.
        let expires = self.net.now() + self.cfg.unit;
        let demand = ResourceVector::new(0.05, 4.0);
        // soft_allocate wants a trace buffer alongside `&mut state`; record
        // into a scratch buffer and merge once we're done borrowing.
        let mut scratch = TraceBuffer::with_capacity(allocs as usize);
        for _ in 0..allocs {
            let live = self.net.state().live_peers();
            if live.is_empty() {
                break;
            }
            let peer = live[(self.storm_rng.gen::<u64>() % live.len() as u64) as usize];
            if self.net.state_mut().soft_allocate(peer, demand, expires, &mut scratch).is_ok() {
                row.soft_granted += 1;
            }
        }
    }

    /// Checks the recovery-path invariants the paper's robustness story
    /// rests on; call between [`FaultDriver::step`]s. Returns the first
    /// violation as an error string.
    ///
    /// * no dead peer inside any session's *primary* (served) graph;
    /// * no dead peer inside any maintained *backup* graph (maintenance
    ///   ran at the end of the step);
    /// * per-peer committed load equals the sum of the live sessions'
    ///   allocations — no double-release, no leak — and never exceeds
    ///   capacity.
    pub fn verify_invariants(&self) -> std::result::Result<(), String> {
        let net = &self.net;
        let reg = net.registry();
        let state = net.state();
        for s in net.sessions().sessions() {
            for &c in s.primary.components() {
                let p = reg.get(c).peer;
                if !state.is_alive(p) {
                    return Err(format!(
                        "session {:?}: dead peer {p} in served primary graph",
                        s.id
                    ));
                }
            }
            for (bi, (g, _)) in s.backups.iter().enumerate() {
                for &c in g.components() {
                    let p = reg.get(c).peer;
                    if !state.is_alive(p) {
                        return Err(format!(
                            "session {:?}: dead peer {p} in backup #{bi}",
                            s.id
                        ));
                    }
                }
            }
        }
        // Accounting: fold every live session's allocation per peer and
        // compare against the state's committed ledger.
        let mut expected = vec![ResourceVector::ZERO; self.cfg.peers];
        for s in net.sessions().sessions() {
            for &(p, res) in &s.allocation.peers {
                expected[p.index()] = expected[p.index()].add(&res);
            }
        }
        for (i, want) in expected.iter().enumerate() {
            let p = PeerId::new(i as u64);
            let got = state.committed_load(p);
            if (got.cpu() - want.cpu()).abs() > 1e-6
                || (got.memory() - want.memory()).abs() > 1e-6
            {
                return Err(format!(
                    "peer {p}: committed ledger {got:?} != session sum {want:?}"
                ));
            }
            let cap = state.capacity(p);
            if got.cpu() > cap.cpu() + 1e-9 || got.memory() > cap.memory() + 1e-9 {
                return Err(format!("peer {p}: committed {got:?} exceeds capacity {cap:?}"));
            }
        }
        // Soft (probe-time) books: every peer's soft ledger must equal
        // the sum of its live reservations — shared with the model
        // checker's soft-ledger scenario.
        state.verify_soft_accounting()?;
        Ok(())
    }

    /// Finishes the replay summary (consumes nothing; callable any time).
    pub fn report(&self) -> FaultReport {
        let mean_switch_ms = self
            .net
            .metrics()
            .summary(self.net.obs().counters.switch_ms)
            .map(|s| s.mean())
            .unwrap_or(0.0);
        FaultReport {
            rows: self.rows.clone(),
            established: self.established,
            surviving: self.net.sessions().len(),
            mean_switch_ms,
            metrics: self.net.metrics().clone(),
        }
    }
}

/// Replays `plan` to its horizon and returns the report.
pub fn run(cfg: &FaultLabConfig, plan: FaultPlan) -> FaultReport {
    let mut driver = FaultDriver::new(cfg, plan);
    driver.run_to_end();
    driver.report()
}

/// Churn-sweep parameters: one crash-storm replay per rate.
#[derive(Clone, Debug)]
pub struct ChurnSweepConfig {
    /// The world/workload every cell shares.
    pub base: FaultLabConfig,
    /// Crash rates swept (fraction of live peers per unit).
    pub rates: Vec<f64>,
    /// Storm length in units.
    pub units: u64,
    /// Revive delay for storm victims (`None` = permanent).
    pub revive_after: Option<u64>,
}

impl Default for ChurnSweepConfig {
    fn default() -> Self {
        ChurnSweepConfig {
            base: FaultLabConfig::default(),
            rates: vec![0.01, 0.02, 0.05, 0.10],
            units: 30,
            revive_after: Some(5),
        }
    }
}

/// One swept rate's aggregate outcome.
#[derive(Clone, Debug)]
pub struct ChurnSweepRow {
    /// Crash rate of the cell.
    pub rate: f64,
    /// Total crashes injected.
    pub crashes: u64,
    /// Primary-graph hits.
    pub hits: u64,
    /// Backup switches.
    pub switches: u64,
    /// Reactive-BCP fallbacks.
    pub reactive: u64,
    /// Sessions re-placed reactively.
    pub saved: u64,
    /// Sessions lost.
    pub lost: u64,
    /// switches / hits (1.0 when nothing was hit).
    pub recovery_success_rate: f64,
    /// Mean switch latency, ms.
    pub mean_switch_ms: f64,
}

/// The swept figure.
#[derive(Clone, Debug)]
pub struct ChurnSweepResult {
    /// One row per swept rate, in input order.
    pub rows: Vec<ChurnSweepRow>,
}

impl ChurnSweepResult {
    /// CSV rendering (the byte-identity artifact across thread counts).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rate,crashes,hits,switches,reactive,saved,lost,recovery_success_rate,mean_switch_ms\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:.3},{},{},{},{},{},{},{:.4},{:.2}\n",
                r.rate,
                r.crashes,
                r.hits,
                r.switches,
                r.reactive,
                r.saved,
                r.lost,
                r.recovery_success_rate,
                r.mean_switch_ms
            ));
        }
        out
    }
}

impl fmt::Display for ChurnSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Churn sweep — recovery under crash storms")?;
        writeln!(
            f,
            "{:>6} {:>8} {:>6} {:>9} {:>9} {:>8} {:>10}",
            "rate", "crashes", "hits", "switches", "reactive", "success", "switch_ms"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.3} {:>8} {:>6} {:>9} {:>9} {:>8.3} {:>10.1}",
                r.rate, r.crashes, r.hits, r.switches, r.reactive, r.recovery_success_rate,
                r.mean_switch_ms
            )?;
        }
        Ok(())
    }
}

/// Sweeps crash rates in parallel: each cell derives its own storm seed
/// from the base seed and the cell index, replays sequentially, and
/// writes back by index — bit-identical output for any thread count.
pub fn churn_sweep(cfg: &ChurnSweepConfig) -> ChurnSweepResult {
    let cells: Vec<(usize, f64)> = cfg.rates.iter().copied().enumerate().collect();
    let rows = par_map_with(
        super::resolve_threads(cfg.base.threads),
        cells,
        |_, (i, rate)| {
            let plan_seed = derive_seed(cfg.base.seed, &format!("churn-sweep-{i}"));
            let plan = FaultPlan::crash_storm(
                plan_seed,
                cfg.base.peers as u64,
                rate,
                cfg.units,
                cfg.revive_after,
            );
            let rep = run(&cfg.base, plan);
            ChurnSweepRow {
                rate,
                crashes: rep.crashes(),
                hits: rep.hits(),
                switches: rep.switches(),
                reactive: rep.reactive(),
                saved: rep.saved(),
                lost: rep.lost(),
                recovery_success_rate: rep.recovery_success_rate(),
                mean_switch_ms: rep.mean_switch_ms,
            }
        },
    );
    ChurnSweepResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FaultLabConfig {
        FaultLabConfig {
            ip_nodes: 300,
            peers: 60,
            seed: 13,
            sessions: 8,
            population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
            ..FaultLabConfig::default()
        }
    }

    #[test]
    fn empty_plan_is_a_noop_replay() {
        let cfg = tiny();
        let mut d = FaultDriver::new(&cfg, FaultPlan::new(1).with_horizon(3));
        assert!(!d.net().sessions().is_empty());
        let before = d.net().sessions().len();
        d.run_to_end();
        assert_eq!(d.unit(), 3);
        let rep = d.report();
        assert_eq!(rep.rows.len(), 3);
        assert_eq!(rep.crashes(), 0);
        assert_eq!(rep.surviving, before);
        d.verify_invariants().unwrap();
    }

    #[test]
    fn crash_and_soft_storm_replay_accounts_consistently() {
        let cfg = tiny();
        let plan = FaultPlan::new(2)
            .soft_storm(0, 12)
            .crash(1, 3)
            .crash(1, 7)
            .revive(4, 3)
            .with_horizon(6);
        let mut d = FaultDriver::new(&cfg, plan);
        while d.step() {
            d.verify_invariants().unwrap();
        }
        let rep = d.report();
        assert_eq!(rep.crashes(), 2);
        assert_eq!(rep.revives(), 1);
        assert_eq!(rep.rows[0].soft_granted, rep.rows[0].soft_expired, "storm must expire in-unit");
        assert!(rep.rows[0].soft_granted > 0);
        assert_eq!(d.net().state().soft_count(), 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = tiny();
        let plan = FaultPlan::crash_storm(5, cfg.peers as u64, 0.08, 8, Some(3));
        let a = run(&cfg, plan.clone()).to_csv();
        let b = run(&cfg, plan).to_csv();
        assert_eq!(a, b);
    }
}
