//! Experiment drivers regenerating the paper's evaluation (§6).
//!
//! Each submodule owns one figure or claim:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig8`] | Fig. 8 — composition success rate vs workload, five algorithms |
//! | [`fig9`] | Fig. 9 — failure frequency over time with/without proactive recovery |
//! | [`fig11`] | Fig. 11 — average end-to-end delay vs probing budget |
//! | [`overhead`] | §6.1 claim — BCP vs centralized global-state message overhead |
//! | [`congestion`] | beyond the paper — QoS violations & goodput vs offered load under shared bandwidth |
//!
//! Fig. 10 (wide-area session setup time) runs on the threaded runtime and
//! lives in `spidernet-runtime::experiments`. [`ablation`] adds quality
//! ablations of the design choices (commutation, quota policy, trust).
//!
//! # Parallel deterministic harness
//!
//! Every driver decomposes its figure into *independent cells* — a
//! (workload, algorithm) pair for Fig. 8, a budget point for Fig. 11, an
//! arm or study for the two-sided comparisons — and fans the cells out
//! over [`spidernet_util::par::par_map_with`]. Each cell derives its own
//! random streams from the master seed with
//! [`spidernet_util::rng::rng_for`] / [`rng_for_trial`]
//! (SplitMix64-derived, never shared across cells), and results are
//! written back by cell index, so the output is **bit-identical whatever
//! the thread count** — `threads = Some(1)` runs the very same code on
//! the caller's thread. Thread selection: the config's `threads` field,
//! else `SPIDERNET_THREADS` / `RAYON_NUM_THREADS`, else all cores.
//!
//! [`rng_for_trial`]: spidernet_util::rng::rng_for_trial

pub mod ablation;
pub mod congestion;
pub mod fig11;
pub mod latency;
pub mod fig8;
pub mod fig9;
pub mod faults;
pub mod overhead;

/// Resolves a config's optional thread override against the environment
/// (see [`spidernet_util::par::configured_threads`]).
pub(crate) fn resolve_threads(threads: Option<usize>) -> usize {
    threads.unwrap_or_else(spidernet_util::par::configured_threads)
}
