//! Experiment drivers regenerating the paper's evaluation (§6).
//!
//! Each submodule owns one figure or claim:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig8`] | Fig. 8 — composition success rate vs workload, five algorithms |
//! | [`fig9`] | Fig. 9 — failure frequency over time with/without proactive recovery |
//! | [`fig11`] | Fig. 11 — average end-to-end delay vs probing budget |
//! | [`overhead`] | §6.1 claim — BCP vs centralized global-state message overhead |
//!
//! Fig. 10 (wide-area session setup time) runs on the threaded runtime and
//! lives in `spidernet-runtime::experiments`. [`ablation`] adds quality
//! ablations of the design choices (commutation, quota policy, trust).

pub mod ablation;
pub mod fig11;
pub mod latency;
pub mod fig8;
pub mod fig9;
pub mod overhead;
