//! Fig. 9 — failure frequency over time in a dynamic P2P network, with and
//! without proactive recovery.
//!
//! The paper's setting: 1% of peers randomly fail during each time unit;
//! the y-axis counts failures per time unit over a 60-unit ("minute")
//! horizon. *Without* recovery, every session whose service graph loses a
//! peer suffers a user-visible failure. *With* proactive recovery, a
//! session only counts a failure when no maintained backup can take over
//! (reactive BCP has to run). The paper reports that maintaining on
//! average 2.74 backups per session recovers almost all failures.

use crate::bcp::BcpConfig;
use crate::recovery::{FailureOutcome, RecoveryConfig};
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_util::id::PeerId;
use spidernet_util::par::par_map_with;
use spidernet_util::rng::rng_for;
use spidernet_sim::metrics::{counter, MetricsRegistry};
use spidernet_sim::ChurnModel;
use std::fmt;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Master seed.
    pub seed: u64,
    /// Long-lived sessions established up front.
    pub sessions: usize,
    /// Time units simulated (paper: 60).
    pub duration_units: u64,
    /// Churn process (paper: 1% per unit).
    pub churn: ChurnModel,
    /// Backup bound U for the with-recovery mode.
    pub backup_upper_bound: f64,
    /// Component population.
    pub population: PopulationConfig,
    /// Request shape for the standing sessions.
    pub request: RequestConfig,
    /// BCP configuration for setup and reactive recovery.
    pub bcp: BcpConfig,
    /// Worker threads for the arm fan-out (`None` = environment /
    /// all cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            ip_nodes: 1_000,
            peers: 200,
            seed: 9,
            sessions: 100,
            duration_units: 60,
            churn: ChurnModel::paper_fig9(),
            backup_upper_bound: 4.0,
            population: PopulationConfig { functions: 30, ..PopulationConfig::default() },
            // Bounds sized so sessions sit at meaningful fractions of their
            // requirements — Eq. 2 then maintains a few backups each (the
            // paper reports 2.74 on average).
            request: RequestConfig {
                functions: (2, 4),
                delay_bound_ms: (350.0, 600.0),
                loss_bound: (0.03, 0.06),
                max_failure_prob: 0.12,
                ..RequestConfig::default()
            },
            bcp: BcpConfig { budget: 128, merge_cap: 256, ..BcpConfig::default() },
            threads: None,
        }
    }
}

/// The regenerated figure.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// Failures per time unit without proactive recovery.
    pub without_recovery: Vec<u64>,
    /// Failures per time unit with proactive recovery.
    pub with_recovery: Vec<u64>,
    /// Mean number of backups maintained per session (paper: 2.74).
    pub mean_backups: f64,
    /// Fraction of peer-failure hits recovered by a backup.
    pub recovery_ratio: f64,
    /// Probe transmissions summed across both arms — harness throughput
    /// accounting (for `BENCH_fig9.json`), not part of the figure.
    pub total_probes: u64,
    /// Protocol counters and histograms merged across both arms (baseline
    /// first, proactive second) — the `--trace-json` exporter's input.
    pub metrics: MetricsRegistry,
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Fig. 9 — failure frequency in a dynamic P2P network")?;
        writeln!(f, "{:>6} {:>18} {:>18}", "t", "without-recovery", "with-recovery")?;
        for (t, (a, b)) in self.without_recovery.iter().zip(&self.with_recovery).enumerate() {
            writeln!(f, "{t:>6} {a:>18} {b:>18}")?;
        }
        writeln!(f, "mean backups/session: {:.2}", self.mean_backups)?;
        writeln!(f, "backup recovery ratio: {:.3}", self.recovery_ratio)
    }
}

impl Fig9Result {
    /// CSV rendering: `t,without_recovery,with_recovery`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,without_recovery,with_recovery\n");
        for (t, (a, b)) in self.without_recovery.iter().zip(&self.with_recovery).enumerate() {
            out.push_str(&format!("{t},{a},{b}\n"));
        }
        out
    }
}

/// One simulation mode.
fn run_mode(cfg: &Fig9Config, proactive: bool) -> (Vec<u64>, f64, f64, u64, MetricsRegistry) {
    let recovery = RecoveryConfig {
        backup_upper_bound: if proactive { cfg.backup_upper_bound } else { 0.0 },
        ..RecoveryConfig::default()
    };
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        recovery,
        ..SpiderNetConfig::default()
    });
    net.populate(&cfg.population);

    // Establish the standing sessions.
    let mut req_rng = rng_for(cfg.seed, "fig9-requests");
    let mut established = 0usize;
    let mut guard = 0;
    while established < cfg.sessions && guard < cfg.sessions * 20 {
        guard += 1;
        let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
        if let Ok(outcome) = net.compose(&req, &cfg.bcp) {
            if net.establish(&req, outcome).is_ok() {
                established += 1;
            }
        }
    }
    let mean_backups = net.sessions().mean_backup_count();

    // Churn loop. The failure pattern is seeded independently of the mode
    // so both curves see the same failure schedule.
    let mut churn_rng = rng_for(cfg.seed, "fig9-churn");
    let mut failures_per_unit = Vec::with_capacity(cfg.duration_units as usize);
    let mut pending_rejoin: Vec<(u64, PeerId)> = Vec::new();
    let mut hits = 0u64;
    let mut recovered = 0u64;

    for unit in 0..cfg.duration_units {
        // Rejoins due this unit.
        let (due, rest): (Vec<_>, Vec<_>) =
            pending_rejoin.into_iter().partition(|(t, _)| *t <= unit);
        pending_rejoin = rest;
        for (_, p) in due {
            net.revive_peer(p);
        }

        let live = net.state().live_peers();
        let victims = cfg.churn.sample_failures(&live, &mut churn_rng);
        let mut unit_failures = 0u64;
        for v in victims {
            let outcomes = net.fail_peer(v);
            for (sid, outcome) in outcomes {
                hits += 1;
                match outcome {
                    FailureOutcome::RecoveredByBackup { .. } => {
                        recovered += 1;
                    }
                    FailureOutcome::NeedsReactive => {
                        unit_failures += 1;
                        // Keep the population of sessions steady: reactive
                        // BCP re-places the session (or abandons it).
                        let _ = net.reactive_recover(sid, &cfg.bcp);
                    }
                }
            }
            if let Some(k) = cfg.churn.rejoin_after_units {
                pending_rejoin.push((unit + k, v));
            }
        }
        net.maintenance_tick();
        failures_per_unit.push(unit_failures);
    }

    let ratio = if hits > 0 { recovered as f64 / hits as f64 } else { 1.0 };
    let probes = net.metrics().value(counter::PROBES);
    (failures_per_unit, mean_backups, ratio, probes, net.metrics().clone())
}

/// Runs both modes over the same failure schedule.
///
/// The two arms share their seeds *deliberately* (same network, same
/// standing demand, same failure schedule) but are otherwise independent
/// simulations, so they run as two parallel trials.
pub fn run(cfg: &Fig9Config) -> Fig9Result {
    let mut arms = par_map_with(
        super::resolve_threads(cfg.threads),
        vec![false, true],
        |_, proactive| run_mode(cfg, proactive),
    );
    let (with_recovery, mean_backups, recovery_ratio, probes_with, reg_with) =
        arms.pop().expect("proactive arm");
    let (without_recovery, _, _, probes_without, reg_without) = arms.pop().expect("baseline arm");
    let mut metrics = reg_without;
    metrics.merge(&reg_with);
    Fig9Result {
        without_recovery,
        with_recovery,
        mean_backups,
        recovery_ratio,
        total_probes: probes_with + probes_without,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig9Config {
        Fig9Config {
            ip_nodes: 300,
            peers: 80,
            sessions: 20,
            duration_units: 15,
            population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
            ..Fig9Config::default()
        }
    }

    #[test]
    fn proactive_recovery_reduces_failures() {
        let res = run(&tiny());
        let without: u64 = res.without_recovery.iter().sum();
        let with: u64 = res.with_recovery.iter().sum();
        assert!(
            with <= without,
            "recovery must not increase failures: {with} vs {without}"
        );
        assert!(res.mean_backups > 0.0, "no backups were maintained");
        assert!((0.0..=1.0).contains(&res.recovery_ratio));
        assert_eq!(res.without_recovery.len(), 15);
        assert!(res.to_string().contains("mean backups"));
    }

    #[test]
    fn csv_has_one_row_per_unit() {
        let res = run(&tiny());
        let csv = res.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,without_recovery,with_recovery");
        assert_eq!(lines.len(), 1 + res.without_recovery.len());
    }

    #[test]
    fn without_recovery_mode_maintains_no_backups() {
        let cfg = tiny();
        let (_, mean_backups, ratio, _, _) = run_mode(&cfg, false);
        assert_eq!(mean_backups, 0.0);
        // Either nothing was hit (ratio defaults to 1) or nothing could be
        // backup-recovered.
        assert!(ratio == 0.0 || ratio == 1.0);
    }
}
