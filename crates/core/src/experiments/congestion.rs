//! Congestion figure (beyond the paper) — QoS-violation rate and goodput
//! vs offered load under the shared-bandwidth flow model, for four
//! replica-selection policies.
//!
//! The paper evaluates SpiderNet with hard bandwidth reservations: a
//! stream either fits a link or the candidate is rejected. Real overlay
//! links are *shared* — every admitted stream gets the max-min fair share
//! of each link it crosses, and an overloaded link silently degrades all
//! of them. This experiment switches the overlay onto
//! [`OverlayState::enable_flow_model`](crate::state::OverlayState), sweeps
//! offered load (standing sessions), and compares selection policies:
//!
//! * **paper** — static ψ-aware BCP selection (bandwidth never re-checked
//!   after admission, exactly the paper's model),
//! * **marketplace** — ICN-style bids `reputation × headroom / (1 + delay)`
//!   with reputation earned from observed vs promised delivery,
//! * **random** — deterministic content-hash choice among qualified graphs,
//! * **greedy** — lowest end-to-end delay, ignoring load entirely.
//!
//! A session *violates* its QoS when its delivered fraction of the
//! demanded stream rate drops below `frac_floor`, or when its
//! contention-inflated end-to-end delay exceeds the request's delay bound
//! (those delay queries bypass the pair-delay memo — the memo only stores
//! uncongested values). Goodput sums the fair-share rates actually
//! delivered. Fair-share recomputes ride the simulator's indexed
//! [`EventCore`]: every establishment schedules a rate-recalc event, and
//! each fired event forces the lazy recompute and checks the flow-model
//! invariants.
//!
//! Cells (policy × load) are independent worlds built from the same seed
//! and fed the identical request stream, fanned out over
//! [`par_map_with`] — results are bit-identical for any thread count.

use crate::bcp::BcpConfig;
use crate::selection::SelectionPolicy;
use crate::system::{SpiderNet, SpiderNetConfig};
use crate::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet_sim::time::{SimDuration, SimTime};
use spidernet_sim::EventCore;
use spidernet_util::id::SessionId;
use spidernet_util::par::par_map_with;
use spidernet_util::qos::dim;
use spidernet_util::rng::rng_for;
use std::fmt;

/// The four policies swept, in output order.
pub const POLICIES: [SelectionPolicy; 4] = [
    SelectionPolicy::Paper,
    SelectionPolicy::Marketplace,
    SelectionPolicy::Random,
    SelectionPolicy::Greedy,
];

/// Stable lowercase label for a policy (column names in CSV/JSON).
pub fn policy_name(p: SelectionPolicy) -> &'static str {
    match p {
        SelectionPolicy::Paper => "paper",
        SelectionPolicy::Marketplace => "marketplace",
        SelectionPolicy::Random => "random",
        SelectionPolicy::Greedy => "greedy",
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct CongestionConfig {
    /// IP-layer nodes.
    pub ip_nodes: usize,
    /// Overlay peers.
    pub peers: usize,
    /// Master seed (worlds and request streams are identical across
    /// cells, so policies face the same demand).
    pub seed: u64,
    /// Offered-load sweep: standing sessions attempted per cell.
    pub loads: Vec<usize>,
    /// Delivered fraction below which a session counts as a QoS
    /// violation.
    pub frac_floor: f64,
    /// Marketplace feedback cadence: delivered fractions are observed
    /// into peer reputations every this many arrivals.
    pub observe_every: usize,
    /// Virtual time between arrivals, milliseconds.
    pub arrival_spacing_ms: f64,
    /// Lag between an establishment and its scheduled rate-recalc event,
    /// milliseconds.
    pub recalc_lag_ms: f64,
    /// Component population.
    pub population: PopulationConfig,
    /// Request shape (bandwidth demands drive the contention).
    pub request: RequestConfig,
    /// Base BCP configuration; each cell overrides `selection_policy`.
    pub bcp: BcpConfig,
    /// Worker threads for the cell fan-out (`None` = environment / all
    /// cores; results are identical for any value).
    pub threads: Option<usize>,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            ip_nodes: 600,
            peers: 120,
            seed: 10,
            loads: vec![30, 60, 120, 240],
            frac_floor: 0.9,
            observe_every: 4,
            arrival_spacing_ms: 10.0,
            recalc_lag_ms: 5.0,
            // Video-scale streams: with ~100 Mbps edge pipes underneath,
            // a few concurrent sessions sharing a hub link is already
            // contention (the paper's hard-reservation model would simply
            // reject these; the flow model admits and degrades).
            population: PopulationConfig {
                functions: 12,
                out_bandwidth_mbps: (4.0, 12.0),
                ..PopulationConfig::default()
            },
            // Generous bounds: admission should rarely fail on QoS, so the
            // sweep exercises bandwidth contention rather than rejection.
            request: RequestConfig {
                functions: (2, 3),
                delay_bound_ms: (400.0, 700.0),
                loss_bound: (0.04, 0.08),
                bandwidth_mbps: (8.0, 20.0),
                max_failure_prob: 0.2,
                ..RequestConfig::default()
            },
            bcp: BcpConfig { budget: 96, merge_cap: 192, ..BcpConfig::default() },
            threads: None,
        }
    }
}

/// One (policy, offered-load) grid cell.
#[derive(Clone, Debug)]
pub struct CongestionCell {
    /// Selection policy of this cell.
    pub policy: SelectionPolicy,
    /// Sessions attempted.
    pub offered_sessions: usize,
    /// Sessions admitted (composed and established).
    pub admitted: u64,
    /// Sessions rejected at composition or establishment.
    pub rejected: u64,
    /// Admitted sessions violating their QoS at measurement time.
    pub violations: u64,
    /// `violations / admitted` (0 when nothing was admitted).
    pub violation_rate: f64,
    /// Sum of delivered fair-share rates across admitted sessions, Mbps.
    pub goodput_mbps: f64,
    /// Sum of demanded stream bandwidth across admitted sessions, Mbps.
    pub offered_mbps: f64,
    /// Mean delivered fraction across admitted sessions.
    pub mean_delivered: f64,
    /// Rate-recalc events fired through the event core.
    pub recalc_events: u64,
}

/// The regenerated figure: cells in policy-major order ([`POLICIES`]
/// outer, configured loads inner).
#[derive(Clone, Debug)]
pub struct CongestionResult {
    /// All grid cells.
    pub cells: Vec<CongestionCell>,
    /// The offered-load sweep the cells cover.
    pub loads: Vec<usize>,
    /// The delivered-fraction floor used for violation accounting.
    pub frac_floor: f64,
}

impl CongestionResult {
    /// The cell for (policy index into [`POLICIES`], load index).
    pub fn cell(&self, policy_idx: usize, load_idx: usize) -> &CongestionCell {
        &self.cells[policy_idx * self.loads.len() + load_idx]
    }

    /// CSV rendering, one row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "policy,offered_sessions,admitted,rejected,violations,violation_rate,\
             goodput_mbps,offered_mbps,mean_delivered,recalc_events\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
                policy_name(c.policy),
                c.offered_sessions,
                c.admitted,
                c.rejected,
                c.violations,
                c.violation_rate,
                c.goodput_mbps,
                c.offered_mbps,
                c.mean_delivered,
                c.recalc_events,
            ));
        }
        out
    }
}

impl fmt::Display for CongestionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Congestion — QoS violations & goodput vs offered load")?;
        writeln!(
            f,
            "{:>12} {:>8} {:>9} {:>10} {:>13} {:>13}",
            "policy", "offered", "admitted", "violation", "goodput_mbps", "delivered"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:>12} {:>8} {:>9} {:>10.4} {:>13.2} {:>13.4}",
                policy_name(c.policy),
                c.offered_sessions,
                c.admitted,
                c.violation_rate,
                c.goodput_mbps,
                c.mean_delivered,
            )?;
        }
        Ok(())
    }
}

/// Runs one grid cell: fresh world, flow model on, `load` arrivals under
/// `policy`, then a congestion measurement pass over the standing
/// sessions.
fn run_cell(cfg: &CongestionConfig, policy: SelectionPolicy, load: usize) -> CongestionCell {
    let mut net = SpiderNet::build(&SpiderNetConfig {
        ip_nodes: cfg.ip_nodes,
        peers: cfg.peers,
        seed: cfg.seed,
        ..SpiderNetConfig::default()
    });
    net.populate(&cfg.population);
    net.enable_flow_model();

    let mut bcp = cfg.bcp.clone();
    bcp.selection_policy = policy;

    // The event core drives fair-share recomputes: every establishment
    // schedules a recalc a short lag later, and each fired event forces
    // the (lazy) recompute and re-checks the flow invariants.
    let mut core = EventCore::new();
    let recalc = core.register_handler("flow-recalc");
    let spacing = SimDuration::from_ms(cfg.arrival_spacing_ms);
    let lag = SimDuration::from_ms(cfg.recalc_lag_ms);
    let mut now = SimTime::ZERO;
    let mut recalc_events = 0u64;

    // Identical request stream in every cell.
    let mut req_rng = rng_for(cfg.seed, "congestion-requests");
    let mut admitted_ids: Vec<SessionId> = Vec::new();
    let mut rejected = 0u64;

    for i in 0..load {
        now += spacing;
        let req = random_request(net.overlay(), net.registry(), &cfg.request, &mut req_rng);
        let established = match net.compose(&req, &bcp) {
            Ok(outcome) => net.establish(&req, outcome).ok(),
            Err(_) => None,
        };
        match established {
            Some(id) => {
                admitted_ids.push(id);
                core.schedule(now + lag, recalc, id.raw());
            }
            None => rejected += 1,
        }
        for fired in core.pop_until(now) {
            debug_assert_eq!(fired.handler, recalc);
            net.state_mut().verify_flow_invariants().expect("flow invariants");
            recalc_events += 1;
        }
        if (i + 1) % cfg.observe_every.max(1) == 0 {
            net.observe_session_deliveries();
        }
    }
    // Drain the tail of scheduled recalcs, then a final reputation pass.
    now += lag;
    now += lag;
    for _ in core.pop_until(now) {
        net.state_mut().verify_flow_invariants().expect("flow invariants");
        recalc_events += 1;
    }
    net.observe_session_deliveries();

    // Measurement pass over the standing sessions.
    let mut violations = 0u64;
    let mut goodput = 0.0f64;
    let mut offered_mbps = 0.0f64;
    let mut frac_sum = 0.0f64;
    for &id in &admitted_ids {
        let frac = net.session_delivered_fraction(id).unwrap_or(1.0);
        goodput += net.session_goodput(id).unwrap_or(0.0);
        let delay = net.contended_session_delay(id).unwrap_or(0.0);
        let (demand, bound) = net
            .sessions()
            .session(id)
            .map(|s| {
                (
                    net.state().session_demand_mbps(&s.allocation),
                    s.request.qos_req.bounds()[dim::DELAY_MS],
                )
            })
            .unwrap_or((0.0, f64::INFINITY));
        offered_mbps += demand;
        frac_sum += frac;
        if frac < cfg.frac_floor || delay > bound {
            violations += 1;
        }
    }
    let admitted = admitted_ids.len() as u64;
    CongestionCell {
        policy,
        offered_sessions: load,
        admitted,
        rejected,
        violations,
        violation_rate: if admitted > 0 { violations as f64 / admitted as f64 } else { 0.0 },
        goodput_mbps: goodput,
        offered_mbps,
        mean_delivered: if admitted > 0 { frac_sum / admitted as f64 } else { 1.0 },
        recalc_events,
    }
}

/// Runs the full (policy × load) grid.
pub fn run(cfg: &CongestionConfig) -> CongestionResult {
    let mut grid: Vec<(SelectionPolicy, usize)> = Vec::new();
    for &p in &POLICIES {
        for &l in &cfg.loads {
            grid.push((p, l));
        }
    }
    let cells = par_map_with(super::resolve_threads(cfg.threads), grid, |_, (policy, load)| {
        run_cell(cfg, policy, load)
    });
    CongestionResult { cells, loads: cfg.loads.clone(), frac_floor: cfg.frac_floor }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CongestionConfig {
        CongestionConfig {
            ip_nodes: 300,
            peers: 60,
            loads: vec![10, 40],
            population: PopulationConfig { functions: 8, ..PopulationConfig::default() },
            ..CongestionConfig::default()
        }
    }

    #[test]
    fn grid_covers_every_policy_and_load() {
        let res = run(&tiny());
        assert_eq!(res.cells.len(), POLICIES.len() * 2);
        for (i, &p) in POLICIES.iter().enumerate() {
            for (j, &l) in res.loads.iter().enumerate() {
                let c = res.cell(i, j);
                assert_eq!(c.policy, p);
                assert_eq!(c.offered_sessions, l);
                assert_eq!(c.admitted + c.rejected, l as u64);
                assert!((0.0..=1.0).contains(&c.violation_rate));
                assert!((0.0..=1.0 + 1e-9).contains(&c.mean_delivered));
                assert!(c.goodput_mbps <= c.offered_mbps + 1e-6);
            }
        }
        assert!(res.to_string().contains("marketplace"));
        let csv = res.to_csv();
        assert_eq!(csv.lines().count(), 1 + res.cells.len());
    }

    #[test]
    fn congestion_bites_at_higher_load() {
        let res = run(&tiny());
        // Under the paper's static policy the heavier load cell must
        // deliver a strictly worse (or equal) mean fraction.
        let light = res.cell(0, 0);
        let heavy = res.cell(0, 1);
        assert!(heavy.mean_delivered <= light.mean_delivered + 1e-9);
        // Rate-recalc events fired for every admitted session.
        assert_eq!(heavy.recalc_events, heavy.admitted);
    }

    #[test]
    fn marketplace_is_no_worse_than_static_at_peak_load() {
        let res = run(&tiny());
        let last = res.loads.len() - 1;
        let paper = res.cell(0, last);
        let market = res.cell(1, last);
        assert!(
            market.violation_rate <= paper.violation_rate + 1e-9,
            "marketplace {} vs paper {}",
            market.violation_rate,
            paper.violation_rate
        );
    }

    #[test]
    fn cell_fanout_is_thread_invariant() {
        let mut one = tiny();
        one.loads = vec![15];
        let mut four = one.clone();
        one.threads = Some(1);
        four.threads = Some(4);
        let a = run(&one);
        let b = run(&four);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.violations, y.violations);
            assert_eq!(x.goodput_mbps.to_bits(), y.goodput_mbps.to_bits());
            assert_eq!(x.mean_delivered.to_bits(), y.mean_delivered.to_bits());
        }
    }
}
