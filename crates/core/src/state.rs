//! Live overlay resource state: peer capacities, link bandwidth, soft
//! (probe-time) and committed (session-time) allocations, and peer
//! liveness.
//!
//! In a deployment this state is sharded across peers — each peer admits
//! against its own CPU/memory and its adjacent links. The simulator holds
//! it in one table indexed by peer, but protocol code only touches a peer's
//! entries in steps that execute *at* that peer, so the semantics match the
//! fully decentralized system.
//!
//! **Soft resource allocation** (paper §4.2 step 2.1): when a probe visits
//! a peer, required resources are tentatively reserved so that concurrent
//! probes cannot jointly over-admit; reservations expire after a timeout
//! unless confirmed. Here the probing engine releases a request's
//! reservations explicitly at selection time, and the expiry clock handles
//! probes that die mid-flight.

use spidernet_sim::time::SimTime;
use spidernet_sim::trace::{TraceBuffer, TraceEvent};
use spidernet_topology::flow::{FlowKey, FlowNet, LinkId};
use spidernet_topology::Overlay;
use spidernet_util::arena::{SlotArena, SlotKey};
use spidernet_util::error::{Error, Result};
use spidernet_util::id::PeerId;
use spidernet_util::res::ResourceVector;
use spidernet_util::hash::FxHashMap;
use std::collections::BTreeMap;

/// Token identifying one soft reservation.
///
/// Packs a generational [`SlotKey`] into the soft-allocation arena, so a
/// token released (or expired) and whose slot was recycled by a later
/// reservation goes stale instead of aliasing the new holder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SoftToken(u64);

/// A committed per-session allocation, returned by [`OverlayState::commit`]
/// and passed back to [`OverlayState::release`] at teardown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionAllocation {
    /// Per-peer end-system resources held.
    pub peers: Vec<(PeerId, ResourceVector)>,
    /// Per-overlay-link bandwidth held (canonical link keys). Empty in
    /// flow mode, where streams share links elastically instead of
    /// reserving hard bandwidth.
    pub links: Vec<((usize, usize), f64)>,
    /// Flow handles, one per stream, when the shared-bandwidth flow
    /// model is enabled ([`OverlayState::enable_flow_model`]).
    pub flows: Vec<FlowKey>,
}

#[derive(Clone)]
struct SoftAlloc {
    peer: PeerId,
    res: ResourceVector,
    expires: SimTime,
    // Allocation sequence number. Slot order is recycling order, not
    // allocation order, so expiry sweeps sort on this to release in the
    // same order the old token-ordered ledger did (the released amounts
    // fold into per-peer float accumulators).
    seq: u64,
}

/// Per-peer access-link bandwidth, used by the geometric (scale) overlay
/// mode where paths are direct and bandwidth is charged at the two
/// endpoints' access links instead of per overlay hop.
#[derive(Clone)]
struct AccessLinks {
    capacity: Vec<f64>,
    committed: Vec<f64>,
}

/// Shared-bandwidth (flow) mode books: the [`FlowNet`] plus the mapping
/// from canonical overlay-link keys (geo: `(i, i)` access links) to flow
/// links, and per-peer incident-link lists for headroom queries.
#[derive(Clone)]
struct FlowBook {
    net: FlowNet,
    link_ids: FxHashMap<(usize, usize), LinkId>,
    incident: Vec<Vec<LinkId>>,
}

/// The overlay's live resource state.
#[derive(Clone)]
pub struct OverlayState {
    capacity: Vec<ResourceVector>,
    soft: Vec<ResourceVector>,
    committed: Vec<ResourceVector>,
    alive: Vec<bool>,
    link_capacity: FxHashMap<(usize, usize), f64>,
    link_committed: FxHashMap<(usize, usize), f64>,
    access: Option<AccessLinks>,
    // `Some` once `enable_flow_model` switches bandwidth to elastic
    // max-min fair sharing; `None` keeps the paper's hard reservations.
    flows: Option<FlowBook>,
    soft_allocs: SlotArena<SoftAlloc>,
    next_seq: u64,
    // Load-shedding watermark ψ (fraction of CPU capacity). Non-finite
    // (the default `INFINITY`) disables crossing tracking entirely.
    shed_watermark: f64,
    // How many times any peer's CPU utilization crossed the watermark in
    // either direction. Folded into the compose-cache epoch so cached
    // qualified-replica pools are invalidated exactly when a peer's
    // shed/no-shed classification may have changed.
    watermark_crossings: u64,
}

fn link_key(a: PeerId, b: PeerId) -> (usize, usize) {
    let (x, y) = (a.index(), b.index());
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

impl OverlayState {
    /// Initializes state from an overlay: every peer gets
    /// `peer_capacity`, every overlay link its topology capacity.
    pub fn new(overlay: &Overlay, peer_capacity: ResourceVector) -> Self {
        let n = overlay.peer_count();
        let mut link_capacity = FxHashMap::default();
        for (a, b, e) in overlay.graph().edges() {
            link_capacity.insert((a, b), e.capacity_mbps);
        }
        let access = overlay.is_geo().then(|| AccessLinks {
            capacity: (0..n)
                .map(|i| overlay.access_capacity(PeerId::from(i)).unwrap_or(0.0))
                .collect(),
            committed: vec![0.0; n],
        });
        OverlayState {
            capacity: vec![peer_capacity; n],
            soft: vec![ResourceVector::ZERO; n],
            committed: vec![ResourceVector::ZERO; n],
            alive: vec![true; n],
            link_capacity,
            link_committed: FxHashMap::default(),
            access,
            flows: None,
            soft_allocs: SlotArena::new(),
            next_seq: 0,
            shed_watermark: f64::INFINITY,
            watermark_crossings: 0,
        }
    }

    /// Sets the load-shedding watermark ψ used for crossing tracking.
    /// Pass `f64::INFINITY` (the default) to disable tracking.
    pub fn set_shed_watermark(&mut self, psi: f64) {
        self.shed_watermark = psi;
    }

    /// How many times any peer's CPU utilization crossed the watermark
    /// (in either direction) since construction. Monotone; meaningful
    /// only while a finite watermark is set.
    pub fn watermark_crossings(&self) -> u64 {
        self.watermark_crossings
    }

    /// Fraction of a peer's CPU capacity held by soft + committed
    /// allocations. Dead peers and zero-capacity peers report 1.0.
    pub fn cpu_utilization(&self, peer: PeerId) -> f64 {
        let i = peer.index();
        let cap = self.capacity[i].cpu();
        if !self.alive[i] || cap <= 0.0 {
            return 1.0;
        }
        (self.soft[i].cpu() + self.committed[i].cpu()) / cap
    }

    // Records a watermark crossing if `peer`'s utilization moved from one
    // side of ψ to the other. `before` is the pre-mutation utilization.
    fn note_watermark(&mut self, peer: PeerId, before: f64) {
        if !self.shed_watermark.is_finite() {
            return;
        }
        let after = self.cpu_utilization(peer);
        if (before >= self.shed_watermark) != (after >= self.shed_watermark) {
            self.watermark_crossings += 1;
        }
    }

    /// Overrides one peer's capacity (heterogeneous populations).
    pub fn set_capacity(&mut self, peer: PeerId, cap: ResourceVector) {
        self.capacity[peer.index()] = cap;
    }

    /// A peer's total capacity.
    pub fn capacity(&self, peer: PeerId) -> ResourceVector {
        self.capacity[peer.index()]
    }

    /// A peer's currently available resources: capacity minus soft and
    /// committed holdings; zero for a dead peer.
    pub fn available(&self, peer: PeerId) -> ResourceVector {
        if !self.alive[peer.index()] {
            return ResourceVector::ZERO;
        }
        self.capacity[peer.index()]
            .saturating_sub(&self.soft[peer.index()])
            .saturating_sub(&self.committed[peer.index()])
    }

    /// Liveness flag.
    pub fn is_alive(&self, peer: PeerId) -> bool {
        self.alive[peer.index()]
    }

    /// Marks a peer failed. Its committed and soft holdings become moot
    /// (available() is zero while dead); sessions referencing it are the
    /// recovery layer's problem.
    pub fn fail_peer(&mut self, peer: PeerId) {
        self.alive[peer.index()] = false;
    }

    /// Revives a failed peer with a clean slate (a rejoining peer restarts
    /// its components; stale holdings from before the failure are dropped).
    pub fn revive_peer(&mut self, peer: PeerId) {
        let i = peer.index();
        self.alive[i] = true;
        self.soft[i] = ResourceVector::ZERO;
        self.committed[i] = ResourceVector::ZERO;
        self.soft_allocs.retain(|_, a| a.peer != peer);
    }

    /// Live peers (diagnostics).
    pub fn live_peers(&self) -> Vec<PeerId> {
        (0..self.alive.len()).filter(|&i| self.alive[i]).map(PeerId::from).collect()
    }

    // --- soft (probe-time) reservations -------------------------------

    /// Attempts a soft reservation of `res` on `peer`, expiring at
    /// `expires`. Fails if the peer is dead or lacks headroom. A
    /// successful reservation records a [`TraceEvent::SoftAlloc`].
    pub fn soft_allocate(
        &mut self,
        peer: PeerId,
        res: ResourceVector,
        expires: SimTime,
        trace: &mut TraceBuffer,
    ) -> Result<SoftToken> {
        if !self.alive[peer.index()] || !res.fits_within(&self.available(peer)) {
            return Err(Error::AdmissionRejected { peer: peer.raw() });
        }
        let before = self.cpu_utilization(peer);
        self.soft[peer.index()] = self.soft[peer.index()].add(&res);
        self.note_watermark(peer, before);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.soft_allocs.insert(SoftAlloc { peer, res, expires, seq });
        trace.record(TraceEvent::SoftAlloc { peer: peer.raw() });
        Ok(SoftToken(key.to_raw()))
    }

    /// Releases a soft reservation, recording a
    /// [`TraceEvent::SoftRelease`]. Idempotent against the expiry sweep:
    /// once [`OverlayState::expire_soft`] has reclaimed a token, a late
    /// `release_soft` on the same token returns `false` and credits
    /// nothing — the token is consumed by whichever path releases it
    /// first, so availability can never be double-credited.
    pub fn release_soft(&mut self, token: SoftToken, trace: &mut TraceBuffer) -> bool {
        if let Some(a) = self.soft_allocs.remove(SlotKey::from_raw(token.0)) {
            let before = self.cpu_utilization(a.peer);
            self.soft[a.peer.index()] = self.soft[a.peer.index()].saturating_sub(&a.res);
            self.note_watermark(a.peer, before);
            trace.record(TraceEvent::SoftRelease { peer: a.peer.raw() });
            true
        } else {
            false
        }
    }

    /// Drops every reservation whose deadline has passed. Returns how many
    /// expired. Releases run in allocation (`seq`) order — the same order
    /// the token-ordered ledger used — so the per-peer float accumulators
    /// fold identically.
    pub fn expire_soft(&mut self, now: SimTime, trace: &mut TraceBuffer) -> usize {
        let mut expired: Vec<(u64, SlotKey)> = self
            .soft_allocs
            .iter()
            .filter(|(_, a)| a.expires <= now)
            .map(|(k, a)| (a.seq, k))
            .collect();
        expired.sort_unstable_by_key(|&(seq, _)| seq);
        for &(_, k) in &expired {
            self.release_soft(SoftToken(k.to_raw()), trace);
        }
        expired.len()
    }

    /// Number of outstanding soft reservations.
    pub fn soft_count(&self) -> usize {
        self.soft_allocs.len()
    }

    /// Verifies the soft-allocation books: for every peer, the sum of its
    /// live [`SoftAlloc`] entries must equal the per-peer soft ledger (to
    /// float tolerance). The fault lab and the model checker call this
    /// after every step — a double release, a missed expiry, or a leaked
    /// reservation shows up here as a ledger mismatch. (A dead peer may
    /// still hold unexpired entries: [`OverlayState::fail_peer`] leaves
    /// the books alone and [`OverlayState::revive_peer`] clears entries
    /// and ledger together, so the equality holds through churn too.)
    pub fn verify_soft_accounting(&self) -> std::result::Result<(), String> {
        let mut sums = vec![ResourceVector::ZERO; self.soft.len()];
        let mut counts = vec![0usize; self.soft.len()];
        for (_, a) in self.soft_allocs.iter() {
            sums[a.peer.index()] = sums[a.peer.index()].add(&a.res);
            counts[a.peer.index()] += 1;
        }
        for i in 0..self.soft.len() {
            let ledger = &self.soft[i];
            let sum = &sums[i];
            if (ledger.cpu() - sum.cpu()).abs() > 1e-6
                || (ledger.memory() - sum.memory()).abs() > 1e-6
            {
                return Err(format!(
                    "peer {i}: soft ledger {:?} != sum of {} live reservations {:?}",
                    ledger, counts[i], sum
                ));
            }
        }
        Ok(())
    }

    /// A peer's total soft-reserved load (invariant checks).
    pub fn soft_load(&self, peer: PeerId) -> ResourceVector {
        self.soft[peer.index()]
    }

    /// A peer's total committed (session-time) load (invariant checks).
    pub fn committed_load(&self, peer: PeerId) -> ResourceVector {
        self.committed[peer.index()]
    }

    // --- link bandwidth ------------------------------------------------

    /// Available bandwidth on the direct overlay link `{a, b}`, Mbit/s.
    /// Zero if the link does not exist or either endpoint is dead. In geo
    /// mode every pair is "linked" and the figure is the tighter of the
    /// two endpoints' free access-link bandwidth.
    pub fn link_available(&self, a: PeerId, b: PeerId) -> f64 {
        if !self.alive[a.index()] || !self.alive[b.index()] {
            return 0.0;
        }
        if self.flows.is_some() {
            // Flow mode: streams are elastic, so bandwidth never gates
            // admission or evaluation — report the static capacity and
            // let contention show up in delivered rate instead.
            if let Some(acc) = &self.access {
                return acc.capacity[a.index()].min(acc.capacity[b.index()]).max(0.0);
            }
            return self.link_capacity.get(&link_key(a, b)).copied().unwrap_or(0.0);
        }
        if let Some(acc) = &self.access {
            let fa = (acc.capacity[a.index()] - acc.committed[a.index()]).max(0.0);
            let fb = (acc.capacity[b.index()] - acc.committed[b.index()]).max(0.0);
            return fa.min(fb);
        }
        let key = link_key(a, b);
        let cap = self.link_capacity.get(&key).copied().unwrap_or(0.0);
        let used = self.link_committed.get(&key).copied().unwrap_or(0.0);
        (cap - used).max(0.0)
    }

    /// Bottleneck available bandwidth along a peer path (consecutive pairs
    /// must be overlay links).
    pub fn path_available(&self, path: &[PeerId]) -> f64 {
        if path.len() < 2 {
            return f64::INFINITY;
        }
        path.windows(2).map(|w| self.link_available(w[0], w[1])).fold(f64::INFINITY, f64::min)
    }

    // --- shared-bandwidth (flow) mode -----------------------------------

    /// Switches bandwidth accounting from hard per-link reservations to
    /// the shared-bandwidth flow model: committed streams become flows
    /// over their route's links with max-min fair-share rates
    /// ([`spidernet_topology::flow::FlowNet`]). Admission stops gating on
    /// bandwidth (CPU admission and ψ shedding are untouched); instead
    /// the *delivered* rate of each session degrades under contention
    /// ([`OverlayState::delivered_fraction`]). Idempotent; there is no
    /// way back because released hard reservations and live flows would
    /// not reconcile.
    pub fn enable_flow_model(&mut self) {
        if self.flows.is_some() {
            return;
        }
        let n = self.capacity.len();
        let mut net = FlowNet::new();
        let mut link_ids = FxHashMap::default();
        let mut incident = vec![Vec::new(); n];
        if let Some(acc) = &self.access {
            // Geo mode: one flow link per peer access pipe, keyed (i, i).
            for (i, links) in incident.iter_mut().enumerate() {
                let id = net.add_link(acc.capacity[i].max(0.0));
                link_ids.insert((i, i), id);
                links.push(id);
            }
        } else {
            // Sorted key order so the link-id assignment (and therefore
            // every downstream float fold) is hash-order independent.
            let mut keys: Vec<(usize, usize)> = self.link_capacity.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let id = net.add_link(self.link_capacity[&key]);
                link_ids.insert(key, id);
                incident[key.0].push(id);
                if key.1 != key.0 {
                    incident[key.1].push(id);
                }
            }
        }
        self.flows = Some(FlowBook { net, link_ids, incident });
    }

    /// Whether the shared-bandwidth flow model is active.
    pub fn flow_model_enabled(&self) -> bool {
        self.flows.is_some()
    }

    /// Live flows in the flow model (0 when disabled).
    pub fn flow_count(&self) -> usize {
        self.flows.as_ref().map(|b| b.net.flow_count()).unwrap_or(0)
    }

    /// `(epoch, recalcs)` of the flow model: mutations seen and lazy
    /// rate recomputes actually run. `(0, 0)` when disabled.
    pub fn flow_stats(&self) -> (u64, u64) {
        self.flows.as_ref().map(|b| (b.net.epoch(), b.net.recalcs())).unwrap_or((0, 0))
    }

    /// Fraction of a session's demanded stream bandwidth actually
    /// delivered under max-min fair sharing: the minimum over its flows
    /// of `rate / demand`. 1.0 when the flow model is off or the session
    /// crosses no network links.
    pub fn delivered_fraction(&mut self, alloc: &SessionAllocation) -> f64 {
        let Some(book) = &mut self.flows else { return 1.0 };
        let mut frac = 1.0f64;
        for &k in &alloc.flows {
            if let (Some(rate), Some(demand)) = (book.net.rate(k), book.net.demand(k)) {
                if demand > 0.0 {
                    frac = frac.min((rate / demand).clamp(0.0, 1.0));
                }
            }
        }
        frac
    }

    /// Sum of a session's fair-share flow rates in Mbps (its delivered
    /// network goodput). Equals the demanded total when uncontended;
    /// 0.0 when the flow model is off or the session crosses no links.
    pub fn session_goodput(&mut self, alloc: &SessionAllocation) -> f64 {
        let Some(book) = &mut self.flows else { return 0.0 };
        alloc.flows.iter().filter_map(|&k| book.net.rate(k)).sum()
    }

    /// Sum of a session's demanded flow bandwidth in Mbps (0.0 with the
    /// flow model off).
    pub fn session_demand_mbps(&self, alloc: &SessionAllocation) -> f64 {
        let Some(book) = &self.flows else { return 0.0 };
        alloc.flows.iter().filter_map(|&k| book.net.demand(k)).sum()
    }

    /// Utilization ρ ∈ [0, 1] of the flow link(s) behind overlay hop
    /// `{a, b}` (geo: the worse of the two endpoints' access pipes).
    /// 0 when the flow model is off or the hop is unknown. Feeds
    /// contention-aware delay queries (`PathTable::contended_delay`).
    pub fn link_stress(&mut self, a: PeerId, b: PeerId) -> f64 {
        let geo = self.access.is_some();
        let Some(book) = &mut self.flows else { return 0.0 };
        let keys: [(usize, usize); 2] = if geo {
            [(a.index(), a.index()), (b.index(), b.index())]
        } else {
            let k = link_key(a, b);
            [k, k]
        };
        let mut stress = 0.0f64;
        for key in keys {
            if let Some(&id) = book.link_ids.get(&key) {
                stress = stress.max(1.0 - book.net.link_headroom(id));
            }
        }
        stress
    }

    /// A peer's residual bandwidth headroom in [0, 1]: the minimum
    /// `1 − ρ` over its incident flow links (dead peers report 0). With
    /// the flow model off this falls back to the peer's free CPU
    /// fraction — the best congestion proxy hard reservations offer.
    /// This is the residual-capacity factor of marketplace bids.
    pub fn peer_headroom(&mut self, peer: PeerId) -> f64 {
        let i = peer.index();
        if !self.alive[i] {
            return 0.0;
        }
        match &mut self.flows {
            Some(book) => {
                let mut h = 1.0f64;
                for &id in &book.incident[i] {
                    h = h.min(book.net.link_headroom(id));
                }
                h
            }
            None => {
                let cap = self.capacity[i].cpu();
                if cap <= 0.0 {
                    return 0.0;
                }
                (self.available(peer).cpu() / cap).clamp(0.0, 1.0)
            }
        }
    }

    /// Checks the flow model's fair-share safety invariants (rates within
    /// demand, per-link totals within capacity). `Ok` when disabled.
    pub fn verify_flow_invariants(&mut self) -> std::result::Result<(), String> {
        match &mut self.flows {
            Some(book) => book.net.verify_invariants(),
            None => Ok(()),
        }
    }

    // --- committed (session-time) allocations ---------------------------

    /// Atomically commits a session's demand: per-peer resources and
    /// per-link bandwidth (links given as peer paths with their demanded
    /// rate). On any shortfall nothing is taken.
    pub fn commit(
        &mut self,
        peer_demand: &[(PeerId, ResourceVector)],
        link_demand: &[(Vec<PeerId>, f64)],
    ) -> Result<SessionAllocation> {
        // Feasibility pass.
        for &(p, res) in peer_demand {
            if !self.alive[p.index()] || !res.fits_within(&self.available(p)) {
                return Err(Error::AdmissionRejected { peer: p.raw() });
            }
        }
        if self.flows.is_some() {
            // Flow mode: streams are elastic — no link feasibility gate
            // and no hard bandwidth bookkeeping. Each demanded path
            // becomes one flow over its links; contention shows up as a
            // delivered fraction below 1, not as a rejection.
            let mut alloc = SessionAllocation::default();
            for &(p, res) in peer_demand {
                let before = self.cpu_utilization(p);
                self.committed[p.index()] = self.committed[p.index()].add(&res);
                self.note_watermark(p, before);
                alloc.peers.push((p, res));
            }
            let geo = self.access.is_some();
            let book = self.flows.as_mut().expect("checked above");
            let mut links: Vec<LinkId> = Vec::new();
            for (path, bw) in link_demand {
                if path.len() < 2 {
                    continue; // same-peer stream: no network links
                }
                links.clear();
                if geo {
                    let (s, d) = (path[0].index(), path[path.len() - 1].index());
                    if let Some(&id) = book.link_ids.get(&(s, s)) {
                        links.push(id);
                    }
                    if d != s {
                        if let Some(&id) = book.link_ids.get(&(d, d)) {
                            links.push(id);
                        }
                    }
                } else {
                    for w in path.windows(2) {
                        if let Some(&id) = book.link_ids.get(&link_key(w[0], w[1])) {
                            links.push(id);
                        }
                    }
                }
                alloc.flows.push(book.net.add_flow(&links, *bw));
            }
            return Ok(alloc);
        }
        // Aggregate per-link bandwidth (paths may share links). Key-ordered
        // so the allocation's link list and the committed-bandwidth float
        // folds are independent of hash order.
        let mut per_link: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (path, bw) in link_demand {
            for w in path.windows(2) {
                *per_link.entry(link_key(w[0], w[1])).or_insert(0.0) += bw;
            }
        }
        if let Some(acc) = &self.access {
            // Geo mode: each link charges both endpoints' access links, so
            // feasibility needs per-endpoint aggregation (two links sharing
            // an endpoint draw from the same access pipe).
            let mut per_peer: BTreeMap<usize, f64> = BTreeMap::new();
            for (&(a, b), &need) in &per_link {
                *per_peer.entry(a).or_insert(0.0) += need;
                if b != a {
                    *per_peer.entry(b).or_insert(0.0) += need;
                }
            }
            for (&i, &need) in &per_peer {
                let free = acc.capacity[i] - acc.committed[i];
                if free < need - 1e-12 {
                    return Err(Error::Network(format!(
                        "access link of peer {i} lacks {need} Mbps ({free} free)"
                    )));
                }
            }
        } else {
            for (&key, &need) in &per_link {
                let cap = self.link_capacity.get(&key).copied().unwrap_or(0.0);
                let used = self.link_committed.get(&key).copied().unwrap_or(0.0);
                if cap - used < need - 1e-12 {
                    return Err(Error::Network(format!(
                        "link {key:?} lacks {need} Mbps ({} free)",
                        cap - used
                    )));
                }
            }
        }
        // Take everything.
        let mut alloc = SessionAllocation::default();
        for &(p, res) in peer_demand {
            let before = self.cpu_utilization(p);
            self.committed[p.index()] = self.committed[p.index()].add(&res);
            self.note_watermark(p, before);
            alloc.peers.push((p, res));
        }
        for (key, need) in per_link {
            if let Some(acc) = &mut self.access {
                acc.committed[key.0] += need;
                if key.1 != key.0 {
                    acc.committed[key.1] += need;
                }
            } else {
                *self.link_committed.entry(key).or_insert(0.0) += need;
            }
            alloc.links.push((key, need));
        }
        Ok(alloc)
    }

    /// Releases a committed allocation at session teardown.
    pub fn release(&mut self, alloc: &SessionAllocation) {
        for &(p, res) in &alloc.peers {
            let before = self.cpu_utilization(p);
            self.committed[p.index()] = self.committed[p.index()].saturating_sub(&res);
            self.note_watermark(p, before);
        }
        for &(key, bw) in &alloc.links {
            if let Some(acc) = &mut self.access {
                acc.committed[key.0] = (acc.committed[key.0] - bw).max(0.0);
                if key.1 != key.0 {
                    acc.committed[key.1] = (acc.committed[key.1] - bw).max(0.0);
                }
            } else if let Some(used) = self.link_committed.get_mut(&key) {
                *used = (*used - bw).max(0.0);
            }
        }
        if let Some(book) = &mut self.flows {
            for &k in &alloc.flows {
                book.net.remove_flow(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};

    fn overlay() -> Overlay {
        let ip = generate_power_law(&InetConfig { nodes: 120, ..InetConfig::default() }, 2);
        Overlay::build(
            &ip,
            &OverlayConfig { peers: 24, style: OverlayStyle::Mesh { neighbors: 4 } },
            2,
        )
    }

    fn state() -> OverlayState {
        OverlayState::new(&overlay(), ResourceVector::new(1.0, 256.0))
    }

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn initial_availability_equals_capacity() {
        let s = state();
        let p = PeerId::new(0);
        assert_eq!(s.available(p), s.capacity(p));
        assert!(s.is_alive(p));
        assert_eq!(s.live_peers().len(), 24);
    }

    #[test]
    fn soft_allocation_reduces_availability_until_released() {
        let mut s = state();
        let p = PeerId::new(1);
        let tok = s.soft_allocate(p, ResourceVector::new(0.4, 100.0), t(1000.0), &mut TraceBuffer::new()).unwrap();
        let avail = s.available(p);
        assert!((avail.cpu() - 0.6).abs() < 1e-12);
        s.release_soft(tok, &mut TraceBuffer::new());
        assert_eq!(s.available(p), s.capacity(p));
    }

    #[test]
    fn soft_allocation_rejects_overcommit() {
        let mut s = state();
        let p = PeerId::new(2);
        s.soft_allocate(p, ResourceVector::new(0.8, 10.0), t(1000.0), &mut TraceBuffer::new()).unwrap();
        let err = s.soft_allocate(p, ResourceVector::new(0.3, 10.0), t(1000.0), &mut TraceBuffer::new());
        assert_eq!(err.unwrap_err(), Error::AdmissionRejected { peer: 2 });
    }

    #[test]
    fn concurrent_probes_cannot_jointly_over_admit() {
        // The paper's motivation for soft allocation: two probes that each
        // fit alone must not both pass when together they exceed capacity.
        let mut s = state();
        let p = PeerId::new(3);
        let half = ResourceVector::new(0.6, 100.0);
        assert!(s.soft_allocate(p, half, t(1000.0), &mut TraceBuffer::new()).is_ok());
        assert!(s.soft_allocate(p, half, t(1000.0), &mut TraceBuffer::new()).is_err());
    }

    #[test]
    fn expiry_drops_overdue_reservations() {
        let mut s = state();
        let p = PeerId::new(4);
        s.soft_allocate(p, ResourceVector::new(0.5, 10.0), t(100.0), &mut TraceBuffer::new()).unwrap();
        s.soft_allocate(p, ResourceVector::new(0.3, 10.0), t(300.0), &mut TraceBuffer::new()).unwrap();
        assert_eq!(s.expire_soft(t(100.0), &mut TraceBuffer::new()), 1);
        assert_eq!(s.soft_count(), 1);
        assert!((s.available(p).cpu() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn releasing_unknown_token_is_noop() {
        let mut s = state();
        let p = PeerId::new(5);
        let tok = s.soft_allocate(p, ResourceVector::new(0.1, 1.0), t(10.0), &mut TraceBuffer::new()).unwrap();
        assert!(s.release_soft(tok, &mut TraceBuffer::new()));
        assert!(!s.release_soft(tok, &mut TraceBuffer::new())); // double release
        assert_eq!(s.available(p), s.capacity(p));
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        // `expire_soft` uses `expires <= now`: a token expiring exactly at
        // `now` is swept, one microsecond later survives.
        let mut s = state();
        let p = PeerId::new(7);
        s.soft_allocate(p, ResourceVector::new(0.2, 8.0), t(100.0), &mut TraceBuffer::new())
            .unwrap();
        s.soft_allocate(p, ResourceVector::new(0.3, 8.0), t(100.001), &mut TraceBuffer::new())
            .unwrap();
        assert_eq!(s.expire_soft(t(100.0), &mut TraceBuffer::new()), 1);
        assert_eq!(s.soft_count(), 1);
        assert!((s.soft_load(p).cpu() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn late_release_after_expiry_sweep_does_not_double_credit() {
        // A probe releases its reservation *after* the expiry clock already
        // reclaimed it (the `expires == now` boundary case). The second
        // release must consume nothing: with two tokens on the same peer,
        // double-crediting the first would zero the soft load and make the
        // peer look emptier than it is.
        let mut s = state();
        let p = PeerId::new(8);
        let early = s
            .soft_allocate(p, ResourceVector::new(0.3, 16.0), t(50.0), &mut TraceBuffer::new())
            .unwrap();
        let _late = s
            .soft_allocate(p, ResourceVector::new(0.4, 16.0), t(500.0), &mut TraceBuffer::new())
            .unwrap();
        assert_eq!(s.expire_soft(t(50.0), &mut TraceBuffer::new()), 1);
        assert!((s.soft_load(p).cpu() - 0.4).abs() < 1e-12);
        // Late release of the already-expired token: no-op, no credit.
        assert!(!s.release_soft(early, &mut TraceBuffer::new()));
        assert!((s.soft_load(p).cpu() - 0.4).abs() < 1e-12, "double-credited availability");
        assert!((s.available(p).cpu() - 0.6).abs() < 1e-12);
        assert_eq!(s.soft_count(), 1);
    }

    #[test]
    fn release_before_expiry_sweep_at_boundary_does_not_double_credit() {
        // The reversed ordering of the case above: the probe's explicit
        // release lands *first*, then the expiry clock sweeps the exact
        // `expires == now` boundary. The sweep must find the token gone
        // and reclaim nothing — releasing it a second time would credit
        // the peer twice from the other direction.
        let mut s = state();
        let p = PeerId::new(8);
        let early = s
            .soft_allocate(p, ResourceVector::new(0.3, 16.0), t(50.0), &mut TraceBuffer::new())
            .unwrap();
        let _late = s
            .soft_allocate(p, ResourceVector::new(0.4, 16.0), t(500.0), &mut TraceBuffer::new())
            .unwrap();
        assert!(s.release_soft(early, &mut TraceBuffer::new()));
        assert!((s.soft_load(p).cpu() - 0.4).abs() < 1e-12);
        // The sweep at the released token's exact deadline: nothing left
        // to expire at t=50, the unexpired token is untouched.
        assert_eq!(s.expire_soft(t(50.0), &mut TraceBuffer::new()), 0);
        assert!((s.soft_load(p).cpu() - 0.4).abs() < 1e-12, "double-credited availability");
        assert!((s.available(p).cpu() - 0.6).abs() < 1e-12);
        assert_eq!(s.soft_count(), 1);
        s.verify_soft_accounting().unwrap();
    }

    #[test]
    fn soft_accounting_stays_exact_through_churn() {
        // The ledger-vs-arena invariant the fault lab and model checker
        // lean on: sum of live reservations == per-peer soft ledger,
        // through allocate / release / expire / fail / revive.
        let mut s = state();
        let (pa, pb) = (PeerId::new(12), PeerId::new(13));
        let mut tr = TraceBuffer::new();
        let a = s.soft_allocate(pa, ResourceVector::new(0.2, 8.0), t(100.0), &mut tr).unwrap();
        let _b = s.soft_allocate(pa, ResourceVector::new(0.3, 8.0), t(200.0), &mut tr).unwrap();
        let _c = s.soft_allocate(pb, ResourceVector::new(0.5, 8.0), t(150.0), &mut tr).unwrap();
        s.verify_soft_accounting().unwrap();
        s.release_soft(a, &mut tr);
        s.verify_soft_accounting().unwrap();
        s.expire_soft(t(160.0), &mut tr);
        s.verify_soft_accounting().unwrap();
        s.fail_peer(pa);
        s.revive_peer(pa); // drops pa's entries and zeroes its ledger together
        s.verify_soft_accounting().unwrap();
        assert_eq!(s.soft_count(), 0);
    }

    #[test]
    fn dead_peers_have_nothing_available() {
        let mut s = state();
        let p = PeerId::new(6);
        s.fail_peer(p);
        assert!(!s.is_alive(p));
        assert_eq!(s.available(p), ResourceVector::ZERO);
        assert!(s.soft_allocate(p, ResourceVector::new(0.1, 1.0), t(10.0), &mut TraceBuffer::new()).is_err());
        s.revive_peer(p);
        assert_eq!(s.available(p), s.capacity(p));
    }

    #[test]
    fn commit_and_release_roundtrip() {
        let ov = overlay();
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        // Pick a real overlay link for the bandwidth path.
        let (a, b, e) = ov.graph().edges().next().unwrap();
        let (pa, pb) = (PeerId::from(a), PeerId::from(b));
        let alloc = s
            .commit(
                &[(pa, ResourceVector::new(0.2, 64.0))],
                &[(vec![pa, pb], 10.0)],
            )
            .unwrap();
        assert!((s.available(pa).cpu() - 0.8).abs() < 1e-12);
        assert!((s.link_available(pa, pb) - (e.capacity_mbps - 10.0)).abs() < 1e-9);
        s.release(&alloc);
        assert_eq!(s.available(pa), s.capacity(pa));
        assert!((s.link_available(pa, pb) - e.capacity_mbps).abs() < 1e-9);
    }

    #[test]
    fn commit_is_atomic_on_failure() {
        let ov = overlay();
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        let (a, b, _) = ov.graph().edges().next().unwrap();
        let (pa, pb) = (PeerId::from(a), PeerId::from(b));
        // Second peer demand exceeds capacity → whole commit must fail and
        // leave the first peer untouched.
        let err = s.commit(
            &[
                (pa, ResourceVector::new(0.2, 64.0)),
                (pb, ResourceVector::new(5.0, 64.0)),
            ],
            &[],
        );
        assert!(err.is_err());
        assert_eq!(s.available(pa), s.capacity(pa));
    }

    #[test]
    fn commit_rejects_bandwidth_overload() {
        let ov = overlay();
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        let (a, b, e) = ov.graph().edges().next().unwrap();
        let (pa, pb) = (PeerId::from(a), PeerId::from(b));
        let err = s.commit(&[], &[(vec![pa, pb], e.capacity_mbps + 1.0)]);
        assert!(err.is_err());
        assert!((s.link_available(pa, pb) - e.capacity_mbps).abs() < 1e-9);
    }

    #[test]
    fn flow_mode_admits_elastically_and_degrades_delivery() {
        let ov = overlay();
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        s.enable_flow_model();
        assert!(s.flow_model_enabled());
        let (a, b, e) = ov.graph().edges().next().unwrap();
        let (pa, pb) = (PeerId::from(a), PeerId::from(b));
        // Two streams that together exceed the link are both admitted —
        // hard reservations would reject the second one...
        let big = e.capacity_mbps * 0.8;
        let s1 = s.commit(&[], &[(vec![pa, pb], big)]).unwrap();
        let s2 = s.commit(&[], &[(vec![pa, pb], big)]).unwrap();
        assert!(s1.links.is_empty(), "flow mode holds no hard link reservations");
        assert_eq!(s.flow_count(), 2);
        // ...but each only receives its max-min fair share.
        let f1 = s.delivered_fraction(&s1);
        assert!((f1 - 0.5 / 0.8).abs() < 1e-9, "fair share fraction: {f1}");
        assert!(s.link_stress(pa, pb) > 1.0 - 1e-9, "saturated link must read ρ≈1");
        assert!(s.verify_flow_invariants().is_ok());
        // Evaluation still sees static capacity: admission never gates.
        assert!((s.link_available(pa, pb) - e.capacity_mbps).abs() < 1e-9);
        s.release(&s2);
        assert!((s.delivered_fraction(&s1) - 1.0).abs() < 1e-12);
        assert_eq!(s.flow_count(), 1);
        s.release(&s1);
        assert_eq!(s.flow_count(), 0);
        assert!(s.peer_headroom(pa) > 1.0 - 1e-9);
        let (epoch, recalcs) = s.flow_stats();
        assert_eq!(epoch, 4, "two adds + two removes");
        assert!(recalcs >= 1);
    }

    #[test]
    fn flow_mode_geo_squeezes_shared_access_pipes() {
        use spidernet_topology::overlay::GeoConfig;
        let ov = Overlay::build_geo(&GeoConfig { peers: 16, ..GeoConfig::default() }, 5);
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        s.enable_flow_model();
        let (pa, pb, pc) = (PeerId::new(0), PeerId::new(1), PeerId::new(2));
        let cap_a = ov.access_capacity(pa).unwrap();
        // Two full-pipe streams out of pa share its access link.
        let a1 = s.commit(&[], &[(vec![pa, pb], cap_a)]).unwrap();
        let a2 = s.commit(&[], &[(vec![pa, pc], cap_a)]).unwrap();
        let f = s.delivered_fraction(&a1);
        assert!(f < 1.0 - 1e-9, "shared access pipe must degrade delivery: {f}");
        assert!(s.verify_flow_invariants().is_ok());
        assert!(s.peer_headroom(pa) < 1e-6, "pa's pipe is saturated");
        s.release(&a1);
        s.release(&a2);
        assert!((s.delivered_fraction(&a1) - 1.0).abs() < 1e-12, "stale keys are inert");
        assert_eq!(s.flow_count(), 0);
    }

    #[test]
    fn shared_links_aggregate_demand_within_one_commit() {
        let ov = overlay();
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        let (a, b, e) = ov.graph().edges().next().unwrap();
        let (pa, pb) = (PeerId::from(a), PeerId::from(b));
        // Two branch paths over the same link: demands add.
        let alloc = s
            .commit(&[], &[(vec![pa, pb], 10.0), (vec![pa, pb], 5.0)])
            .unwrap();
        assert!((s.link_available(pa, pb) - (e.capacity_mbps - 15.0)).abs() < 1e-9);
        s.release(&alloc);
    }

    #[test]
    fn path_available_is_bottleneck() {
        let ov = overlay();
        let s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        // A single-node "path" has infinite bandwidth (no links used).
        assert!(s.path_available(&[PeerId::new(0)]).is_infinite());
        let (a, b, e) = ov.graph().edges().next().unwrap();
        let got = s.path_available(&[PeerId::from(a), PeerId::from(b)]);
        assert!((got - e.capacity_mbps).abs() < 1e-9);
    }

    #[test]
    fn recycled_token_slot_does_not_alias_new_reservation() {
        // Crash→revive churn: a reservation freed by revive_peer has its
        // slot recycled by a later reservation. The stale token must not
        // release (or double-credit) the new holder's reservation.
        let mut s = state();
        let (pa, pb) = (PeerId::new(9), PeerId::new(10));
        let stale = s
            .soft_allocate(pa, ResourceVector::new(0.5, 32.0), t(1000.0), &mut TraceBuffer::new())
            .unwrap();
        s.fail_peer(pa);
        s.revive_peer(pa); // frees pa's ledger entries → slot goes back to the pool
        let fresh = s
            .soft_allocate(pb, ResourceVector::new(0.25, 16.0), t(1000.0), &mut TraceBuffer::new())
            .unwrap();
        assert_ne!(stale, fresh, "recycled slot must mint a different token");
        assert!(!s.release_soft(stale, &mut TraceBuffer::new()), "stale token must be inert");
        assert!((s.soft_load(pb).cpu() - 0.25).abs() < 1e-12);
        assert!(s.release_soft(fresh, &mut TraceBuffer::new()));
        assert_eq!(s.soft_count(), 0);
    }

    #[test]
    fn geo_mode_charges_access_links_at_endpoints() {
        use spidernet_topology::overlay::GeoConfig;
        let ov = Overlay::build_geo(&GeoConfig { peers: 16, ..GeoConfig::default() }, 5);
        let mut s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        let (pa, pb, pc) = (PeerId::new(0), PeerId::new(1), PeerId::new(2));
        let free_a = s.link_available(pa, pb).max(s.link_available(pa, pc));
        assert!(free_a > 0.0, "geo mode links every pair through access capacity");
        // Two sessions through pa draw from the same access pipe.
        let bw = 4.0;
        let alloc = s.commit(&[], &[(vec![pa, pb], bw), (vec![pa, pc], bw)]).unwrap();
        let after = s.link_available(pa, pb);
        let expected = (ov.access_capacity(pa).unwrap() - 2.0 * bw)
            .min(ov.access_capacity(pb).unwrap() - bw);
        assert!((after - expected.max(0.0)).abs() < 1e-9);
        // Saturating the access link is rejected atomically.
        let huge = ov.access_capacity(pa).unwrap() + 1.0;
        assert!(s.commit(&[], &[(vec![pa, pb], huge)]).is_err());
        s.release(&alloc);
        let restored = s.link_available(pa, pb);
        let cap = ov.access_capacity(pa).unwrap().min(ov.access_capacity(pb).unwrap());
        assert!((restored - cap).abs() < 1e-9);
    }

    #[test]
    fn watermark_crossings_count_both_directions() {
        let mut s = state();
        let p = PeerId::new(11);
        assert_eq!(s.watermark_crossings(), 0);
        // No finite watermark → no tracking.
        let tok = s
            .soft_allocate(p, ResourceVector::new(0.6, 8.0), t(1000.0), &mut TraceBuffer::new())
            .unwrap();
        assert_eq!(s.watermark_crossings(), 0);
        s.release_soft(tok, &mut TraceBuffer::new());
        s.set_shed_watermark(0.5);
        assert!((s.cpu_utilization(p) - 0.0).abs() < 1e-12);
        // 0.0 → 0.6 crosses ψ=0.5 upward; releasing crosses back down.
        let tok = s
            .soft_allocate(p, ResourceVector::new(0.6, 8.0), t(1000.0), &mut TraceBuffer::new())
            .unwrap();
        assert_eq!(s.watermark_crossings(), 1);
        assert!((s.cpu_utilization(p) - 0.6).abs() < 1e-12);
        s.release_soft(tok, &mut TraceBuffer::new());
        assert_eq!(s.watermark_crossings(), 2);
        // Small moves that stay on one side do not count.
        let tok = s
            .soft_allocate(p, ResourceVector::new(0.2, 8.0), t(1000.0), &mut TraceBuffer::new())
            .unwrap();
        assert_eq!(s.watermark_crossings(), 2);
        s.release_soft(tok, &mut TraceBuffer::new());
        assert_eq!(s.watermark_crossings(), 2);
        // Committed load counts toward utilization too.
        let alloc = s.commit(&[(p, ResourceVector::new(0.7, 8.0))], &[]).unwrap();
        assert_eq!(s.watermark_crossings(), 3);
        s.release(&alloc);
        assert_eq!(s.watermark_crossings(), 4);
        // Dead peers report full utilization.
        s.fail_peer(p);
        assert_eq!(s.cpu_utilization(p), 1.0);
    }

    #[test]
    fn nonexistent_link_has_zero_bandwidth() {
        let ov = overlay();
        let s = OverlayState::new(&ov, ResourceVector::new(1.0, 256.0));
        // Find a non-adjacent pair.
        let g = ov.graph();
        let mut pair = None;
        'outer: for x in 0..g.node_count() {
            for y in (x + 1)..g.node_count() {
                if !g.has_edge(x, y) {
                    pair = Some((x, y));
                    break 'outer;
                }
            }
        }
        let (x, y) = pair.expect("mesh is not complete");
        assert_eq!(s.link_available(PeerId::from(x), PeerId::from(y)), 0.0);
    }
}
