//! Workload generation for the simulation study (paper §6.1).
//!
//! "Each node provides \[1,3\] service components whose provisioned tasks are
//! selected from 200 pre-defined functions. … During each time unit,
//! certain number of composition requests are randomly generated on
//! different peers." This module synthesizes those populations and request
//! streams deterministically from a seed.

use crate::model::component::{FunctionCatalog, Registry, ServiceComponent};
use crate::model::function_graph::FunctionGraph;
use crate::model::request::CompositionRequest;
use spidernet_util::rng::SliceRandom;
use spidernet_topology::Overlay;
use spidernet_util::id::{ComponentId, FunctionId, PeerId};
use spidernet_util::qos::{loss_to_additive, QosRequirement, QosVector};
use spidernet_util::res::ResourceVector;
use spidernet_util::rng::Rng;

/// Component-population parameters.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Size of the pre-defined function pool (paper: 200).
    pub functions: usize,
    /// Inclusive range of components per peer (paper: [1, 3]).
    pub components_per_peer: (usize, usize),
    /// Component processing delay Q_p\[delay\], ms.
    pub perf_delay_ms: (f64, f64),
    /// Component loss contribution Q_p\[loss\], as a probability.
    pub perf_loss: (f64, f64),
    /// Per-session CPU requirement (peers have 1.0 capacity by default).
    pub cpu: (f64, f64),
    /// Per-session memory requirement, MB.
    pub memory: (f64, f64),
    /// Output stream bandwidth, Mbit/s.
    pub out_bandwidth_mbps: (f64, f64),
    /// Per-time-unit component failure probability.
    pub failure_prob: (f64, f64),
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            functions: 200,
            components_per_peer: (1, 3),
            perf_delay_ms: (5.0, 50.0),
            perf_loss: (0.0005, 0.005),
            cpu: (0.05, 0.25),
            memory: (8.0, 64.0),
            out_bandwidth_mbps: (0.5, 2.0),
            failure_prob: (0.005, 0.02),
        }
    }
}

fn sample(rng: &mut Rng, (lo, hi): (f64, f64)) -> f64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Populates every overlay peer with components per `cfg`, seeded by
/// `(seed, "population")`. Returns the filled registry.
pub fn populate(overlay: &Overlay, cfg: &PopulationConfig, seed: u64) -> Registry {
    let mut rng = spidernet_util::rng::rng_for(seed, "population");
    let catalog = FunctionCatalog::synthetic(cfg.functions);
    let mut reg = Registry::new(catalog);
    for peer in overlay.peers() {
        let (lo, hi) = cfg.components_per_peer;
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            let function = FunctionId::from(rng.gen_range(0..cfg.functions));
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer,
                function,
                perf_qos: QosVector::from_values(vec![
                    sample(&mut rng, cfg.perf_delay_ms),
                    loss_to_additive(sample(&mut rng, cfg.perf_loss)),
                ]),
                resources: ResourceVector::new(
                    sample(&mut rng, cfg.cpu),
                    sample(&mut rng, cfg.memory),
                ),
                out_bandwidth_mbps: sample(&mut rng, cfg.out_bandwidth_mbps),
                failure_prob: sample(&mut rng, cfg.failure_prob),
            });
        }
    }
    reg
}

/// Request-stream parameters.
#[derive(Clone, Debug)]
pub struct RequestConfig {
    /// Inclusive range of required functions per request.
    pub functions: (usize, usize),
    /// End-to-end delay bound, ms.
    pub delay_bound_ms: (f64, f64),
    /// End-to-end loss bound, probability.
    pub loss_bound: (f64, f64),
    /// Source stream bandwidth, Mbit/s.
    pub bandwidth_mbps: (f64, f64),
    /// F^req, the failure-probability requirement.
    pub max_failure_prob: f64,
    /// Probability a request uses a diamond DAG with a commutation link
    /// (needs ≥ 4 functions) instead of a linear chain.
    pub dag_probability: f64,
}

impl Default for RequestConfig {
    fn default() -> Self {
        RequestConfig {
            functions: (2, 5),
            delay_bound_ms: (250.0, 600.0),
            loss_bound: (0.02, 0.08),
            bandwidth_mbps: (0.5, 1.5),
            max_failure_prob: 0.2,
            dag_probability: 0.0,
        }
    }
}

/// Functions that have at least one registered replica.
pub fn provisioned_functions(reg: &Registry) -> Vec<FunctionId> {
    (0..reg.catalog().len())
        .map(FunctionId::from)
        .filter(|&f| !reg.replicas(f).is_empty())
        .collect()
}

/// Draws one random composition request. Functions are sampled without
/// replacement from the provisioned pool; source and destination are
/// distinct random peers.
pub fn random_request(
    overlay: &Overlay,
    reg: &Registry,
    cfg: &RequestConfig,
    rng: &mut Rng,
) -> CompositionRequest {
    let pool = provisioned_functions(reg);
    assert!(!pool.is_empty(), "no provisioned functions to request");
    let (lo, hi) = cfg.functions;
    let k = rng.gen_range(lo..=hi).min(pool.len());
    let mut funcs = pool;
    funcs.shuffle(rng);
    funcs.truncate(k);

    let function_graph = if k >= 4 && rng.gen::<f64>() < cfg.dag_probability {
        // Diamond: f0 → {f1, f2} → f3 (+ tail chain if k > 4), with the two
        // middle functions commutable.
        let mut deps = vec![(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        for i in 3..(k - 1) {
            deps.push((i, i + 1));
        }
        FunctionGraph::new(funcs.clone(), deps, vec![(1, 2)])
            .expect("diamond construction is valid")
    } else {
        FunctionGraph::linear_of(&funcs)
    };

    let n = overlay.peer_count() as u64;
    let source = PeerId::new(rng.gen_range(0..n));
    let mut dest = PeerId::new(rng.gen_range(0..n));
    while dest == source {
        dest = PeerId::new(rng.gen_range(0..n));
    }

    CompositionRequest {
        source,
        dest,
        function_graph,
        qos_req: QosRequirement::new(vec![
            sample(rng, cfg.delay_bound_ms),
            loss_to_additive(sample(rng, cfg.loss_bound)),
        ])
        .expect("bounds are positive"),
        bandwidth_mbps: sample(rng, cfg.bandwidth_mbps),
        max_failure_prob: cfg.max_failure_prob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};
    use spidernet_util::rng::rng_for;

    fn overlay() -> Overlay {
        let ip = generate_power_law(&InetConfig { nodes: 250, ..InetConfig::default() }, 41);
        Overlay::build(
            &ip,
            &OverlayConfig { peers: 50, style: OverlayStyle::Mesh { neighbors: 4 } },
            41,
        )
    }

    #[test]
    fn population_respects_per_peer_bounds() {
        let ov = overlay();
        let cfg = PopulationConfig { functions: 20, ..PopulationConfig::default() };
        let reg = populate(&ov, &cfg, 7);
        for p in ov.peers() {
            let n = reg.on_peer(p).len();
            assert!((1..=3).contains(&n), "peer {p} has {n} components");
        }
        assert!(reg.len() >= 50 && reg.len() <= 150);
    }

    #[test]
    fn population_attribute_domains() {
        let ov = overlay();
        let cfg = PopulationConfig { functions: 20, ..PopulationConfig::default() };
        let reg = populate(&ov, &cfg, 8);
        for c in reg.iter() {
            assert!(c.perf_qos.is_well_formed());
            assert!((5.0..=50.0).contains(&c.perf_qos[0]));
            assert!(c.resources.is_well_formed());
            assert!((0.05..=0.25).contains(&c.resources.cpu()));
            assert!((0.5..=2.0).contains(&c.out_bandwidth_mbps));
            assert!((0.005..=0.02).contains(&c.failure_prob));
            assert!(c.function.index() < 20);
        }
    }

    #[test]
    fn population_is_deterministic() {
        let ov = overlay();
        let cfg = PopulationConfig { functions: 30, ..PopulationConfig::default() };
        let a = populate(&ov, &cfg, 9);
        let b = populate(&ov, &cfg, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = populate(&ov, &cfg, 10);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn requests_reference_provisioned_functions() {
        let ov = overlay();
        let reg = populate(&ov, &PopulationConfig { functions: 15, ..Default::default() }, 11);
        let mut rng = rng_for(11, "req");
        for _ in 0..50 {
            let req = random_request(&ov, &reg, &RequestConfig::default(), &mut rng);
            req.validate().unwrap();
            for &f in req.function_graph.functions() {
                assert!(!reg.replicas(f).is_empty(), "unprovisioned function requested");
            }
            // No duplicate functions within one request.
            let mut fs: Vec<u64> =
                req.function_graph.functions().iter().map(|f| f.raw()).collect();
            fs.sort_unstable();
            fs.dedup();
            assert_eq!(fs.len(), req.function_graph.len());
        }
    }

    #[test]
    fn request_size_range_respected() {
        let ov = overlay();
        let reg = populate(&ov, &PopulationConfig { functions: 50, ..Default::default() }, 12);
        let cfg = RequestConfig { functions: (3, 3), ..RequestConfig::default() };
        let mut rng = rng_for(12, "req");
        for _ in 0..20 {
            let req = random_request(&ov, &reg, &cfg, &mut rng);
            assert_eq!(req.function_graph.len(), 3);
            assert!(req.function_graph.is_linear());
        }
    }

    #[test]
    fn dag_probability_one_builds_diamonds() {
        let ov = overlay();
        let reg = populate(&ov, &PopulationConfig { functions: 50, ..Default::default() }, 13);
        let cfg = RequestConfig {
            functions: (4, 5),
            dag_probability: 1.0,
            ..RequestConfig::default()
        };
        let mut rng = rng_for(13, "req");
        for _ in 0..10 {
            let req = random_request(&ov, &reg, &cfg, &mut rng);
            assert!(!req.function_graph.is_linear());
            assert_eq!(req.function_graph.commutations().len(), 1);
            assert!(req.function_graph.branch_paths().len() >= 2);
        }
    }

    #[test]
    fn provisioned_functions_filters_empty() {
        let ov = overlay();
        let reg = populate(&ov, &PopulationConfig { functions: 500, ..Default::default() }, 14);
        let provisioned = provisioned_functions(&reg);
        // 50 peers × ≤3 components cannot cover 500 functions.
        assert!(provisioned.len() < 500);
        for f in provisioned {
            assert!(!reg.replicas(f).is_empty());
        }
    }
}
