//! Decentralized trust management (the paper's §8 future work:
//! "we will integrate decentralized trust management into the current
//! service composition framework to support secure service composition").
//!
//! Each peer keeps *direct experience* scores about the peers whose
//! components served its sessions, using a beta-reputation model: a peer's
//! trust is `(α + 1) / (α + β + 2)` where α counts positive outcomes
//! (sessions served to completion) and β negative ones (failures,
//! admission lies, bad frames). Scores decay toward the prior so stale
//! history fades — a peer that misbehaved long ago can redeem itself, and
//! a long-idle good reputation is not blindly trusted.
//!
//! Integration points:
//! * BCP's composite next-hop metric takes a `w_trust · (1 − trust)` term
//!   ([`crate::bcp::BcpConfig::w_trust`]), steering probes away from
//!   distrusted hosts;
//! * a minimum-trust threshold can exclude peers from candidacy outright
//!   ([`crate::bcp::BcpConfig::min_trust`]).
//!
//! In the simulator one [`TrustManager`] instance holds every peer's
//! observation table, sharded by observer — semantically the same as each
//! peer storing its own table, since all reads/writes go through an
//! observer argument.

use spidernet_util::id::PeerId;

/// Outcome of one interaction with a peer's component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Experience {
    /// The component served its session to completion.
    Positive,
    /// The component failed mid-session, rejected a confirmed reservation,
    /// or delivered corrupt output.
    Negative,
}

#[derive(Clone, Copy, Debug, Default)]
struct Record {
    alpha: f64,
    beta: f64,
}

impl Record {
    fn trust(&self) -> f64 {
        (self.alpha + 1.0) / (self.alpha + self.beta + 2.0)
    }
}

/// Beta-reputation trust tables, sharded by observing peer.
///
/// Stored as a structure-of-arrays keyed by dense peer index: each
/// observer's records live in a subject-sorted `Vec`, and a per-subject
/// index lists (in ascending observer order) exactly the observers holding
/// a record on that subject. [`TrustManager::aggregate_trust`] therefore
/// walks only the recording observers — O(#records on subject), not
/// O(population) — while summing in the same ascending-observer order the
/// old map-of-maps layout used. Float addition is not associative, and the
/// aggregate feeds BCP's candidate ranking, so that order is part of the
/// behavior contract.
#[derive(Clone, Debug, Default)]
pub struct TrustManager {
    /// `tables[observer.index()]` = subject-sorted records.
    tables: Vec<Vec<(PeerId, Record)>>,
    /// `by_subject[subject.index()]` = ascending observer indices holding a
    /// record on the subject.
    by_subject: Vec<Vec<u32>>,
    /// Multiplicative decay applied to both counters by [`TrustManager::decay_all`].
    decay: f64,
    /// Marketplace delivery reputations (observed vs promised rates).
    market: Marketplace,
}

impl TrustManager {
    /// A manager with the given per-round decay factor in (0, 1]; 1.0
    /// disables decay.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        TrustManager {
            tables: Vec::new(),
            by_subject: Vec::new(),
            decay,
            market: Marketplace::default(),
        }
    }

    /// The marketplace delivery reputations.
    pub fn market(&self) -> &Marketplace {
        &self.market
    }

    /// Mutable marketplace reputations (delivery observations, decay,
    /// pruning). Callers owning a compose cache must count this as a
    /// trust mutation.
    pub fn market_mut(&mut self) -> &mut Marketplace {
        &mut self.market
    }

    /// Records one experience `observer` had with `subject`.
    pub fn record(&mut self, observer: PeerId, subject: PeerId, exp: Experience) {
        let oi = observer.index();
        if oi >= self.tables.len() {
            self.tables.resize_with(oi + 1, Vec::new);
        }
        let row = &mut self.tables[oi];
        let rec = match row.binary_search_by_key(&subject, |&(s, _)| s) {
            Ok(pos) => &mut row[pos].1,
            Err(pos) => {
                row.insert(pos, (subject, Record::default()));
                let si = subject.index();
                if si >= self.by_subject.len() {
                    self.by_subject.resize_with(si + 1, Vec::new);
                }
                let observers = &mut self.by_subject[si];
                let at = observers.partition_point(|&o| (o as usize) < oi);
                observers.insert(at, oi as u32);
                &mut row[pos].1
            }
        };
        match exp {
            Experience::Positive => rec.alpha += 1.0,
            Experience::Negative => rec.beta += 1.0,
        }
    }

    /// `observer`'s direct trust in `subject`, in (0, 1). A peer with no
    /// history gets the neutral prior 0.5.
    pub fn trust(&self, observer: PeerId, subject: PeerId) -> f64 {
        self.tables
            .get(observer.index())
            .and_then(|row| {
                row.binary_search_by_key(&subject, |&(s, _)| s)
                    .ok()
                    .map(|pos| row[pos].1.trust())
            })
            .unwrap_or(0.5)
    }

    /// Network-wide aggregate trust in `subject`: the mean of all
    /// observers' direct scores (neutral 0.5 when nobody has history).
    /// This is the value the composition engine uses, standing in for a
    /// gossip/aggregation protocol.
    pub fn aggregate_trust(&self, subject: PeerId) -> f64 {
        let Some(observers) = self.by_subject.get(subject.index()) else {
            return 0.5;
        };
        if observers.is_empty() {
            return 0.5;
        }
        let mut sum = 0.0;
        for &oi in observers {
            let row = &self.tables[oi as usize];
            let pos = row
                .binary_search_by_key(&subject, |&(s, _)| s)
                .expect("by_subject index out of sync with tables");
            sum += row[pos].1.trust();
        }
        sum / observers.len() as f64
    }

    /// Applies one round of decay to every record (call once per time
    /// unit / maintenance round).
    pub fn decay_all(&mut self) {
        if self.decay >= 1.0 {
            return;
        }
        for row in &mut self.tables {
            for (_, rec) in row.iter_mut() {
                rec.alpha *= self.decay;
                rec.beta *= self.decay;
            }
        }
    }

    /// Records feedback for every peer hosting a component of a finished
    /// session's service graph.
    pub fn record_session_outcome(
        &mut self,
        observer: PeerId,
        peers: impl IntoIterator<Item = PeerId>,
        exp: Experience,
    ) {
        for p in peers {
            self.record(observer, p, exp);
        }
    }

    /// Number of (observer, subject) records held.
    pub fn record_count(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }
}

/// Optimistic prior for peers with no delivery history: new sellers bid
/// at full reputation so the market explores them.
const MARKET_PRIOR: f64 = 1.0;
/// EWMA gain for delivery observations.
const MARKET_GAIN: f64 = 0.3;

#[derive(Clone, Copy, Debug)]
struct RepEntry {
    score: f64,
    observations: u64,
}

/// ICN-style marketplace delivery reputation (planetary-mesh bidding:
/// latency × residual capacity × reputation).
///
/// Each hosting peer is a "seller" whose reputation is an EWMA of
/// *observed vs promised* delivery — the fraction of a session's demanded
/// stream bandwidth its flows actually received
/// ([`crate::state::OverlayState::delivered_fraction`]). A seller that
/// keeps promising bandwidth it cannot deliver under contention sees its
/// bids discounted, steering the marketplace policy off congested
/// hotspots that the paper's static metric cannot see.
#[derive(Clone, Debug, Default)]
pub struct Marketplace {
    /// Dense per-peer entries; absent ⇒ the optimistic prior.
    rep: Vec<RepEntry>,
}

impl Marketplace {
    /// Folds one observed delivery fraction (`delivered / promised`,
    /// clamped to [0, 1]) into `peer`'s reputation. NaN observations are
    /// ignored — a reputation must never be poisoned into unorderable
    /// territory by one bad measurement.
    pub fn observe(&mut self, peer: PeerId, delivered_fraction: f64) {
        if delivered_fraction.is_nan() {
            return;
        }
        let i = peer.index();
        if i >= self.rep.len() {
            self.rep.resize(i + 1, RepEntry { score: MARKET_PRIOR, observations: 0 });
        }
        let e = &mut self.rep[i];
        let obs = delivered_fraction.clamp(0.0, 1.0);
        e.score += MARKET_GAIN * (obs - e.score);
        e.observations += 1;
    }

    /// `peer`'s delivery reputation in [0, 1]; the optimistic prior 1.0
    /// with zero observations.
    pub fn reputation(&self, peer: PeerId) -> f64 {
        self.rep
            .get(peer.index())
            .filter(|e| e.observations > 0)
            .map(|e| e.score)
            .unwrap_or(MARKET_PRIOR)
    }

    /// How many deliveries have been observed for `peer`.
    pub fn observations(&self, peer: PeerId) -> u64 {
        self.rep.get(peer.index()).map(|e| e.observations).unwrap_or(0)
    }

    /// Relaxes every reputation toward the prior by `factor ∈ (0, 1]`:
    /// `score ← prior + (score − prior) · factor`. A factor of exactly
    /// 1.0 is a bitwise no-op (the boundary the unit tests pin) — stale
    /// verdicts only fade when the caller opts in.
    pub fn decay(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
        if factor >= 1.0 {
            return;
        }
        for e in &mut self.rep {
            e.score = MARKET_PRIOR + (e.score - MARKET_PRIOR) * factor;
        }
    }

    /// Resets dead peers to the prior with zero observations (a revived
    /// peer restarts its components; stale delivery verdicts against the
    /// old incarnation would misprice the new one). Returns how many
    /// entries were pruned.
    pub fn prune_dead(&mut self, mut is_alive: impl FnMut(PeerId) -> bool) -> usize {
        let mut pruned = 0;
        for (i, e) in self.rep.iter_mut().enumerate() {
            if e.observations > 0 && !is_alive(PeerId::from(i)) {
                *e = RepEntry { score: MARKET_PRIOR, observations: 0 };
                pruned += 1;
            }
        }
        pruned
    }

    /// The marketplace bid for hosting on `peer`: higher is better.
    ///
    /// `bid = reputation × residual-headroom / (1 + delay_ms)` — the
    /// ICN latency × capacity × reputation form with latency inverted so
    /// all three factors point the same way. Non-finite delay or NaN
    /// headroom yield a zero bid (never NaN), so bid lists stay totally
    /// ordered under `f64::total_cmp`.
    pub fn bid(&self, peer: PeerId, delay_ms: f64, headroom: f64) -> f64 {
        if !delay_ms.is_finite() {
            return 0.0;
        }
        let h = if headroom.is_nan() { 0.0 } else { headroom.clamp(0.0, 1.0) };
        self.reputation(peer) * h / (1.0 + delay_ms.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PeerId {
        PeerId::new(i)
    }

    #[test]
    fn unknown_peers_get_neutral_prior() {
        let tm = TrustManager::new(1.0);
        assert_eq!(tm.trust(p(0), p(1)), 0.5);
        assert_eq!(tm.aggregate_trust(p(1)), 0.5);
    }

    #[test]
    fn positive_experience_raises_trust_negative_lowers() {
        let mut tm = TrustManager::new(1.0);
        tm.record(p(0), p(1), Experience::Positive);
        assert!(tm.trust(p(0), p(1)) > 0.5);
        tm.record(p(0), p(2), Experience::Negative);
        assert!(tm.trust(p(0), p(2)) < 0.5);
    }

    #[test]
    fn trust_converges_with_evidence() {
        let mut tm = TrustManager::new(1.0);
        for _ in 0..100 {
            tm.record(p(0), p(1), Experience::Positive);
        }
        assert!(tm.trust(p(0), p(1)) > 0.95);
        for _ in 0..100 {
            tm.record(p(0), p(2), Experience::Negative);
        }
        assert!(tm.trust(p(0), p(2)) < 0.05);
        // Bounded away from 0 and 1 (beta prior).
        assert!(tm.trust(p(0), p(1)) < 1.0);
        assert!(tm.trust(p(0), p(2)) > 0.0);
    }

    #[test]
    fn trust_is_per_observer() {
        let mut tm = TrustManager::new(1.0);
        tm.record(p(0), p(9), Experience::Negative);
        tm.record(p(1), p(9), Experience::Positive);
        assert!(tm.trust(p(0), p(9)) < 0.5);
        assert!(tm.trust(p(1), p(9)) > 0.5);
    }

    #[test]
    fn aggregate_averages_observers() {
        let mut tm = TrustManager::new(1.0);
        tm.record(p(0), p(9), Experience::Negative);
        tm.record(p(1), p(9), Experience::Positive);
        let agg = tm.aggregate_trust(p(9));
        assert!((agg - 0.5).abs() < 1e-12, "symmetric evidence should average to 0.5, got {agg}");
    }

    #[test]
    fn decay_fades_history_toward_prior() {
        let mut tm = TrustManager::new(0.5);
        for _ in 0..20 {
            tm.record(p(0), p(1), Experience::Negative);
        }
        let before = tm.trust(p(0), p(1));
        for _ in 0..10 {
            tm.decay_all();
        }
        let after = tm.trust(p(0), p(1));
        assert!(after > before, "decay should move toward the prior");
        assert!((after - 0.5).abs() < 0.05, "long decay approaches neutral, got {after}");
    }

    #[test]
    fn no_decay_when_factor_is_one() {
        let mut tm = TrustManager::new(1.0);
        tm.record(p(0), p(1), Experience::Positive);
        let before = tm.trust(p(0), p(1));
        tm.decay_all();
        assert_eq!(tm.trust(p(0), p(1)), before);
    }

    #[test]
    fn session_outcome_touches_all_hosts() {
        let mut tm = TrustManager::new(1.0);
        tm.record_session_outcome(p(0), [p(1), p(2), p(3)], Experience::Positive);
        for i in 1..=3 {
            assert!(tm.trust(p(0), p(i)) > 0.5);
        }
        assert_eq!(tm.record_count(), 3);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn zero_decay_rejected() {
        TrustManager::new(0.0);
    }

    #[test]
    fn market_zero_observations_yield_the_optimistic_prior() {
        let m = Marketplace::default();
        assert_eq!(m.reputation(p(7)), 1.0, "unseen peers bid at full reputation");
        assert_eq!(m.observations(p(7)), 0);
        let mut m = m;
        // An entry allocated by a neighbor's observation still reports
        // the prior until the peer itself is observed.
        m.observe(p(9), 0.5);
        assert_eq!(m.reputation(p(7)), 1.0);
        assert_eq!(m.observations(p(9)), 1);
        assert!(m.reputation(p(9)) < 1.0);
    }

    #[test]
    fn market_nan_observations_are_ignored_and_bids_stay_orderable() {
        let mut m = Marketplace::default();
        m.observe(p(1), 0.25);
        let before = m.reputation(p(1));
        m.observe(p(1), f64::NAN);
        assert_eq!(m.reputation(p(1)).to_bits(), before.to_bits(), "NaN must not poison");
        assert_eq!(m.observations(p(1)), 1, "NaN is not an observation");
        // Bids from pathological inputs are 0, never NaN, so a candidate
        // list sorts deterministically under total_cmp.
        let mut bids = [
            m.bid(p(1), f64::INFINITY, 1.0),
            m.bid(p(1), 10.0, f64::NAN),
            m.bid(p(1), 10.0, 0.5),
            m.bid(p(2), 0.0, 1.0),
        ];
        assert!(bids.iter().all(|b| !b.is_nan()));
        bids.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(bids[0], 0.0);
        assert_eq!(bids[1], 0.0);
        assert!(bids[3] > bids[2]);
    }

    #[test]
    fn market_decay_at_the_boundary_is_a_bitwise_noop() {
        let mut m = Marketplace::default();
        m.observe(p(3), 0.1);
        m.observe(p(3), 0.4);
        let before = m.reputation(p(3));
        m.decay(1.0);
        assert_eq!(m.reputation(p(3)).to_bits(), before.to_bits(), "factor 1.0 must not drift");
        // A real decay relaxes toward the prior from below.
        m.decay(0.5);
        let after = m.reputation(p(3));
        assert!(after > before && after < 1.0, "{before} → {after}");
        for _ in 0..200 {
            m.decay(0.5);
        }
        assert!((m.reputation(p(3)) - 1.0).abs() < 1e-9, "long decay approaches the prior");
    }

    #[test]
    fn market_prunes_dead_peers_back_to_the_prior() {
        let mut m = Marketplace::default();
        m.observe(p(0), 0.2);
        m.observe(p(2), 0.9);
        let alive = [true, true, false];
        assert_eq!(m.prune_dead(|peer| alive[peer.index()]), 1);
        assert_eq!(m.reputation(p(2)), 1.0, "dead peer's verdicts are dropped");
        assert_eq!(m.observations(p(2)), 0);
        assert!(m.reputation(p(0)) < 1.0, "live peers keep their history");
        // Idempotent: nothing left to prune.
        assert_eq!(m.prune_dead(|peer| alive[peer.index()]), 0);
    }

    #[test]
    fn market_bid_combines_latency_capacity_and_reputation() {
        let mut m = Marketplace::default();
        m.observe(p(1), 1.0); // perfect deliverer
        for _ in 0..20 {
            m.observe(p(2), 0.1); // chronic under-deliverer
        }
        // Same latency and headroom: reputation decides.
        assert!(m.bid(p(1), 5.0, 0.8) > m.bid(p(2), 5.0, 0.8));
        // Same peer: closer and emptier wins.
        assert!(m.bid(p(1), 1.0, 0.8) > m.bid(p(1), 5.0, 0.8));
        assert!(m.bid(p(1), 5.0, 0.9) > m.bid(p(1), 5.0, 0.2));
        // Headroom is clamped into [0, 1].
        assert_eq!(m.bid(p(1), 5.0, 7.0).to_bits(), m.bid(p(1), 5.0, 1.0).to_bits());
    }

    #[test]
    fn trust_manager_embeds_the_marketplace() {
        let mut tm = TrustManager::new(0.98);
        assert_eq!(tm.market().reputation(p(4)), 1.0);
        tm.market_mut().observe(p(4), 0.0);
        assert!(tm.market().reputation(p(4)) < 1.0);
    }

    #[test]
    fn aggregate_matches_observer_ordered_reference_sum() {
        // Records arrive in scrambled observer/subject order; the dense
        // by-subject index must still sum in ascending-observer order,
        // bit-identical to the old map-of-maps walk.
        use std::collections::BTreeMap;
        let mut tm = TrustManager::new(1.0);
        let mut reference: BTreeMap<PeerId, BTreeMap<PeerId, (f64, f64)>> = BTreeMap::new();
        let events = [
            (7u64, 3u64, Experience::Positive),
            (2, 3, Experience::Negative),
            (9, 3, Experience::Positive),
            (2, 3, Experience::Positive),
            (0, 5, Experience::Negative),
            (7, 3, Experience::Negative),
            (4, 3, Experience::Positive),
        ];
        for &(o, s, exp) in &events {
            tm.record(p(o), p(s), exp);
            let e = reference.entry(p(o)).or_default().entry(p(s)).or_default();
            match exp {
                Experience::Positive => e.0 += 1.0,
                Experience::Negative => e.1 += 1.0,
            }
        }
        for subject in [3u64, 5, 8] {
            let mut sum = 0.0;
            let mut n = 0u32;
            for table in reference.values() {
                if let Some(&(a, b)) = table.get(&p(subject)) {
                    sum += (a + 1.0) / (a + b + 2.0);
                    n += 1;
                }
            }
            let want = if n == 0 { 0.5 } else { sum / f64::from(n) };
            let got = tm.aggregate_trust(p(subject));
            assert!(got.to_bits() == want.to_bits(), "subject {subject}: {got} vs {want}");
        }
    }
}
