//! Cached overlay shortest paths.
//!
//! Service links map onto overlay network paths (paper §2.2); pricing a
//! candidate service graph therefore needs, for arbitrary peer pairs, the
//! overlay path's delay, its node sequence (for bandwidth accounting), and
//! its bottleneck capacity. This table memoizes one overlay SSSP per
//! queried source.

use spidernet_topology::routing::{dijkstra, PairDelayCache, PathResult};
use spidernet_topology::Overlay;
use spidernet_util::hash::FxHashMap;
use spidernet_util::id::PeerId;

/// Per-source shortest-path cache over the overlay graph, fronted by a
/// symmetric per-pair delay memo so hot leg lookups (baseline enumeration,
/// BCP leg pricing) skip the tree walk entirely.
///
/// In the geometric (scale) overlay mode every query is answered in O(1)
/// from coordinates — no SSSP tree or pair memo is ever built, which is
/// what lets one machine hold 10^5–10^6 peers.
#[derive(Clone, Debug, Default)]
pub struct PathTable {
    cache: FxHashMap<PeerId, PathResult>,
    pairs: PairDelayCache,
}

impl PathTable {
    /// An empty table.
    pub fn new() -> Self {
        PathTable::default()
    }

    fn sssp(&mut self, overlay: &Overlay, from: PeerId) -> &PathResult {
        self.cache
            .entry(from)
            .or_insert_with(|| dijkstra(overlay.graph(), from.index()))
    }

    /// Overlay-routed one-way delay `from → to`, ms.
    ///
    /// Served from the pair memo when warm; otherwise answered by `from`'s
    /// SSSP tree and memoized. The memo is direction-preserving — a hit
    /// returns the exact bits the producing tree computed, never the
    /// reverse tree's ulp-sibling.
    pub fn delay(&mut self, overlay: &Overlay, from: PeerId, to: PeerId) -> f64 {
        if from == to {
            return 0.0;
        }
        if let Some(d) = overlay.direct_delay(from, to) {
            return d;
        }
        if let Some(d) = self.pairs.get(from.index(), to.index()) {
            return d;
        }
        let d = self.sssp(overlay, from).delay_to(to.index());
        self.pairs.insert(from.index(), to.index(), d);
        d
    }

    /// The overlay peer path `from → to` (inclusive of both endpoints), or
    /// `None` if disconnected.
    pub fn peer_path(&mut self, overlay: &Overlay, from: PeerId, to: PeerId) -> Option<Vec<PeerId>> {
        if from == to {
            return Some(vec![from]);
        }
        if overlay.is_geo() {
            // Geo paths are direct: every pair is one overlay hop, and
            // bandwidth for that hop is charged at the endpoints' access
            // links by the state layer.
            return Some(vec![from, to]);
        }
        self.sssp(overlay, from)
            .path_to(to.index())
            .map(|p| p.into_iter().map(PeerId::from).collect())
    }

    /// Writes the overlay peer path `from → to` (inclusive of both
    /// endpoints) into `buf`, clearing it first; returns `false` if the
    /// pair is disconnected. Hop-for-hop identical to
    /// [`PathTable::peer_path`] without the per-call allocations — the hot
    /// candidate-evaluation loop calls this once per service link.
    pub fn peer_path_into(
        &mut self,
        overlay: &Overlay,
        from: PeerId,
        to: PeerId,
        buf: &mut Vec<PeerId>,
    ) -> bool {
        buf.clear();
        if from == to {
            buf.push(from);
            return true;
        }
        if overlay.is_geo() {
            buf.push(from);
            buf.push(to);
            return true;
        }
        let res = self.sssp(overlay, from);
        if res.delay_to(to.index()).is_infinite() {
            return false;
        }
        let mut cur = to.index();
        buf.push(to);
        while let Some(p) = res.prev_of(cur) {
            buf.push(PeerId::from(p));
            cur = p;
        }
        buf.reverse();
        true
    }

    /// Contention-aware one-way delay `from → to`, ms: the static
    /// per-hop delays inflated by `stress`, the caller's view of each
    /// hop's current load (`ρ ∈ [0, 1]`, e.g.
    /// `OverlayState::link_stress`). Each hop contributes
    /// `delay × (1 + ρ)` — an uncontended hop costs its static delay, a
    /// saturated one twice that.
    ///
    /// Deliberately **bypasses the pair-delay memo**: the memo caches
    /// *uncongested* shortest-path delays, and serving those while flows
    /// load the route would report stale QoS (the same staleness class
    /// the PR8 compose-cache watermark fixed). Bypasses are counted
    /// ([`PathTable::pair_bypasses`]) so the extra tree walks stay
    /// visible next to the memo's hits/misses.
    pub fn contended_delay(
        &mut self,
        overlay: &Overlay,
        from: PeerId,
        to: PeerId,
        mut stress: impl FnMut(PeerId, PeerId) -> f64,
    ) -> f64 {
        if from == to {
            return 0.0;
        }
        self.pairs.note_bypass();
        if overlay.is_geo() {
            let base = overlay.direct_delay(from, to).unwrap_or(f64::INFINITY);
            return base * (1.0 + stress(from, to).clamp(0.0, 1.0));
        }
        let Some(path) = self.peer_path(overlay, from, to) else {
            return f64::INFINITY;
        };
        let mut total = 0.0;
        for w in path.windows(2) {
            let hop = overlay.link(w[0], w[1]).map(|l| l.delay_ms).unwrap_or(0.0);
            total += hop * (1.0 + stress(w[0], w[1]).clamp(0.0, 1.0));
        }
        total
    }

    /// Static bottleneck capacity of the path `from → to`, Mbit/s.
    pub fn bottleneck(&mut self, overlay: &Overlay, from: PeerId, to: PeerId) -> Option<f64> {
        if from == to {
            return Some(f64::INFINITY);
        }
        if overlay.is_geo() {
            return overlay.route_bottleneck(from, to);
        }
        // Borrow dance: compute the path first, then inspect edges.
        let path = self.peer_path(overlay, from, to)?;
        let mut cap = f64::INFINITY;
        for w in path.windows(2) {
            cap = cap.min(overlay.link(w[0], w[1]).map(|l| l.capacity_mbps).unwrap_or(0.0));
        }
        Some(cap)
    }

    /// Drops all cached SSSP results. Call after overlay liveness changes
    /// if stale routes would matter (experiments that fail peers
    /// mid-stream re-resolve paths per composition anyway).
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.pairs.clear();
    }

    /// Drops only the cached results a departed peer can affect: the entry
    /// sourced at `peer` plus any source whose shortest-path tree routes
    /// through it. Under churn this keeps every unrelated SSSP warm where
    /// [`PathTable::invalidate`] throws the whole cache away. Pair-memo
    /// slots fed by the dropped trees are shed with them; slots produced
    /// by surviving trees stay valid (the overlay graph itself is static).
    pub fn invalidate_peer(&mut self, peer: PeerId) {
        let mut dropped = Vec::new();
        self.cache.retain(|&src, res| {
            let keep = !res.routes_via(peer.index());
            if !keep {
                dropped.push(src.index());
            }
            keep
        });
        self.pairs.invalidate_sources(&dropped);
    }

    /// Number of cached sources.
    pub fn cached_sources(&self) -> usize {
        self.cache.len()
    }

    /// Number of memoized point-to-point delay pairs.
    pub fn cached_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Pair-memo inserts refused because the memo was at capacity. Feeds
    /// the `topology.pair_cache_evictions` counter so a saturated memo
    /// (silent until now) is visible in exported metrics.
    pub fn pair_rejections(&self) -> u64 {
        self.pairs.rejected()
    }

    /// Pair-memo lookups served without a tree walk (feeds the
    /// `topology.pair_cache_hits` counter).
    pub fn pair_hits(&self) -> u64 {
        self.pairs.hits()
    }

    /// Pair-memo lookups that fell through to an SSSP tree (feeds the
    /// `topology.pair_cache_misses` counter).
    pub fn pair_misses(&self) -> u64 {
        self.pairs.misses()
    }

    /// Lookups that skipped the memo for contention-aware delays (feeds
    /// the `topology.pair_cache_bypasses` counter).
    pub fn pair_bypasses(&self) -> u64 {
        self.pairs.bypasses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidernet_topology::inet::{generate_power_law, InetConfig};
    use spidernet_topology::overlay::{OverlayConfig, OverlayStyle};

    fn overlay() -> Overlay {
        let ip = generate_power_law(&InetConfig { nodes: 150, ..InetConfig::default() }, 4);
        Overlay::build(
            &ip,
            &OverlayConfig { peers: 30, style: OverlayStyle::Mesh { neighbors: 4 } },
            4,
        )
    }

    #[test]
    fn delay_matches_overlay_route() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let (a, b) = (PeerId::new(0), PeerId::new(17));
        assert!((pt.delay(&ov, a, b) - ov.route_delay(a, b)).abs() < 1e-9);
        assert_eq!(pt.delay(&ov, a, a), 0.0);
    }

    #[test]
    fn path_endpoints_and_adjacency() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let (a, b) = (PeerId::new(3), PeerId::new(25));
        let path = pt.peer_path(&ov, a, b).unwrap();
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            assert!(ov.link(w[0], w[1]).is_some(), "non-adjacent hop {w:?}");
        }
    }

    #[test]
    fn bottleneck_matches_overlay() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let (a, b) = (PeerId::new(1), PeerId::new(20));
        let got = pt.bottleneck(&ov, a, b).unwrap();
        let expect = ov.route_bottleneck(a, b).unwrap();
        assert!((got - expect).abs() < 1e-9);
        assert!(pt.bottleneck(&ov, a, a).unwrap().is_infinite());
    }

    #[test]
    fn caching_and_invalidation() {
        let ov = overlay();
        let mut pt = PathTable::new();
        pt.delay(&ov, PeerId::new(0), PeerId::new(1));
        pt.delay(&ov, PeerId::new(0), PeerId::new(2));
        assert_eq!(pt.cached_sources(), 1);
        pt.invalidate();
        assert_eq!(pt.cached_sources(), 0);
    }

    #[test]
    fn per_peer_invalidation_drops_only_affected_trees() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let sources = [PeerId::new(0), PeerId::new(3), PeerId::new(9)];
        // Warm the cache and record each tree's waypoint set: the nodes
        // some shortest path routes *through* (final hops excluded).
        let mut waypoints: Vec<std::collections::HashSet<PeerId>> = Vec::new();
        for &s in &sources {
            let mut w = std::collections::HashSet::new();
            for dest in ov.peers() {
                if let Some(path) = pt.peer_path(&ov, s, dest) {
                    for &hop in &path[..path.len() - 1] {
                        w.insert(hop);
                    }
                }
            }
            waypoints.push(w);
        }
        assert_eq!(pt.cached_sources(), 3);
        let dead = *waypoints[0].iter().min_by_key(|p| p.index()).unwrap();
        pt.invalidate_peer(dead);
        // Exactly the trees touching `dead` are gone.
        let expect = sources
            .iter()
            .zip(&waypoints)
            .filter(|&(&s, w)| s != dead && !w.contains(&dead))
            .count();
        assert_eq!(pt.cached_sources(), expect);
        assert!(expect < 3, "source 0's tree must be dropped");
        // Re-querying rebuilds the identical result (static overlay).
        let d = pt.delay(&ov, PeerId::new(0), PeerId::new(17));
        assert!((d - ov.route_delay(PeerId::new(0), PeerId::new(17))).abs() < 1e-9);
    }

    #[test]
    fn invalidating_an_uninvolved_peer_keeps_the_cache() {
        let ov = overlay();
        let mut pt = PathTable::new();
        pt.delay(&ov, PeerId::new(0), PeerId::new(1));
        // A peer no cached tree routes through: one whose only appearance
        // is as a leaf. Find it by scanning the lone cached tree.
        let mut interior = std::collections::HashSet::new();
        for dest in ov.peers() {
            if let Some(path) = pt.peer_path(&ov, PeerId::new(0), dest) {
                for &hop in &path[..path.len() - 1] {
                    interior.insert(hop);
                }
            }
        }
        if let Some(leaf) = ov.peers().find(|p| !interior.contains(p)) {
            pt.invalidate_peer(leaf);
            assert_eq!(pt.cached_sources(), 1, "leaf invalidation must keep the tree");
        }
    }

    #[test]
    fn contended_delay_bypasses_the_pair_memo() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let (a, b) = (PeerId::new(0), PeerId::new(17));
        let base = pt.delay(&ov, a, b);
        // Zero stress reproduces the static path delay.
        let calm = pt.contended_delay(&ov, a, b, |_, _| 0.0);
        assert!((calm - base).abs() < 1e-9);
        // Saturated hops cost double.
        let hot = pt.contended_delay(&ov, a, b, |_, _| 1.0);
        assert!((hot - 2.0 * base).abs() < 1e-9);
        assert_eq!(pt.pair_bypasses(), 2, "every contended query bypasses the memo");
        assert_eq!(pt.contended_delay(&ov, a, a, |_, _| 1.0), 0.0);
    }

    #[test]
    fn self_path_is_trivial() {
        let ov = overlay();
        let mut pt = PathTable::new();
        let p = PeerId::new(9);
        assert_eq!(pt.peer_path(&ov, p, p).unwrap(), vec![p]);
    }

    #[test]
    fn geo_mode_answers_without_building_trees() {
        use spidernet_topology::overlay::GeoConfig;
        let ov = Overlay::build_geo(&GeoConfig { peers: 64, ..GeoConfig::default() }, 11);
        let mut pt = PathTable::new();
        let (a, b) = (PeerId::new(4), PeerId::new(40));
        let d = pt.delay(&ov, a, b);
        assert!((d - ov.route_delay(a, b)).abs() < 1e-12);
        assert_eq!(pt.peer_path(&ov, a, b).unwrap(), vec![a, b]);
        let cap = pt.bottleneck(&ov, a, b).unwrap();
        let expect = ov.access_capacity(a).unwrap().min(ov.access_capacity(b).unwrap());
        assert!((cap - expect).abs() < 1e-12);
        assert_eq!(pt.cached_sources(), 0, "geo queries must not build SSSP trees");
        assert_eq!(pt.cached_pairs(), 0, "geo queries must not fill the pair memo");
    }
}
