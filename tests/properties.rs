//! Property-based tests over the core data structures and protocol
//! invariants.
//!
//! Implemented as seeded randomized-case loops over the workspace's own
//! deterministic [`spidernet::util::rng`] streams (no external property
//! framework): every test draws its cases from `rng_for(PROP_SEED, name)`,
//! so failures are reproducible bit-for-bit and the suite needs no network
//! access to build.

use spidernet::core::model::FunctionGraph;
use spidernet::core::recovery::{backup_count, select_backups};
use spidernet::core::selection::merge_branches;
use spidernet::core::state::OverlayState;
use spidernet::dht::{NodeId, PastryNetwork};
use spidernet::sim::time::SimTime;
use spidernet::sim::trace::TraceBuffer;
use spidernet::topology::inet::{generate_power_law, InetConfig};
use spidernet::topology::overlay::{Overlay, OverlayConfig, OverlayStyle};
use spidernet::topology::routing::dijkstra;
use spidernet::util::hash::sha1;
use spidernet::util::id::{ComponentId, PeerId};
use spidernet::util::qos::{additive_to_loss, loss_to_additive, QosRequirement, QosVector};
use spidernet::util::res::ResourceVector;
use spidernet::util::rng::{rng_for, Rng};

/// Master seed of the property suite; change to explore a different slice
/// of the case space.
const PROP_SEED: u64 = 0x5EED_50DE;

/// Standard case count for cheap properties.
const CASES: usize = 200;

fn prop_rng(name: &str) -> Rng {
    rng_for(PROP_SEED, name)
}

fn random_u128(rng: &mut Rng) -> u128 {
    (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>())
}

// ---- hashing --------------------------------------------------

/// SHA-1 is deterministic and length-sensitive.
#[test]
fn sha1_deterministic() {
    let mut rng = prop_rng("sha1");
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..512);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        assert_eq!(sha1(&data).0, sha1(&data).0);
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(sha1(&data).0, sha1(&extended).0);
    }
}

// ---- QoS ------------------------------------------------------

/// The loss transform is a monotone bijection on [0, 1).
#[test]
fn loss_transform_bijection() {
    let mut rng = prop_rng("loss-bijection");
    for _ in 0..CASES {
        let p = rng.gen_range(0.0f64..0.999);
        let a = loss_to_additive(p);
        assert!(a >= 0.0);
        assert!((additive_to_loss(a) - p).abs() < 1e-9, "p={p}");
    }
}

/// Additive-domain sums equal multiplicative-domain composition.
#[test]
fn loss_composition() {
    let mut rng = prop_rng("loss-composition");
    for _ in 0..CASES {
        let p1 = rng.gen_range(0.0f64..0.9);
        let p2 = rng.gen_range(0.0f64..0.9);
        let composed = 1.0 - (1.0 - p1) * (1.0 - p2);
        let sum = loss_to_additive(p1) + loss_to_additive(p2);
        assert!((loss_to_additive(composed) - sum).abs() < 1e-9, "p1={p1} p2={p2}");
    }
}

/// Accumulation is commutative and order-independent.
#[test]
fn qos_accumulation_commutes() {
    let mut rng = prop_rng("qos-commute");
    for _ in 0..CASES {
        let a: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0f64..1e6)).collect();
        let b: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0f64..1e6)).collect();
        let mut x = QosVector::from_values(a.clone());
        x.accumulate(&QosVector::from_values(b.clone()));
        let mut y = QosVector::from_values(b);
        y.accumulate(&QosVector::from_values(a));
        for (u, v) in x.values().iter().zip(y.values()) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}

/// A requirement satisfied by q stays satisfied by anything dominated by q.
#[test]
fn qos_satisfaction_is_monotone() {
    let mut rng = prop_rng("qos-monotone");
    for _ in 0..CASES {
        let bounds: Vec<f64> = (0..2).map(|_| rng.gen_range(1.0f64..1e3)).collect();
        let frac = rng.gen_range(0.0f64..1.0);
        let req = QosRequirement::new(bounds.clone()).unwrap();
        let at_bound = QosVector::from_values(bounds.clone());
        let scaled = QosVector::from_values(bounds.iter().map(|b| b * frac).collect());
        assert!(req.is_satisfied_by(&at_bound));
        assert!(req.is_satisfied_by(&scaled));
    }
}

// ---- resources -------------------------------------------------

/// fits_within is antisymmetric under strict domination and add/sub
/// round-trips.
#[test]
fn resource_arithmetic() {
    let mut rng = prop_rng("resources");
    for _ in 0..CASES {
        let (c1, m1) = (rng.gen_range(0.0f64..10.0), rng.gen_range(0.0f64..100.0));
        let (c2, m2) = (rng.gen_range(0.0f64..10.0), rng.gen_range(0.0f64..100.0));
        let a = ResourceVector::new(c1, m1);
        let b = ResourceVector::new(c2, m2);
        let sum = a.add(&b);
        assert!(a.fits_within(&sum));
        assert!(b.fits_within(&sum));
        let back = sum.saturating_sub(&b);
        assert!((back.cpu() - c1).abs() < 1e-9);
        assert!((back.memory() - m1).abs() < 1e-9);
    }
}

// ---- function graphs -------------------------------------------

/// Linear chains of any size validate, are linear, and have exactly one
/// branch path covering all nodes in order.
#[test]
fn linear_chains_are_wellformed() {
    for k in 1usize..12 {
        let g = FunctionGraph::linear(k);
        assert!(g.is_linear());
        let paths = g.branch_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(&paths[0], &(0..k).collect::<Vec<_>>());
        assert_eq!(g.topo_order().unwrap().len(), k);
    }
}

/// Every enumerated pattern is a permutation of the original functions and
/// acyclic.
#[test]
fn patterns_are_acyclic_permutations() {
    let mut rng = prop_rng("patterns");
    for _ in 0..CASES {
        let k = rng.gen_range(2usize..6);
        let n_swaps = rng.gen_range(0usize..3);
        let commutations: Vec<(usize, usize)> = (0..n_swaps)
            .map(|_| (rng.gen_range(0usize..6) % k, rng.gen_range(0usize..6) % k))
            .filter(|(a, b)| a != b)
            .collect();
        let Ok(g) = FunctionGraph::new(
            (0..k as u64).map(spidernet::util::id::FunctionId::new).collect(),
            (0..k - 1).map(|i| (i, i + 1)).collect(),
            commutations,
        ) else {
            continue;
        };
        let mut base: Vec<u64> = g.functions().iter().map(|f| f.raw()).collect();
        base.sort_unstable();
        for p in g.patterns() {
            assert!(p.topo_order().is_some());
            let mut fs: Vec<u64> = p.functions().iter().map(|f| f.raw()).collect();
            fs.sort_unstable();
            assert_eq!(&fs, &base);
        }
    }
}

// ---- merge -----------------------------------------------------

/// Merged assignments agree with some candidate on every branch.
#[test]
fn merge_respects_branch_candidates() {
    for n_cands in 1usize..6 {
        let pattern = FunctionGraph::linear(2);
        let branches = pattern.branch_paths();
        let cands: Vec<Vec<(usize, ComponentId)>> = (0..n_cands)
            .map(|i| vec![(0, ComponentId::new(i as u64)), (1, ComponentId::new(100 + i as u64))])
            .collect();
        let merged = merge_branches(&pattern, &branches, std::slice::from_ref(&cands), 100);
        assert_eq!(merged.len(), n_cands);
        for m in merged {
            assert!(cands.iter().any(|c| c[0].1 == m[0] && c[1].1 == m[1]));
        }
    }
}

// ---- Eq. 2 -----------------------------------------------------

/// γ is monotone in U and never exceeds C−1.
#[test]
fn gamma_bounds() {
    let mut rng = prop_rng("gamma");
    for _ in 0..CASES {
        let u = rng.gen_range(0.0f64..10.0);
        let c = rng.gen_range(1usize..50);
        let delay = rng.gen_range(0.0f64..1000.0);
        let fail = rng.gen_range(0.0f64..0.2);
        let req = spidernet::core::CompositionRequest {
            source: PeerId::new(0),
            dest: PeerId::new(1),
            function_graph: FunctionGraph::linear(2),
            qos_req: QosRequirement::new(vec![1_000.0, 1.0]).unwrap(),
            bandwidth_mbps: 1.0,
            max_failure_prob: 0.2,
        };
        let eval = spidernet::core::model::service_graph::GraphEval {
            qos: QosVector::from_values(vec![delay, 0.1]),
            cost: 1.0,
            failure_prob: fail,
            fits_resources: true,
        };
        let g = backup_count(&eval, &req, u, c);
        assert!(g < c);
        let g2 = backup_count(&eval, &req, u + 1.0, c);
        assert!(g2 >= g);
    }
}

// ---- soft allocations -------------------------------------------

/// Arbitrary soft allocate/release interleavings never over-commit a peer
/// and fully restore availability when balanced.
#[test]
fn soft_allocations_never_overbook() {
    let ip = generate_power_law(&InetConfig { nodes: 60, ..InetConfig::default() }, 1);
    let overlay = Overlay::build(
        &ip,
        &OverlayConfig { peers: 10, style: OverlayStyle::Mesh { neighbors: 3 } },
        1,
    );
    let mut rng = prop_rng("soft-alloc");
    for _ in 0..40 {
        let mut state = OverlayState::new(&overlay, ResourceVector::new(1.0, 100.0));
        let mut trace = TraceBuffer::new();
        let peer = PeerId::new(0);
        let mut tokens = Vec::new();
        let n_ops = rng.gen_range(1usize..40);
        for _ in 0..n_ops {
            let op = rng.gen_range(0u32..4);
            let amount = rng.gen_range(0.0f64..0.5);
            match op {
                0 | 1 => {
                    if let Ok(t) = state.soft_allocate(
                        peer,
                        ResourceVector::new(amount, amount * 10.0),
                        SimTime::from_secs(10),
                        &mut trace,
                    ) {
                        tokens.push(t);
                    }
                }
                2 => {
                    if let Some(t) = tokens.pop() {
                        state.release_soft(t, &mut trace);
                    }
                }
                _ => {
                    state.expire_soft(SimTime::ZERO, &mut trace); // nothing due yet
                }
            }
            let avail = state.available(peer);
            assert!(avail.cpu() >= -1e-9, "negative availability");
            assert!(avail.cpu() <= 1.0 + 1e-9, "availability above capacity");
        }
        for t in tokens {
            state.release_soft(t, &mut trace);
        }
        // Balanced allocate/release restores availability up to float
        // rounding.
        let avail = state.available(peer);
        let cap = state.capacity(peer);
        assert!((avail.cpu() - cap.cpu()).abs() < 1e-9);
        assert!((avail.memory() - cap.memory()).abs() < 1e-9);
    }
}

// ---- DHT --------------------------------------------------------

/// Routing from any start delivers at the globally responsible node.
#[test]
fn pastry_routes_to_responsible() {
    let peers: Vec<PeerId> = (0..32).map(PeerId::new).collect();
    let net = PastryNetwork::build(&peers, &mut |_, _| 1.0);
    let mut rng = prop_rng("pastry-route");
    for _ in 0..CASES {
        let key = random_u128(&mut rng);
        let start = rng.gen_range(0u64..32);
        let out = net.route(PeerId::new(start), NodeId::new(key), &mut |_, _| 1.0).unwrap();
        assert_eq!(out.destination(), net.responsible(NodeId::new(key)).unwrap());
    }
}

// ---- routing ----------------------------------------------------

/// Dijkstra satisfies the triangle inequality over sampled triples.
#[test]
fn shortest_paths_triangle_inequality() {
    let mut rng = prop_rng("triangle");
    for seed in 0u64..10 {
        let g = generate_power_law(&InetConfig { nodes: 50, ..InetConfig::default() }, seed);
        for _ in 0..8 {
            let (a, b, c) = (
                rng.gen_range(0usize..50),
                rng.gen_range(0usize..50),
                rng.gen_range(0usize..50),
            );
            let from_a = dijkstra(&g, a);
            let from_b = dijkstra(&g, b);
            let ab = from_a.delay_to(b);
            let bc = from_b.delay_to(c);
            let ac = from_a.delay_to(c);
            assert!(ac <= ab + bc + 1e-9);
        }
    }
}

// ---- backup selection (plain test: richer setup) ----------------------

#[test]
fn backups_never_contain_the_excluded_component() {
    // For every primary component, if any pool graph excludes it, the
    // selected backup set contains a graph excluding it (single-failure
    // coverage), and no selected index repeats.
    use spidernet::core::model::component::{Registry, ServiceComponent};
    use spidernet::core::model::service_graph::{GraphEval, ServiceGraph};
    use spidernet::util::id::FunctionId;

    let mut reg = Registry::default();
    for f in 0..2u64 {
        for r in 0..4u64 {
            reg.add(ServiceComponent {
                id: ComponentId::new(0),
                peer: PeerId::new(f * 4 + r),
                function: FunctionId::new(f),
                perf_qos: QosVector::from_values(vec![10.0, 0.0]),
                resources: ResourceVector::new(0.1, 8.0),
                out_bandwidth_mbps: 1.0,
                failure_prob: 0.01 + r as f64 * 0.01,
            });
        }
    }
    let graph = |a: u64, b: u64| {
        ServiceGraph::new(
            PeerId::new(90),
            PeerId::new(91),
            FunctionGraph::linear(2),
            vec![ComponentId::new(a), ComponentId::new(4 + b)],
        )
    };
    let eval = GraphEval {
        qos: QosVector::from_values(vec![10.0, 0.0]),
        cost: 1.0,
        failure_prob: 0.02,
        fits_resources: true,
    };
    let primary = graph(0, 0);
    let pool: Vec<(ServiceGraph, GraphEval)> = (0..4)
        .flat_map(|a| (0..4).map(move |b| (a, b)))
        .filter(|&(a, b)| (a, b) != (0, 0))
        .map(|(a, b)| (graph(a, b), eval.clone()))
        .collect();

    for gamma in 1..=6 {
        let idx = select_backups(&primary, &pool, gamma, &reg, 3);
        assert!(idx.len() <= gamma);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), idx.len(), "duplicate backup indices");
        if gamma >= 2 {
            // Single-failure coverage of both primary components.
            for &comp in primary.components() {
                assert!(
                    idx.iter().any(|&i| !pool[i].0.contains_component(comp)),
                    "γ={gamma}: no backup excludes {comp:?}"
                );
            }
        }
    }
}

// ---- BCP protocol invariants over randomized worlds --------------------

/// Over random small worlds: complete probes never exceed the budget, the
/// selected graph is qualified, and soft reservations never leak.
#[test]
fn bcp_invariants_hold_on_random_worlds() {
    use spidernet::core::bcp::BcpConfig;
    use spidernet::core::selection::is_qualified;
    use spidernet::core::system::{SpiderNet, SpiderNetConfig};
    use spidernet::core::workload::{random_request, PopulationConfig, RequestConfig};

    let mut case_rng = prop_rng("bcp-worlds");
    for _ in 0..12 {
        let seed = case_rng.gen_range(0u64..500);
        let budget = case_rng.gen_range(1u32..40);
        let mut net = SpiderNet::build(
            &SpiderNetConfig::builder().ip_nodes(200).peers(40).seed(seed).build(),
        );
        net.populate(&PopulationConfig { functions: 8, ..PopulationConfig::default() });
        let mut rng = rng_for(seed, "prop-bcp");
        let req = random_request(
            net.overlay(),
            net.registry(),
            &RequestConfig {
                functions: (2, 3),
                delay_bound_ms: (3_000.0, 4_000.0),
                loss_bound: (0.3, 0.4),
                ..RequestConfig::default()
            },
            &mut rng,
        );
        let cfg = BcpConfig::builder().budget(budget).build();
        // Infeasible worlds (Err) are fine; invariants apply on success.
        if let Ok(out) = net.compose(&req, &cfg) {
            assert!(
                out.stats.complete_probes <= u64::from(budget) * 2,
                "complete probes {} vastly exceed budget {budget} (patterns double it at most)",
                out.stats.complete_probes
            );
            assert!(is_qualified(&out.eval, &req));
            assert!(out.stats.probes_sent >= out.stats.complete_probes);
        }
        // No reservation leaks whatever happened.
        assert_eq!(net.state().soft_count(), 0);
    }
}

/// Pastry stays correct through arbitrary interleavings of departures and
/// arrivals: every key routes to the live node with the closest id.
#[test]
fn pastry_correct_under_churn_sequences() {
    let mut rng = prop_rng("pastry-churn");
    for _ in 0..24 {
        let peers: Vec<PeerId> = (0..32).map(PeerId::new).collect();
        let mut net = PastryNetwork::build(&peers, &mut |_, _| 1.0);
        let mut next_new = 100u64;
        let n_ops = rng.gen_range(1usize..24);
        for _ in 0..n_ops {
            let arrive = rng.gen::<bool>();
            let pick = rng.gen_range(0u64..64);
            if arrive {
                net.add_node(PeerId::new(next_new), &mut |_, _| 1.0);
                next_new += 1;
            } else if net.len() > 4 {
                // Remove some live peer deterministically chosen by `pick`.
                let live: Vec<PeerId> = {
                    let mut v: Vec<PeerId> = net.peers().collect();
                    v.sort_unstable();
                    v
                };
                let victim = live[(pick as usize) % live.len()];
                net.remove_node(victim);
            }
        }
        let key = NodeId::new(random_u128(&mut rng));
        let start = {
            let mut v: Vec<PeerId> = net.peers().collect();
            v.sort_unstable();
            v[0]
        };
        let out = net.route(start, key, &mut |_, _| 1.0).expect("routing must terminate");
        assert_eq!(out.destination(), net.responsible(key).unwrap());
    }
}

// ---- shared-bandwidth flow model ---------------------------------------

/// Max-min fair shares never exceed a flow's demand, never go negative,
/// and never oversubscribe any link, over random topologies and flow sets.
#[test]
fn flow_shares_respect_demand_and_capacity() {
    use spidernet::topology::flow::{FlowNet, LinkId};
    let mut rng = prop_rng("flow-caps");
    for _ in 0..CASES {
        let n_links = rng.gen_range(1usize..8);
        let mut net = FlowNet::new();
        let links: Vec<LinkId> =
            (0..n_links).map(|_| net.add_link(rng.gen_range(0.0f64..100.0))).collect();
        let n_flows = rng.gen_range(1usize..20);
        let mut flows = Vec::new();
        for _ in 0..n_flows {
            let k = rng.gen_range(1usize..=n_links);
            let mut subset: Vec<LinkId> =
                (0..k).map(|_| links[rng.gen_range(0usize..n_links)]).collect();
            subset.sort_by_key(|l| l.index());
            subset.dedup();
            let demand = rng.gen_range(0.0f64..50.0);
            let key = net.add_flow(&subset, demand);
            flows.push((key, subset, demand));
        }
        net.verify_invariants().expect("flow invariants");
        let mut per_link = vec![0.0f64; n_links];
        for (key, subset, demand) in &flows {
            let rate = net.rate(*key).expect("live flow");
            assert!(rate >= 0.0, "negative rate");
            assert!(rate <= demand + 1e-9, "rate {rate} above demand {demand}");
            for l in subset {
                per_link[l.index()] += rate;
            }
        }
        for (i, l) in links.iter().enumerate() {
            assert!(
                per_link[i] <= net.link_capacity(*l) + 1e-6,
                "link {i} oversubscribed: {} > {}",
                per_link[i],
                net.link_capacity(*l)
            );
        }
    }
}

/// Fair shares are bitwise independent of flow insertion order: the same
/// flow set added under a random permutation yields identical rates.
#[test]
fn flow_shares_are_insertion_order_invariant() {
    use spidernet::topology::flow::{FlowNet, LinkId};
    let mut rng = prop_rng("flow-order");
    for _ in 0..CASES {
        let n_links = rng.gen_range(1usize..6);
        let caps: Vec<f64> = (0..n_links).map(|_| rng.gen_range(1.0f64..80.0)).collect();
        let n_flows = rng.gen_range(2usize..12);
        let specs: Vec<(Vec<usize>, f64)> = (0..n_flows)
            .map(|_| {
                let k = rng.gen_range(1usize..=n_links);
                let subset: Vec<usize> = (0..k).map(|_| rng.gen_range(0usize..n_links)).collect();
                (subset, rng.gen_range(0.0f64..40.0))
            })
            .collect();
        // Random permutation (Fisher–Yates) of the insertion order.
        let mut perm: Vec<usize> = (0..n_flows).collect();
        for i in (1..n_flows).rev() {
            perm.swap(i, rng.gen_range(0usize..i + 1));
        }
        let build = |order: &[usize]| {
            let mut net = FlowNet::new();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut keys = vec![None; n_flows];
            for &i in order {
                let (subset, demand) = &specs[i];
                let ls: Vec<LinkId> = subset.iter().map(|&j| links[j]).collect();
                keys[i] = Some(net.add_flow(&ls, *demand));
            }
            let rates: Vec<u64> = keys
                .into_iter()
                .map(|k| net.rate(k.expect("added")).expect("live").to_bits())
                .collect();
            rates
        };
        let forward: Vec<usize> = (0..n_flows).collect();
        assert_eq!(build(&forward), build(&perm), "rates depend on insertion order");
    }
}

/// Removing flows is as if they were never added: survivors' rates match a
/// net built from the survivor set alone, bit for bit, and stale keys stay
/// dead.
#[test]
fn flow_removal_is_as_if_never_added() {
    use spidernet::topology::flow::{FlowNet, LinkId};
    let mut rng = prop_rng("flow-removal");
    for _ in 0..CASES {
        let n_links = rng.gen_range(1usize..6);
        let caps: Vec<f64> = (0..n_links).map(|_| rng.gen_range(1.0f64..80.0)).collect();
        let n_flows = rng.gen_range(2usize..12);
        let specs: Vec<(Vec<usize>, f64)> = (0..n_flows)
            .map(|_| {
                let k = rng.gen_range(1usize..=n_links);
                let subset: Vec<usize> = (0..k).map(|_| rng.gen_range(0usize..n_links)).collect();
                (subset, rng.gen_range(0.0f64..40.0))
            })
            .collect();
        let keep: Vec<bool> = (0..n_flows).map(|_| rng.gen::<bool>()).collect();

        let mut net = FlowNet::new();
        let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
        let keys: Vec<_> = specs
            .iter()
            .map(|(subset, demand)| {
                let ls: Vec<LinkId> = subset.iter().map(|&j| links[j]).collect();
                net.add_flow(&ls, *demand)
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            if !keep[i] {
                assert!(net.remove_flow(k), "first removal succeeds");
                assert!(!net.remove_flow(k), "stale key is inert");
                assert_eq!(net.rate(k), None);
            }
        }
        net.verify_invariants().expect("flow invariants after removal");

        let mut fresh = FlowNet::new();
        let fresh_links: Vec<LinkId> = caps.iter().map(|&c| fresh.add_link(c)).collect();
        let mut survivors = Vec::new();
        for (i, (subset, demand)) in specs.iter().enumerate() {
            if keep[i] {
                let ls: Vec<LinkId> = subset.iter().map(|&j| fresh_links[j]).collect();
                survivors.push((i, fresh.add_flow(&ls, *demand)));
            }
        }
        for (i, fk) in survivors {
            let survivor = net.rate(keys[i]).expect("survivor live");
            assert_eq!(
                survivor.to_bits(),
                fresh.rate(fk).expect("live").to_bits(),
                "survivor rate differs from a fresh build"
            );
        }
    }
}

/// Media transforms preserve frame well-formedness for arbitrary sizes and
/// chain them safely.
#[test]
fn media_chains_stay_wellformed() {
    use spidernet::runtime::media::{Frame, MediaFunction};
    let mut rng = prop_rng("media-chains");
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..40);
        let h = rng.gen_range(1usize..40);
        let len = rng.gen_range(1usize..5);
        let chain: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..6)).collect();
        let seq = rng.gen::<u64>();
        let mut f = Frame::synthetic(w, h, seq);
        for &i in &chain {
            f = MediaFunction::ALL[i].apply(&f);
            assert_eq!(f.byte_len(), f.width * f.height);
            assert!(f.width >= 1 && f.height >= 1);
            assert_eq!(f.seq, seq);
        }
    }
}
