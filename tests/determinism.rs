//! The parallel experiment harness must be determinism-preserving: every
//! cell of an experiment derives its own random streams from the master
//! seed and writes its result by cell index, so the rendered output is
//! byte-identical for *any* worker-thread count — including 1 (fully
//! sequential) and more threads than this machine has cores.

use spidernet_core::experiments::{congestion, fig8, fig9};
use spidernet_core::loadgen::{
    run_cell, zipf_request, ArrivalProcess, ArrivalSampler, LoadConfig, ZipfSampler,
};
use spidernet_core::system::{SpiderNet, SpiderNetConfig};
use spidernet_core::workload::{
    provisioned_functions, random_request, PopulationConfig, RequestConfig,
};
use spidernet_core::CompositionRequest;
use spidernet_util::par::par_map_with;
use spidernet_util::rng::rng_for;

fn fig8_tiny(threads: usize) -> fig8::Fig8Config {
    fig8::Fig8Config {
        ip_nodes: 300,
        peers: 60,
        functions: 12,
        duration_units: 15,
        workloads: vec![3, 8],
        optimal_cap: Some(200),
        population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
        request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
        threads: Some(threads),
        ..fig8::Fig8Config::default()
    }
}

fn fig9_tiny(threads: usize) -> fig9::Fig9Config {
    fig9::Fig9Config {
        ip_nodes: 300,
        peers: 80,
        sessions: 15,
        duration_units: 12,
        population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
        threads: Some(threads),
        ..fig9::Fig9Config::default()
    }
}

#[test]
fn fig8_csv_is_byte_identical_across_thread_counts() {
    let reference = fig8::run(&fig8_tiny(1)).to_csv();
    assert!(reference.lines().count() > 1, "empty figure");
    for threads in [2usize, 8] {
        let csv = fig8::run(&fig8_tiny(threads)).to_csv();
        assert_eq!(csv, reference, "fig8 output diverged at {threads} threads");
    }
}

#[test]
fn fig9_csv_is_byte_identical_across_thread_counts() {
    let reference = fig9::run(&fig9_tiny(1)).to_csv();
    assert!(reference.lines().count() > 1, "empty figure");
    for threads in [2usize, 8] {
        let csv = fig9::run(&fig9_tiny(threads)).to_csv();
        assert_eq!(csv, reference, "fig9 output diverged at {threads} threads");
    }
}

/// Guards against `std::collections::HashMap` iteration order leaking into
/// behavior (float reductions, candidate ordering, churn re-homing): every
/// std `HashMap` seeds a fresh `RandomState` per instance, so two runs in
/// the same process already iterate any order-sensitive map differently.
/// Repeat-run equality therefore fails if a behavior-feeding aggregation
/// ever regresses from an ordered map back to a hashed one.
#[test]
fn fig9_is_invariant_to_map_iteration_order() {
    let a = fig9::run(&fig9_tiny(1)).to_csv();
    let b = fig9::run(&fig9_tiny(1)).to_csv();
    assert_eq!(a, b, "fig9 output depends on map iteration order");
}

fn congestion_tiny(threads: usize) -> congestion::CongestionConfig {
    congestion::CongestionConfig {
        ip_nodes: 300,
        peers: 60,
        loads: vec![10, 40],
        population: PopulationConfig {
            functions: 8,
            ..congestion::CongestionConfig::default().population
        },
        threads: Some(threads),
        ..congestion::CongestionConfig::default()
    }
}

#[test]
fn congestion_csv_is_byte_identical_across_thread_counts() {
    let reference = congestion::run(&congestion_tiny(1)).to_csv();
    assert!(reference.lines().count() > 1, "empty figure");
    for threads in [2usize, 8] {
        let csv = congestion::run(&congestion_tiny(threads)).to_csv();
        assert_eq!(csv, reference, "congestion output diverged at {threads} threads");
    }
}

#[test]
fn fig9_scalar_outputs_match_across_thread_counts() {
    let a = fig9::run(&fig9_tiny(1));
    let b = fig9::run(&fig9_tiny(8));
    assert_eq!(a.mean_backups.to_bits(), b.mean_backups.to_bits());
    assert_eq!(a.recovery_ratio.to_bits(), b.recovery_ratio.to_bits());
}

// --- request-stream determinism (loadgen + workload samplers) -----------
//
// The pins below are fingerprints of full sample sequences computed once
// and hard-coded: equality across *processes* (not just within one run)
// is the property the open-loop engine's reproducibility rests on, and a
// same-process double-run cannot detect, e.g., address-dependent hashing
// sneaking into a sampler. A pin mismatch means the derived-RNG streams
// themselves changed — an intentional change must update the constant.

fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn tiny_world() -> SpiderNet {
    let mut net = SpiderNet::build(
        &SpiderNetConfig::builder().ip_nodes(300).peers(60).seed(17).build(),
    );
    net.populate(&PopulationConfig { functions: 12, ..PopulationConfig::default() });
    net
}

fn request_fingerprint(h: u64, req: &CompositionRequest) -> u64 {
    let mut h = fold(h, req.source.raw());
    h = fold(h, req.dest.raw());
    for f in req.function_graph.functions() {
        h = fold(h, f.raw());
    }
    for &b in req.qos_req.bounds() {
        h = fold(h, b.to_bits());
    }
    fold(h, req.bandwidth_mbps.to_bits())
}

#[test]
fn arrival_streams_are_process_invariant() {
    let cases: [(&str, u64); 3] = [
        ("poisson:rate=25", 0xb866_9075_43ba_ab1f),
        ("diurnal:base=2,peak=30,period=50", 0xcac1_fe3e_cb33_dcff),
        ("flash:base=2,peak=60,start=10,duration=5", 0xe66b_46bf_d1b3_6079),
    ];
    for (spec, pin) in cases {
        let process = ArrivalProcess::parse(spec).unwrap();
        let mut s = ArrivalSampler::new(process, 42, "determinism");
        let mut h = FNV_OFFSET;
        let mut last = -1.0f64;
        for _ in 0..256 {
            let t = s.next_arrival();
            assert!(t > last, "{spec}: arrivals must be strictly increasing");
            last = t;
            h = fold(h, t.to_bits());
        }
        assert_eq!(h, pin, "{spec}: arrival stream drifted (got {h:#018x})");
    }
}

#[test]
fn zipf_rank_stream_is_process_invariant() {
    let z = ZipfSampler::new(64, 1.2).unwrap();
    let mut rng = rng_for(42, "zipf-determinism");
    let mut h = FNV_OFFSET;
    for _ in 0..512 {
        h = fold(h, z.sample(&mut rng) as u64);
    }
    assert_eq!(h, 0x3ab1_d41a_3329_a6e6, "Zipf rank stream drifted (got {h:#018x})");
}

#[test]
fn request_streams_are_seed_reproducible_and_pinned() {
    let net = tiny_world();
    let pool = provisioned_functions(net.registry());
    let zipf = ZipfSampler::new(pool.len(), 0.9).unwrap();
    let cfg = RequestConfig::default();

    // Same seed twice ⇒ identical streams, for both generators.
    let mut h_uniform = [FNV_OFFSET; 2];
    let mut h_zipf = [FNV_OFFSET; 2];
    for run in 0..2 {
        let mut rng_u = rng_for(99, "determinism-uniform");
        let mut rng_z = rng_for(99, "determinism-zipf");
        for _ in 0..64 {
            let r = random_request(net.overlay(), net.registry(), &cfg, &mut rng_u);
            h_uniform[run] = request_fingerprint(h_uniform[run], &r);
            let z = zipf_request(net.overlay(), net.registry(), &pool, &zipf, &cfg, &mut rng_z);
            h_zipf[run] = request_fingerprint(h_zipf[run], &z);
        }
    }
    assert_eq!(h_uniform[0], h_uniform[1], "random_request stream is not seed-deterministic");
    assert_eq!(h_zipf[0], h_zipf[1], "zipf_request stream is not seed-deterministic");
    // Cross-process pins.
    assert_eq!(
        h_uniform[0], 0x7c37_ea1a_70d9_a1f3,
        "random_request stream drifted (got {:#018x})",
        h_uniform[0]
    );
    assert_eq!(
        h_zipf[0], 0x3dcc_09dc_e848_3ef8,
        "zipf_request stream drifted (got {:#018x})",
        h_zipf[0]
    );
}

#[test]
fn load_cells_are_byte_identical_across_thread_counts() {
    let base = tiny_world();
    let configs: Vec<LoadConfig> = [3.0, 9.0]
        .iter()
        .map(|&rate| LoadConfig {
            arrivals: ArrivalProcess::Poisson { rate },
            duration_units: 12,
            seed: 5,
            compose_caching: true,
            ..LoadConfig::default()
        })
        .collect();
    let reference: Vec<String> = configs
        .iter()
        .map(|cfg| run_cell(&base, cfg).deterministic_key())
        .collect();
    for threads in [2usize, 8] {
        let keys = par_map_with(threads, configs.clone(), |_, cfg| {
            run_cell(&base, &cfg).deterministic_key()
        });
        assert_eq!(keys, reference, "load cells diverged at {threads} threads");
    }
}
