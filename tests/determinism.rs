//! The parallel experiment harness must be determinism-preserving: every
//! cell of an experiment derives its own random streams from the master
//! seed and writes its result by cell index, so the rendered output is
//! byte-identical for *any* worker-thread count — including 1 (fully
//! sequential) and more threads than this machine has cores.

use spidernet_core::experiments::{fig8, fig9};
use spidernet_core::workload::{PopulationConfig, RequestConfig};

fn fig8_tiny(threads: usize) -> fig8::Fig8Config {
    fig8::Fig8Config {
        ip_nodes: 300,
        peers: 60,
        functions: 12,
        duration_units: 15,
        workloads: vec![3, 8],
        optimal_cap: Some(200),
        population: PopulationConfig { functions: 12, ..PopulationConfig::default() },
        request: RequestConfig { functions: (2, 3), ..RequestConfig::default() },
        threads: Some(threads),
        ..fig8::Fig8Config::default()
    }
}

fn fig9_tiny(threads: usize) -> fig9::Fig9Config {
    fig9::Fig9Config {
        ip_nodes: 300,
        peers: 80,
        sessions: 15,
        duration_units: 12,
        population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
        threads: Some(threads),
        ..fig9::Fig9Config::default()
    }
}

#[test]
fn fig8_csv_is_byte_identical_across_thread_counts() {
    let reference = fig8::run(&fig8_tiny(1)).to_csv();
    assert!(reference.lines().count() > 1, "empty figure");
    for threads in [2usize, 8] {
        let csv = fig8::run(&fig8_tiny(threads)).to_csv();
        assert_eq!(csv, reference, "fig8 output diverged at {threads} threads");
    }
}

#[test]
fn fig9_csv_is_byte_identical_across_thread_counts() {
    let reference = fig9::run(&fig9_tiny(1)).to_csv();
    assert!(reference.lines().count() > 1, "empty figure");
    for threads in [2usize, 8] {
        let csv = fig9::run(&fig9_tiny(threads)).to_csv();
        assert_eq!(csv, reference, "fig9 output diverged at {threads} threads");
    }
}

/// Guards against `std::collections::HashMap` iteration order leaking into
/// behavior (float reductions, candidate ordering, churn re-homing): every
/// std `HashMap` seeds a fresh `RandomState` per instance, so two runs in
/// the same process already iterate any order-sensitive map differently.
/// Repeat-run equality therefore fails if a behavior-feeding aggregation
/// ever regresses from an ordered map back to a hashed one.
#[test]
fn fig9_is_invariant_to_map_iteration_order() {
    let a = fig9::run(&fig9_tiny(1)).to_csv();
    let b = fig9::run(&fig9_tiny(1)).to_csv();
    assert_eq!(a, b, "fig9 output depends on map iteration order");
}

#[test]
fn fig9_scalar_outputs_match_across_thread_counts() {
    let a = fig9::run(&fig9_tiny(1));
    let b = fig9::run(&fig9_tiny(8));
    assert_eq!(a.mean_backups.to_bits(), b.mean_backups.to_bits());
    assert_eq!(a.recovery_ratio.to_bits(), b.recovery_ratio.to_bits());
}
