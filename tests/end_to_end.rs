//! Cross-crate integration: the full SpiderNet pipeline on a simulated
//! overlay — population, DHT discovery, BCP composition, session
//! establishment, churn, and recovery.

use spidernet::core::baselines::centralized_state_messages;
use spidernet::core::bcp::{BcpConfig, QuotaPolicy};
use spidernet::core::recovery::FailureOutcome;
use spidernet::core::selection::is_qualified;
use spidernet::core::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
use spidernet::core::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet::sim::metrics::counter;
use spidernet::util::rng::rng_for;

fn build(seed: u64) -> SpiderNet {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(400).peers(80).seed(seed).build());
    net.populate(&PopulationConfig { functions: 16, ..PopulationConfig::default() });
    net
}

fn loose_requests(net: &SpiderNet, seed: u64, n: usize) -> Vec<spidernet::core::CompositionRequest> {
    let cfg = RequestConfig {
        functions: (2, 4),
        delay_bound_ms: (2_000.0, 3_000.0),
        loss_bound: (0.2, 0.3),
        max_failure_prob: 0.5,
        ..RequestConfig::default()
    };
    let mut rng = rng_for(seed, "e2e-req");
    (0..n).map(|_| random_request(net.overlay(), net.registry(), &cfg, &mut rng)).collect()
}

#[test]
fn bcp_results_are_always_qualified_and_functionally_correct() {
    let mut net = build(1);
    for req in loose_requests(&net, 1, 10) {
        let Ok(outcome) = net.compose(&req, &BcpConfig::default()) else { continue };
        assert!(is_qualified(&outcome.eval, &req));
        // The chosen components provide exactly the requested functions
        // (as a multiset — commutation may reorder them).
        let mut want: Vec<u64> = req.function_graph.functions().iter().map(|f| f.raw()).collect();
        let mut got: Vec<u64> = outcome
            .best
            .assignment
            .iter()
            .map(|&c| net.registry().get(c).function.raw())
            .collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
        // Every pool entry is qualified too.
        for (_, eval) in &outcome.qualified_pool {
            assert!(is_qualified(eval, &req));
        }
    }
}

#[test]
fn bcp_never_finds_anything_optimal_misses_entirely() {
    // If exhaustive search finds nothing qualified, bounded probing cannot
    // either (it searches a subset).
    let mut net = build(2);
    let mut impossible = 0;
    for mut req in loose_requests(&net, 2, 12) {
        req.qos_req = spidernet::util::qos::QosRequirement::new(vec![0.01, 0.001]).unwrap();
        assert!(net.compose_with(&req, &CompositionOptions::optimal(None)).is_err());
        assert!(net.compose(&req, &BcpConfig::default()).is_err());
        impossible += 1;
    }
    assert!(impossible > 0);
}

#[test]
fn bcp_cost_is_sandwiched_between_optimal_and_random() {
    let mut net = build(3);
    let mut compared = 0;
    for req in loose_requests(&net, 3, 12) {
        let Ok(opt) = net.compose_with(&req, &CompositionOptions::optimal(Some(5_000))) else {
            continue;
        };
        let Ok(bcp) = net.compose(
            &req,
            &BcpConfig::builder().budget(64).quota(QuotaPolicy::Uniform(8)).build(),
        ) else {
            continue;
        };
        assert!(
            bcp.eval.cost + 1e-9 >= opt.eval.cost,
            "BCP beat exhaustive search: {} < {}",
            bcp.eval.cost,
            opt.eval.cost
        );
        // Random is quality-blind; averaged over draws it must not beat
        // BCP's ψ. Check the mean of several draws.
        let mut rand_sum = 0.0;
        for _ in 0..5 {
            rand_sum +=
                net.compose_with(&req, &CompositionOptions::random()).unwrap().eval.cost;
        }
        assert!(bcp.eval.cost <= rand_sum / 5.0 + 1e-9, "BCP worse than mean random pick");
        compared += 1;
    }
    assert!(compared >= 5, "too few comparable requests ({compared})");
}

#[test]
fn session_lifecycle_conserves_resources() {
    let mut net = build(4);
    let baseline: Vec<_> = net
        .overlay()
        .peers()
        .map(|p| net.state().available(p))
        .collect();
    let mut ids = Vec::new();
    for req in loose_requests(&net, 4, 6) {
        if let Ok(outcome) = net.compose(&req, &BcpConfig::default()) {
            if let Ok(id) = net.establish(&req, outcome) {
                ids.push(id);
            }
        }
    }
    assert!(!ids.is_empty());
    // Established sessions hold resources…
    let held: f64 = net
        .overlay()
        .peers()
        .map(|p| baseline[p.index()].cpu() - net.state().available(p).cpu())
        .sum();
    assert!(held > 0.0, "sessions hold no resources");
    // …and teardown returns everything.
    for id in ids {
        net.teardown(id).unwrap();
    }
    for p in net.overlay().peers() {
        assert_eq!(net.state().available(p), baseline[p.index()], "leak on {p}");
    }
}

#[test]
fn churn_with_recovery_keeps_sessions_alive() {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(400).peers(80).seed(5).build());
    net.populate(&PopulationConfig { functions: 16, ..PopulationConfig::default() });
    // Tight-ish bounds so Eq. 2 keeps backups.
    let cfg = RequestConfig {
        functions: (2, 3),
        delay_bound_ms: (400.0, 700.0),
        loss_bound: (0.03, 0.06),
        max_failure_prob: 0.12,
        ..RequestConfig::default()
    };
    let bcp = BcpConfig::builder().budget(64).build();
    let mut rng = rng_for(5, "e2e-churn");
    let mut established = 0;
    let mut guard = 0;
    while established < 15 && guard < 300 {
        guard += 1;
        let req = random_request(net.overlay(), net.registry(), &cfg, &mut rng);
        if let Ok(outcome) = net.compose(&req, &bcp) {
            if net.establish(&req, outcome).is_ok() {
                established += 1;
            }
        }
    }
    assert_eq!(established, 15);
    let before = net.sessions().len();

    // Fail peers hosting session components, one by one.
    let mut hits = 0;
    let mut recovered = 0;
    for round in 0..10u64 {
        let victim = net
            .sessions()
            .sessions()
            .flat_map(|s| s.primary.components().iter())
            .map(|&c| net.registry().get(c).peer)
            .nth(round as usize % 3);
        let Some(victim) = victim else { break };
        if !net.state().is_alive(victim) {
            continue;
        }
        for (sid, outcome) in net.fail_peer(victim) {
            hits += 1;
            match outcome {
                FailureOutcome::RecoveredByBackup { .. } => recovered += 1,
                FailureOutcome::NeedsReactive => {
                    if net.reactive_recover(sid, &bcp) {
                        recovered += 1;
                    }
                }
            }
        }
        net.maintenance_tick();
    }
    assert!(hits > 0, "no session was ever hit");
    assert!(
        recovered * 10 >= hits * 7,
        "recovery rate too low: {recovered}/{hits}"
    );
    assert!(net.sessions().len() + 2 >= before, "too many sessions lost");
}

#[test]
fn overhead_counters_track_protocol_activity() {
    let mut net = build(6);
    net.reset_metrics();
    let reqs = loose_requests(&net, 6, 8);
    let mut established = 0;
    for req in &reqs {
        if let Ok(outcome) = net.compose(req, &BcpConfig::default()) {
            if net.establish(req, outcome).is_ok() {
                established += 1;
            }
        }
    }
    net.maintenance_tick();
    let m = net.metrics();
    assert!(m.value(counter::PROBES) > 0);
    assert!(m.value(counter::DHT_MESSAGES) > 0);
    assert!(m.value(counter::CONTROL) as usize >= established);
    // The centralized alternative would have cost far more over any
    // realistic horizon.
    let centralized = centralized_state_messages(80, 1_000, 1);
    assert!(centralized > m.value(counter::PROBES));
}
