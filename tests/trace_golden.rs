//! Golden test for the probe trace: a fixed seed and a fixed request must
//! always produce the exact same sequence of protocol events. Catches any
//! change that silently reorders probing, admission, or soft-state work.
//!
//! The expected sequence below was captured from the current protocol and
//! is intentionally brittle: if you change probing order on purpose,
//! re-capture it (run with `--nocapture` on failure — the test prints the
//! actual sequence).
#![cfg(feature = "trace")]

use spidernet::core::bcp::BcpConfig;
use spidernet::core::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
use spidernet::core::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet::sim::trace::TraceEvent;
use spidernet::util::rng::rng_for;

/// Compact one-line rendering of a trace event, with the session id
/// elided (asserted separately — every event must carry the run's own
/// session).
fn render(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::ProbeSpawned { depth, budget, .. } => format!("spawn d{depth} b{budget}"),
        TraceEvent::ProbeDropped { reason, .. } => format!("drop {reason:?}"),
        TraceEvent::SoftAlloc { peer } => format!("alloc p{peer}"),
        TraceEvent::SoftRelease { peer } => format!("release p{peer}"),
        TraceEvent::BackupSwitch { from, to, .. } => format!("switch {from}->{to}"),
        TraceEvent::DhtLookup { hops } => format!("dht h{hops}"),
        TraceEvent::FaultInjected { unit, peer, crash } => {
            format!("fault u{unit} p{peer} {}", if *crash { "crash" } else { "revive" })
        }
        TraceEvent::RecoverySwitch { rank, reactive, .. } => {
            format!("rswitch r{rank} reactive={reactive}")
        }
        TraceEvent::BaselinePruned { examined, pruned, .. } => {
            format!("baseline e{examined} p{pruned}")
        }
        TraceEvent::ConnOpened { peer } => format!("conn+ p{peer}"),
        TraceEvent::ConnClosed { peer } => format!("conn- p{peer}"),
        TraceEvent::ConnRetry { peer, attempt } => format!("connr p{peer} a{attempt}"),
        TraceEvent::PairCacheSaturated { rejected } => format!("paircache r{rejected}"),
        TraceEvent::ConnBackpressure { peer, shed_bytes } => {
            format!("connbp p{peer} shed{shed_bytes}")
        }
        TraceEvent::QueueDepth { peer, queued_bytes } => format!("connq p{peer} q{queued_bytes}"),
    }
}

#[test]
fn probe_event_sequence_is_stable_for_fixed_seed() {
    let mut net =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(300).peers(60).seed(17).build());
    net.populate(&PopulationConfig { functions: 12, ..Default::default() });
    let mut rng = rng_for(17, "trace-golden");
    let req = random_request(
        net.overlay(),
        net.registry(),
        &RequestConfig {
            functions: (2, 3),
            delay_bound_ms: (50_000.0, 60_000.0),
            loss_bound: (0.5, 0.6),
            ..RequestConfig::default()
        },
        &mut rng,
    );

    let opts = CompositionOptions::bcp(BcpConfig::builder().budget(4).build()).with_trace();
    let rep = net.compose_with(&req, &opts).expect("loose request composes");

    // Every traced event belongs to this run's session (or is session-less
    // soft-state / DHT work from the same run).
    for ev in &rep.trace {
        match ev {
            TraceEvent::ProbeSpawned { session, .. }
            | TraceEvent::ProbeDropped { session, .. }
            | TraceEvent::BackupSwitch { session, .. } => {
                assert_eq!(*session, rep.session, "event from a foreign session: {ev:?}");
            }
            _ => {}
        }
    }

    let actual: Vec<String> = rep.trace.iter().map(render).collect();
    let expected: Vec<&str> = GOLDEN.trim().lines().map(str::trim).collect();
    assert_eq!(
        actual, expected,
        "probe event sequence drifted; actual:\n{}",
        actual.join("\n")
    );

    // The same seed in a freshly built world replays the identical stream.
    let mut net2 =
        SpiderNet::build(&SpiderNetConfig::builder().ip_nodes(300).peers(60).seed(17).build());
    net2.populate(&PopulationConfig { functions: 12, ..Default::default() });
    let rep2 = net2.compose_with(&req, &opts).expect("replay composes");
    let replay: Vec<String> = rep2.trace.iter().map(render).collect();
    assert_eq!(actual, replay, "same seed must replay the same event stream");
}

/// Captured from seed 17 / stream "trace-golden" with a probe budget of 4.
const GOLDEN: &str = "
    dht h2
    dht h2
    spawn d0 b1
    alloc p45
    spawn d1 b1
    alloc p52
    spawn d2 b1
    spawn d0 b1
    alloc p26
    spawn d1 b1
    spawn d2 b1
    spawn d0 b1
    alloc p1
    spawn d1 b1
    alloc p6
    spawn d2 b1
    spawn d0 b1
    alloc p33
    spawn d1 b1
    alloc p31
    spawn d2 b1
    release p45
    release p52
    release p26
    release p1
    release p6
    release p33
    release p31
";
