//! Fault-injection suite: deterministic adversarial schedules driving the
//! proactive recovery path end to end.
//!
//! Every scenario here is a seeded [`FaultPlan`] replayed by the core
//! fault lab, with the recovery invariants (no dead peer in a served
//! graph, no dead peer in a maintained backup, committed-resource
//! accounting exact) asserted between steps, and byte-identical output
//! demanded across worker-thread counts per the determinism contract.

use spidernet::core::experiments::faults::{
    churn_sweep, run, ChurnSweepConfig, FaultDriver, FaultLabConfig,
};
use spidernet::core::workload::PopulationConfig;
use spidernet::sim::fault::{FaultAction, FaultPlan};
use spidernet::sim::metrics::counter;
use spidernet::util::par::par_map_with;

fn tiny() -> FaultLabConfig {
    FaultLabConfig {
        ip_nodes: 300,
        peers: 60,
        seed: 21,
        sessions: 10,
        population: PopulationConfig { functions: 10, ..PopulationConfig::default() },
        ..FaultLabConfig::default()
    }
}

/// The acceptance scenario: a plan that kills every component of the
/// primary service graph, one at a time with recovery time in between,
/// must see each hit recovered by a qualified backup — zero reactive
/// BCP, zero lost sessions — and replay byte-identically under any
/// parallel fan-out.
#[test]
fn killing_every_primary_component_recovers_without_reactive_bcp() {
    let base = tiny();
    let cfg = FaultLabConfig {
        sessions: 1,
        backup_upper_bound: 8.0, // plenty of backups for a lone session
        // A wide probe sweep: the qualified pool is what maintenance
        // replenishes backups from, so the plan's later kills need it deep.
        bcp: spidernet::core::bcp::BcpConfig::builder().budget(512).merge_cap(1024).build(),
        ..base
    };

    // Probe run: discover the primary's hosting peers (deterministic in
    // cfg, so the real run below starts from the identical world).
    let probe = FaultDriver::new(&cfg, FaultPlan::new(0));
    let primary_peers: Vec<u64> = {
        let s = probe.net().sessions().sessions().next().expect("one session established");
        s.primary
            .components()
            .iter()
            .map(|&c| probe.net().registry().get(c).peer.raw())
            .collect()
    };
    assert!(!primary_peers.is_empty());
    drop(probe);

    let plan = FaultPlan::kill_each(0, &primary_peers, 1, 3).with_horizon(12);
    let mut driver = FaultDriver::new(&cfg, plan.clone());
    while driver.step() {
        driver.verify_invariants().unwrap();
    }
    let rep = driver.report();
    assert!(rep.hits() >= 1, "the first kill must hit the primary");
    assert_eq!(rep.reactive(), 0, "every hit must be absorbed by a backup:\n{}", rep.to_csv());
    assert_eq!(rep.lost(), 0);
    assert_eq!(rep.switches(), rep.hits());
    assert_eq!(rep.surviving, 1, "the session must survive the whole plan");

    // The same plan replayed under parallel fan-outs of 1, 4, and 8
    // workers is byte-identical (each worker replays the full plan; all
    // copies and the sequential reference must agree).
    let reference = rep.to_csv();
    for threads in [1usize, 4, 8] {
        let outs = par_map_with(threads, vec![0u8; threads], |_, _| run(&cfg, plan.clone()).to_csv());
        for out in outs {
            assert_eq!(out, reference, "replay diverged at {threads} threads");
        }
    }
}

/// A random crash storm with revives holds the recovery invariants at
/// every step, and the trace/metrics counters agree with the report.
#[test]
fn crash_storm_with_revives_holds_invariants_every_step() {
    let cfg = tiny();
    let plan = FaultPlan::crash_storm(33, cfg.peers as u64, 0.08, 12, Some(4));
    let mut driver = FaultDriver::new(&cfg, plan);
    while driver.step() {
        driver.verify_invariants().unwrap();
    }
    let rep = driver.report();
    assert!(rep.crashes() > 0, "an 8% storm over 12 units must kill someone");
    assert_eq!(
        rep.metrics.value(counter::FAULTS_INJECTED),
        rep.crashes() + rep.revives(),
        "every applied fault action must be counted"
    );
    assert_eq!(rep.metrics.value(counter::RECOVERY_SWITCHES), rep.switches());
    assert_eq!(rep.metrics.value(counter::RECOVERY_REACTIVE), rep.reactive());
}

/// Correlated multi-peer crashes combined with soft-state expiry storms:
/// the expiry sweep reclaims every storm reservation within its unit and
/// the committed-resource ledger stays exact throughout.
#[test]
fn correlated_failures_and_soft_storms_leave_no_residue() {
    let cfg = tiny();
    let plan = FaultPlan::new(44)
        .soft_storm(0, 20)
        .at(2, FaultAction::CrashCorrelated { peers: vec![3, 9, 14] })
        .soft_storm(3, 15)
        .at(5, FaultAction::CrashCorrelated { peers: vec![21, 30] })
        .revive(6, 3)
        .soft_storm(7, 10)
        .with_horizon(9);
    let mut driver = FaultDriver::new(&cfg, plan);
    while driver.step() {
        driver.verify_invariants().unwrap();
    }
    let rep = driver.report();
    assert_eq!(rep.crashes(), 5);
    assert_eq!(rep.revives(), 1);
    for row in &rep.rows {
        assert_eq!(
            row.soft_granted, row.soft_expired,
            "unit {}: storm reservations must expire within their unit",
            row.unit
        );
    }
    assert_eq!(driver.net().state().soft_count(), 0, "soft state must drain completely");
    // Saved + lost partition the reactive fallbacks.
    assert_eq!(rep.reactive(), rep.saved() + rep.lost());
}

/// A correlated crash that takes out a primary component *and* backups
/// simultaneously never lands a session on a graph containing any of the
/// dead peers (driver-level restatement of the core regression tests).
#[test]
fn correlated_crash_never_switches_onto_a_dead_peer() {
    let cfg = tiny();
    let probe = FaultDriver::new(&cfg, FaultPlan::new(0));
    // Pair every session's first primary peer with one of its backup
    // peers, when it has any — the nastiest correlated pattern.
    let mut pair: Option<Vec<u64>> = None;
    for s in probe.net().sessions().sessions() {
        let pp = probe.net().registry().get(s.primary.components()[0]).peer.raw();
        if let Some((g, _)) = s.backups.first() {
            let bp = probe.net().registry().get(g.components()[0]).peer.raw();
            if bp != pp {
                pair = Some(vec![pp, bp]);
                break;
            }
        }
    }
    drop(probe);
    let Some(peers) = pair else {
        return; // no session maintained a backup in this world: vacuous
    };
    let plan = FaultPlan::new(0).crash_correlated(1, peers).with_horizon(4);
    let mut driver = FaultDriver::new(&cfg, plan);
    while driver.step() {
        driver.verify_invariants().unwrap();
    }
}

/// The churn sweep produces identical CSV whatever the per-cell worker
/// thread count — the fig10 `--churn-sweep` determinism contract.
#[test]
fn churn_sweep_is_byte_identical_across_thread_counts() {
    let base = FaultLabConfig { sessions: 8, ..tiny() };
    let sweep = |threads: usize| {
        churn_sweep(&ChurnSweepConfig {
            base: FaultLabConfig { threads: Some(threads), ..base.clone() },
            rates: vec![0.02, 0.08],
            units: 8,
            revive_after: Some(3),
        })
        .to_csv()
    };
    let reference = sweep(1);
    for threads in [4usize, 8] {
        assert_eq!(sweep(threads), reference, "churn sweep diverged at {threads} threads");
    }
    assert_eq!(reference.lines().count(), 3, "header + one row per rate");
}

/// Replaying the same plan against the same config twice gives identical
/// per-unit rows and identical failure outcomes (not just identical
/// aggregate CSV).
#[test]
fn identical_plans_replay_identically() {
    let cfg = tiny();
    let plan = FaultPlan::parse("crash@1:5;expire@2:8;crash@3:5;revive@4:5;crash@6:12+17", 7, 60)
        .expect("valid spec");
    let a = run(&cfg, plan.clone());
    let b = run(&cfg, plan);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.surviving, b.surviving);
}

/// Crashing a known primary peer registers exactly the outcomes the
/// session manager produced: hits partition into switches and reactive
/// fallbacks, nothing is dropped on the floor.
#[test]
fn driver_hit_accounting_partitions_outcomes() {
    let cfg = FaultLabConfig { sessions: 3, ..tiny() };
    let probe = FaultDriver::new(&cfg, FaultPlan::new(0));
    let victim = {
        let s = probe.net().sessions().sessions().next().expect("sessions established");
        probe.net().registry().get(s.primary.components()[0]).peer
    };
    drop(probe);

    let plan = FaultPlan::new(0).crash(0, victim.raw()).with_horizon(2);
    let rep = run(&cfg, plan);
    assert!(rep.hits() >= 1, "crashing a primary peer must register a hit");
    assert_eq!(rep.hits(), rep.switches() + rep.reactive());
}
