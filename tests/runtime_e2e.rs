//! Cross-crate integration on the threaded runtime: compose over the WAN
//! model, stream transformed media, survive a kill.

use spidernet::runtime::cluster::{Cluster, ClusterConfig};
use spidernet::runtime::media::MediaFunction;
use spidernet::util::id::PeerId;
use std::time::Duration;

fn fast(peers: usize, seed: u64) -> ClusterConfig {
    ClusterConfig { peers, seed, time_scale: 0.004, ..ClusterConfig::default() }
}

const TIMEOUT: Duration = Duration::from_secs(30);

#[test]
fn full_prototype_pipeline() {
    let cluster = Cluster::start(fast(36, 11));
    // ≈6 replicas per function at 36 peers.
    for f in MediaFunction::ALL {
        assert_eq!(cluster.replica_count(f), 6);
    }
    let chain =
        vec![MediaFunction::SubImage, MediaFunction::UpScale, MediaFunction::WeatherTicker];
    let setup = cluster
        .compose(PeerId::new(1), PeerId::new(30), chain.clone(), 12, TIMEOUT)
        .expect("driver timeout");
    assert!(setup.ok);
    assert_eq!(setup.functions, chain);
    // Setup decomposition: all phases present, totals consistent.
    assert!(setup.discovery_ms > 0.0 && setup.probing_ms > 0.0 && setup.init_ms > 0.0);

    let report = cluster
        .stream(PeerId::new(1), &setup, 15, 30.0, (20, 20), TIMEOUT)
        .expect("stream timeout");
    assert_eq!(report.sent, 15);
    assert!(report.delivered >= 13);
    // (20,20) → sub-image (10,10) → up-scale (20,20) → ticker: verified
    // end-to-end by the destination.
    assert!(report.all_valid);
}

#[test]
fn concurrent_sessions_do_not_interfere() {
    let cluster = Cluster::start(fast(36, 12));
    let chains = [
        vec![MediaFunction::DownScale, MediaFunction::Requantize],
        vec![MediaFunction::StockTicker, MediaFunction::SubImage],
        vec![MediaFunction::UpScale],
    ];
    // Issue all three setups from different sources before waiting.
    let setups: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = chains
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                let cluster = &cluster;
                let chain = chain.clone();
                s.spawn(move || {
                    cluster.compose(
                        PeerId::new(i as u64),
                        PeerId::new(30 + i as u64),
                        chain,
                        8,
                        TIMEOUT,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    for (i, setup) in setups.iter().enumerate() {
        let setup = setup.as_ref().expect("timeout");
        assert!(setup.ok, "session {i} failed to set up");
        assert_eq!(setup.functions, chains[i]);
    }
}

#[test]
fn dht_and_probe_accounting_grows_with_requests() {
    let cluster = Cluster::start(fast(24, 13));
    let h0 = cluster.dht_hops();
    let p0 = cluster.probes_sent();
    for i in 0..3u64 {
        let _ = cluster.compose(
            PeerId::new(i),
            PeerId::new(20),
            vec![MediaFunction::Requantize, MediaFunction::DownScale],
            6,
            TIMEOUT,
        );
    }
    assert!(cluster.dht_hops() > h0);
    assert!(cluster.probes_sent() > p0);
}
