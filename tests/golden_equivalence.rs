//! Scale-refactor equivalence suite: the default fig. 8 and fig. 9 runs
//! must render byte-identical CSV to the goldens captured from the
//! pre-refactor (BTreeMap world state, build-per-cell) representation —
//! and must stay identical across worker-thread counts.
//!
//! These goldens pin the figure *outputs*, so any arena/SoA or
//! clone-per-cell change that perturbs float accumulation order, RNG
//! stream consumption, or cell fan-out ordering fails here. Re-capture
//! only when the protocol itself changes on purpose:
//! `cargo run --release -p spidernet-bench --bin fig8 -- --csv`.

use spidernet::core::experiments::{fig8, fig9};

const FIG8_GOLDEN: &str = include_str!("golden/fig8_default.csv");
const FIG9_GOLDEN: &str = include_str!("golden/fig9_default.csv");

#[test]
fn fig8_default_matches_pre_refactor_golden_across_thread_counts() {
    for threads in [1usize, 4, 8] {
        let cfg = fig8::Fig8Config { threads: Some(threads), ..fig8::Fig8Config::default() };
        let csv = fig8::run(&cfg).to_csv();
        assert_eq!(
            csv, FIG8_GOLDEN,
            "fig8 default CSV drifted from the seed representation at {threads} thread(s)"
        );
    }
}

#[test]
fn fig9_default_matches_pre_refactor_golden_across_thread_counts() {
    for threads in [1usize, 4, 8] {
        let cfg = fig9::Fig9Config { threads: Some(threads), ..fig9::Fig9Config::default() };
        let csv = fig9::run(&cfg).to_csv();
        assert_eq!(
            csv, FIG9_GOLDEN,
            "fig9 default CSV drifted from the seed representation at {threads} thread(s)"
        );
    }
}
