//! Property test: the branch-and-bound optimal enumerator is
//! observationally identical to the naive cartesian-product reference it
//! replaced, across randomized worlds, enumeration caps, and harness
//! thread counts.
//!
//! "Identical" is bitwise: same best assignment, bit-equal evaluation,
//! same qualified pool in the same order, and the same considered-combo
//! count (`probes`) — the naive side counts every combination it fully
//! evaluates, the branch-and-bound side counts `examined + pruned`.

use spidernet::core::system::{CompositionOptions, SpiderNet, SpiderNetConfig};
use spidernet::core::workload::{random_request, PopulationConfig, RequestConfig};
use spidernet::util::rng::{rng_for, Rng};

/// Master seed; change to explore a different slice of the case space.
const SEED: u64 = 0xB0B5_CA1E;

fn build_world(seed: u64) -> SpiderNet {
    let mut net = SpiderNet::build(
        &SpiderNetConfig::builder().ip_nodes(250).peers(50).seed(seed).build(),
    );
    net.populate(&PopulationConfig { functions: 10, ..PopulationConfig::default() });
    net
}

/// Mix of request shapes: chains (the suffix-bound fast path), diamond
/// DAGs (the conservative no-chain-bounds path), and bound tightness from
/// trivially satisfiable down to unsatisfiable.
fn request_config(case: usize) -> RequestConfig {
    let tight = case % 3 == 2;
    RequestConfig {
        functions: (2, 5),
        dag_probability: if case.is_multiple_of(2) { 0.0 } else { 1.0 },
        delay_bound_ms: if tight { (10.0, 20.0) } else { (5_000.0, 50_000.0) },
        loss_bound: if tight { (0.001, 0.002) } else { (0.4, 0.6) },
        ..RequestConfig::default()
    }
}

/// Bit-comparable projection of one qualified graph.
fn fingerprint(graph: &spidernet::core::model::ServiceGraph, eval: &spidernet::core::model::GraphEval) -> (Vec<u64>, Vec<u64>, u64, u64) {
    (
        graph.assignment.iter().map(|c| c.0).collect(),
        eval.qos.values().iter().map(|v| v.to_bits()).collect(),
        eval.cost.to_bits(),
        eval.failure_prob.to_bits(),
    )
}

#[test]
fn branch_and_bound_is_bitwise_identical_to_naive_enumeration() {
    let mut rng: Rng = rng_for(SEED, "optimal-equivalence");
    let mut agreements = 0usize;
    for case in 0..24usize {
        let world_seed = SEED ^ case as u64;
        let cap = match case % 4 {
            0 => None,
            1 => Some(1),
            2 => Some(37),
            _ => Some(100_000),
        };
        let mut net = build_world(world_seed);
        let req = random_request(net.overlay(), net.registry(), &request_config(case), &mut rng);
        let naive = net.compose_optimal_naive(&req, cap);

        for threads in [1usize, 2, 4] {
            let mut net = build_world(world_seed);
            let opts = CompositionOptions::optimal(cap).with_optimal_threads(threads);
            let bb = net.compose_with(&req, &opts);
            match (&naive, &bb) {
                (Ok(n), Ok(b)) => {
                    assert_eq!(
                        fingerprint(&n.best, &n.eval),
                        fingerprint(&b.best, &b.eval),
                        "best graph diverged (case {case}, cap {cap:?}, threads {threads})"
                    );
                    assert_eq!(n.probes, b.probes, "considered-combo count diverged (case {case})");
                    assert_eq!(
                        n.qualified_pool.len(),
                        b.qualified_pool.len(),
                        "pool size diverged (case {case}, threads {threads})"
                    );
                    for (i, ((ng, ne), (bg, be))) in
                        n.qualified_pool.iter().zip(&b.qualified_pool).enumerate()
                    {
                        assert_eq!(
                            fingerprint(ng, ne),
                            fingerprint(bg, be),
                            "pool entry {i} diverged (case {case}, threads {threads})"
                        );
                    }
                    agreements += 1;
                }
                (Err(ne), Err(be)) => {
                    assert_eq!(
                        ne.to_string(),
                        be.to_string(),
                        "error kind diverged (case {case}, cap {cap:?}, threads {threads})"
                    );
                }
                (n, b) => panic!(
                    "composability diverged (case {case}, cap {cap:?}, threads {threads}): \
                     naive {:?} vs branch-and-bound {:?}",
                    n.as_ref().map(|o| o.probes),
                    b.as_ref().map(|o| o.probes),
                ),
            }
        }
    }
    assert!(agreements >= 10, "only {agreements} composable agreement cases — suite too weak");
}

/// Force the admissible QoS prefix bound to fire while the request stays
/// composable: re-ask a loose chain request with the delay budget
/// tightened to just above its own known-best delay, so the best graph
/// survives but most of the combination space is provably infeasible.
#[test]
fn tight_chain_bounds_prune_without_changing_the_answer() {
    use spidernet::util::qos::{dim, QosRequirement};

    let mut rng: Rng = rng_for(SEED, "optimal-prunes");
    let mut pruned_total = 0u64;
    let mut checked = 0usize;
    for case in 0..8usize {
        let world_seed = SEED.rotate_right(13) ^ case as u64;
        let mut net = build_world(world_seed);
        let loose = RequestConfig {
            functions: (3, 4),
            dag_probability: 0.0,
            delay_bound_ms: (5_000.0, 50_000.0),
            loss_bound: (0.4, 0.6),
            ..RequestConfig::default()
        };
        let mut req = random_request(net.overlay(), net.registry(), &loose, &mut rng);
        let Ok(base) = net.compose_with(&req, &CompositionOptions::optimal(None)) else {
            continue;
        };
        let mut bounds = req.qos_req.bounds().to_vec();
        bounds[dim::DELAY_MS] = base.eval.qos[dim::DELAY_MS] + 1.0;
        req.qos_req = QosRequirement::new(bounds).expect("tightened bounds stay valid");

        let mut net_naive = build_world(world_seed);
        let naive = net_naive.compose_optimal_naive(&req, None).expect("best still qualifies");
        let mut net_bb = build_world(world_seed);
        let bb = net_bb
            .compose_with(&req, &CompositionOptions::optimal(None))
            .expect("best still qualifies");
        assert_eq!(fingerprint(&naive.best, &naive.eval), fingerprint(&bb.best, &bb.eval));
        assert_eq!(naive.probes, bb.probes, "considered count diverged (case {case})");
        assert_eq!(naive.qualified_pool.len(), bb.qualified_pool.len());
        pruned_total += bb.combos_pruned;
        checked += 1;
    }
    assert!(checked >= 4, "only {checked} composable tight cases");
    assert!(pruned_total > 0, "tightened chain bounds never pruned");
}

#[test]
fn best_only_policy_matches_full_pool_best_with_empty_pool() {
    let mut rng: Rng = rng_for(SEED, "optimal-best-only");
    let mut agreements = 0usize;
    for case in 0..12usize {
        let mut net = build_world(SEED.rotate_left(7) ^ case as u64);
        let req = random_request(net.overlay(), net.registry(), &request_config(case), &mut rng);
        let full = {
            let mut net = build_world(SEED.rotate_left(7) ^ case as u64);
            net.compose_with(&req, &CompositionOptions::optimal(None))
        };
        let best_only = net.compose_with(&req, &CompositionOptions::optimal_best_only(None));
        match (&full, &best_only) {
            (Ok(f), Ok(b)) => {
                assert_eq!(
                    fingerprint(&f.best, &f.eval),
                    fingerprint(&b.best, &b.eval),
                    "best-only best diverged from full-pool best (case {case})"
                );
                assert!(b.qualified_pool.is_empty(), "best-only must not retain a pool");
                assert_eq!(f.probes, b.probes, "considered count diverged (case {case})");
                agreements += 1;
            }
            (Err(fe), Err(be)) => assert_eq!(fe.to_string(), be.to_string()),
            _ => panic!("composability diverged between pool policies (case {case})"),
        }
    }
    assert!(agreements >= 5, "only {agreements} composable cases");
}
