//! Pinned model-checker schedules.
//!
//! Every schedule here was produced by driving `CheckedWorld` through a
//! specific interleaving the checker explores (duplicated acks, stale
//! maintenance acks racing a failover, degenerate requests). Each test
//! regenerates the schedule from the live engine, then replays the
//! encoded form through `spidernet_runtime::mc::replay`, which checks
//! every safety invariant after every step and the liveness invariants
//! at quiescence. A regression in any of these interleavings fails the
//! replay with the violated invariant's text.

use spidernet::runtime::mc::{replay, CheckedWorld, McScenario, NetModel};
use spidernet::runtime::msg::{Msg, Probe};
use spidernet::sim::mc::ModelSystem;
use spidernet::util::id::PeerId;
use spidernet::util::qos::QosVector;

/// Drives `w` until quiescence (or `max` steps), letting `choose` pick
/// among the encoded enabled actions each step. Safety invariants are
/// checked after every action. Returns the encoded schedule.
fn drive(
    w: &mut CheckedWorld,
    mut choose: impl FnMut(&[String]) -> Option<usize>,
    max: usize,
) -> Vec<String> {
    let mut sched = Vec::new();
    for _ in 0..max {
        let mut acts = w.enabled();
        acts.sort();
        if acts.is_empty() {
            return sched;
        }
        let enc: Vec<String> = acts.iter().map(|a| w.encode(a)).collect();
        let Some(i) = choose(&enc) else { return sched };
        assert!(w.apply(&acts[i]), "chosen action {} went stale", enc[i]);
        if let Err(e) = w.check() {
            panic!("invariant violated after {}: {e}\nschedule: {sched:?}", enc[i]);
        }
        sched.push(enc[i].clone());
    }
    panic!("schedule did not quiesce within {max} steps: {sched:?}");
}

/// First enabled action that is not a fault injection.
fn first_clean(enc: &[String]) -> Option<usize> {
    enc.iter().position(|e| {
        !e.starts_with("drop:") && !e.starts_with("dup:") && !e.starts_with("crash:")
    })
}

/// Replays an encoded schedule against a fresh world and asserts it
/// applies fully with no invariant violation.
fn assert_replays_clean(scenario: &McScenario, sched: &[String]) {
    let refs: Vec<&str> = sched.iter().map(String::as_str).collect();
    let out = replay(scenario, &refs);
    assert_eq!(out.violation, None, "pinned schedule violated an invariant");
    assert_eq!(out.applied, sched.len(), "pinned schedule went stale mid-replay");
    assert_eq!(out.skipped, 0);
}

/// Composition under TCP-like FIFO delivery must complete successfully,
/// and the recorded schedule must replay clean.
#[test]
fn pin_setup_fifo_completion() {
    let scen = McScenario::setup(NetModel::default());
    let mut w = CheckedWorld::new(scen.clone());
    let sched = drive(&mut w, first_clean, 300);
    assert!(w.check_terminal().is_ok(), "terminal invariants failed: {:?}", w.check_terminal());
    let setup = &w.setup_results()[0];
    assert!(setup.ok, "lossless FIFO composition must succeed");
    assert_eq!(setup.request, 1);
    assert_replays_clean(&scen, &sched);
}

/// The same composition delivered newest-first — maximal reordering —
/// must reach the same successful outcome.
#[test]
fn pin_setup_reversed_delivery_completion() {
    let scen = McScenario::setup(NetModel::reorder_only());
    let mut w = CheckedWorld::new(scen.clone());
    // Pick the *last* clean action: newest in-flight message first.
    let sched = drive(
        &mut w,
        |enc| {
            enc.iter().rposition(|e| {
                !e.starts_with("drop:") && !e.starts_with("dup:") && !e.starts_with("crash:")
            })
        },
        300,
    );
    assert!(w.check_terminal().is_ok());
    assert!(w.setup_results()[0].ok);
    assert_replays_clean(&scen, &sched);
}

/// A duplicated `FrameAck` must be idempotent at the source: the stream
/// still reports every frame delivered exactly once, with no double
/// credit in the ack accounting.
#[test]
fn pin_duplicated_frame_ack_is_idempotent() {
    let scen = McScenario::stream(NetModel::lossy(0, 1));
    let mut w = CheckedWorld::new(scen.clone());
    let sched = drive(
        &mut w,
        |enc| {
            enc.iter().position(|e| e.starts_with("dup:FrameAck")).or_else(|| first_clean(enc))
        },
        600,
    );
    assert!(sched.iter().any(|e| e.starts_with("dup:FrameAck")), "adversary never duplicated");
    assert!(w.check_terminal().is_ok(), "terminal: {:?}", w.check_terminal());
    let report = &w.stream_reports()[0];
    assert_eq!(report.delivered, report.sent);
    assert!(report.all_valid);
    assert_replays_clean(&scen, &sched);
}

/// A duplicated `StreamFrame` must be deduplicated by sequence number:
/// the destination acks it once and the delivery digest is unchanged.
#[test]
fn pin_duplicated_stream_frame_is_deduped() {
    let scen = McScenario::stream(NetModel::lossy(0, 1));
    let mut w = CheckedWorld::new(scen.clone());
    let sched = drive(
        &mut w,
        |enc| {
            enc.iter().position(|e| e.starts_with("dup:StreamFrame")).or_else(|| first_clean(enc))
        },
        600,
    );
    assert!(sched.iter().any(|e| e.starts_with("dup:StreamFrame")), "adversary never duplicated");
    assert!(w.check_terminal().is_ok(), "terminal: {:?}", w.check_terminal());
    let report = &w.stream_reports()[0];
    assert_eq!(report.delivered, report.sent);
    assert!(report.all_valid);
    assert_replays_clean(&scen, &sched);
}

/// The failover race: a maintenance probe's ack is in flight when the
/// primary host crashes; the source fails over to that same backup, and
/// only then does the stale ack arrive. Crediting it against the now
/// active (consumed) slot would corrupt the backup liveness table — the
/// ghost invariant in `CheckedWorld::check` pins the correct behaviour
/// (the ack is ignored).
#[test]
fn pin_stale_path_probe_ack_after_failover() {
    let mut scen = McScenario::stream(NetModel::full(0, 0, 1));
    scen.stream_frames = 6;
    let mut w = CheckedWorld::new(scen.clone());
    let mut crashed = false;
    let sched = drive(
        &mut w,
        |enc| {
            if !crashed {
                // The moment a maintenance ack is in flight, crash the
                // primary host so the failover races it.
                if enc.iter().any(|e| e.starts_with("deliver:PathProbeAck")) {
                    if let Some(i) = enc.iter().position(|e| e.starts_with("crash:")) {
                        crashed = true;
                        return Some(i);
                    }
                }
                // Otherwise run the stream naturally (deliveries first,
                // then timers), holding any maintenance ack back.
                enc.iter()
                    .position(|e| e.starts_with("deliver:") && !e.contains("PathProbeAck"))
                    .or_else(|| enc.iter().position(|e| e.starts_with("timer:")))
            } else {
                // Post-crash: let the failover state machine run to
                // completion before releasing the stale ack.
                enc.iter()
                    .position(|e| e.starts_with("deliver:") && !e.contains("PathProbeAck"))
                    .or_else(|| enc.iter().position(|e| e.starts_with("timer:")))
                    .or_else(|| enc.iter().position(|e| e.starts_with("deliver:PathProbeAck")))
            }
        },
        800,
    );
    assert!(crashed, "the maintenance ack never raced the crash");
    assert!(sched.iter().any(|e| e.starts_with("deliver:PathProbeAck")), "stale ack never landed");
    assert!(w.check_terminal().is_ok(), "terminal: {:?}", w.check_terminal());
    let report = &w.stream_reports()[0];
    assert!(report.switches >= 1, "failover never happened: {report:?}");
    assert_replays_clean(&scen, &sched);
}

/// A zero-function chain is unsatisfiable: composition must fail
/// immediately (not wedge waiting for replies that can never come), and
/// the empty schedule must replay terminal-clean.
#[test]
fn pin_empty_chain_composition_fails_fast() {
    let mut scen = McScenario::setup(NetModel::reorder_only());
    scen.chain = Vec::new();
    let w = CheckedWorld::new(scen.clone());
    let setups = w.setup_results();
    assert_eq!(setups.len(), 1, "zero-function compose must resolve immediately");
    assert!(!setups[0].ok);
    assert!(w.enabled().is_empty(), "zero-function compose left work in flight");
    assert_replays_clean(&scen, &[]);
}

/// Hostile injections: a degenerate probe (empty chain, empty path) and
/// stray acks for a session that does not exist. Every peer must shrug
/// them off — no panic, no invariant violation, and the real
/// composition still completes.
#[test]
fn injected_degenerate_probe_and_stray_acks_are_harmless() {
    let scen = McScenario::setup(NetModel::reorder_only());
    let mut w = CheckedWorld::new(scen.clone());
    let source = scen.source;
    let dest = scen.dest;
    w.inject_wire(
        source,
        dest,
        Msg::Probe(Probe {
            request: 7,
            source,
            dest,
            chain: Vec::new(),
            replica_lists: Vec::new(),
            pos: 0,
            path: Vec::new(),
            budget: 1,
            acc_qos: QosVector::default(),
            at_ms: 0.0,
        }),
    );
    w.inject_wire(dest, source, Msg::FrameAck {
        session: 999,
        seq: 0,
        valid: true,
        digest: 0,
        at_ms: 0.0,
    });
    w.inject_wire(PeerId::new(0), source, Msg::PathProbeAck { session: 999, backup_idx: 3 });
    let _ = drive(&mut w, first_clean, 400);
    // The injected garbage must not have derailed the real request.
    assert!(w.setup_results().iter().any(|s| s.request == 1 && s.ok));
    assert!(w.check().is_ok());
}
