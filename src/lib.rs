//! SpiderNet facade crate.
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use spidernet::core::model::FunctionGraph;
//! let _ = FunctionGraph::linear(3);
//! ```

#![warn(missing_docs)]

pub use spidernet_core as core;
pub use spidernet_dht as dht;
pub use spidernet_runtime as runtime;
pub use spidernet_sim as sim;
pub use spidernet_topology as topology;
pub use spidernet_util as util;
pub use spidernet_wire as wire;
